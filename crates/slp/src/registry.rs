//! The distributed SLP registry state.
//!
//! Each node keeps one [`SlpRegistry`], shared (via `Rc<RefCell<_>>`)
//! between the MANET SLP daemon process and the routing handler that
//! gossips its contents. Entries are versioned per `(type, key, origin)`
//! with a sequence number, so epidemic dissemination converges and
//! refreshes win over staleness.

use std::collections::BTreeMap;

use siphoc_simnet::time::SimTime;

use crate::service::{ServiceEntry, ServiceQuery};

#[derive(Debug, Clone)]
struct Stored {
    entry: ServiceEntry,
    expires: SimTime,
    local: bool,
}

/// Outcome of [`SlpRegistry::absorb_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Absorb {
    /// New or fresher than stored — worth re-gossiping.
    Fresh,
    /// Already known (possibly with its expiry extended) or stale.
    Stale,
    /// Rejected: the auth policy requires signed adverts and this one
    /// carries no auth tail.
    Unsigned,
    /// Rejected: the signature does not verify over the entry's fields.
    BadSig,
    /// Rejected: validly signed, but under a different identity than the
    /// one pinned on first use for this AOR or origin.
    PinMismatch,
}

impl Absorb {
    /// Whether the entry was rejected by the auth policy.
    pub fn rejected(self) -> bool {
        matches!(
            self,
            Absorb::Unsigned | Absorb::BadSig | Absorb::PinMismatch
        )
    }
}

/// A node's view of all known service registrations.
#[derive(Debug, Default)]
pub struct SlpRegistry {
    /// Keyed by `(service_type, key, origin)`.
    entries: BTreeMap<(String, String, siphoc_simnet::net::Addr), Stored>,
    seq: u64,
    /// Verify-at-cache-insert policy: when set, [`SlpRegistry::absorb`]
    /// drops unsigned or badly-signed entries and enforces first-use
    /// identity pins. Off by default — defense-off runs take the exact
    /// legacy code path.
    require_signed: bool,
    /// First-use identity pins (trust-on-first-use). Keys are
    /// `("aor", <aor>)` for SIP bindings and `("origin", <addr>)` for
    /// every signed advertiser. Pins outlive entry expiry and restarts:
    /// they are the node's memory of who legitimately owns a name.
    pins: BTreeMap<(&'static str, String), u64>,
}

impl SlpRegistry {
    /// Creates an empty registry.
    pub fn new() -> SlpRegistry {
        SlpRegistry::default()
    }

    /// Next local sequence number (monotone per node).
    pub fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Registers a local service (the node's own advertisement). Signed
    /// local entries pin their own identity, so later forged adverts for
    /// the same AOR or origin lose the first-use race even on the
    /// advertising node itself.
    pub fn register_local(&mut self, entry: ServiceEntry, now: SimTime) {
        if self.require_signed {
            if let Some(id) = entry.advertiser_identity() {
                self.record_pins(&entry, id);
            }
        }
        let expires = entry.expires_at(now);
        let key = (entry.service_type.clone(), entry.key.clone(), entry.origin);
        self.entries.insert(
            key,
            Stored {
                entry,
                expires,
                local: true,
            },
        );
    }

    /// Turns the verify-at-cache-insert auth policy on or off.
    pub fn set_require_signed(&mut self, on: bool) {
        self.require_signed = on;
    }

    /// Whether the auth policy is active.
    pub fn require_signed(&self) -> bool {
        self.require_signed
    }

    /// The identity pinned for an AOR, if any.
    pub fn pinned_aor_identity(&self, aor: &str) -> Option<u64> {
        self.pins.get(&("aor", aor.to_owned())).copied()
    }

    /// The identity pinned for an advertising origin, if any.
    pub fn pinned_origin_identity(&self, origin: siphoc_simnet::net::Addr) -> Option<u64> {
        self.pins.get(&("origin", origin.to_string())).copied()
    }

    fn record_pins(&mut self, entry: &ServiceEntry, id: u64) {
        self.pins.insert(("origin", entry.origin.to_string()), id);
        if entry.service_type == crate::service::service_types::SIP {
            self.pins.insert(("aor", entry.key.clone()), id);
        }
    }

    /// Auth-policy gate: verifies the signature and the first-use pins,
    /// recording new pins on success.
    fn check_and_pin(&mut self, entry: &ServiceEntry) -> Result<(), Absorb> {
        let Some(id) = entry.advertiser_identity() else {
            return Err(Absorb::Unsigned);
        };
        if !entry.auth_valid() {
            return Err(Absorb::BadSig);
        }
        if self
            .pinned_origin_identity(entry.origin)
            .is_some_and(|p| p != id)
        {
            return Err(Absorb::PinMismatch);
        }
        if entry.service_type == crate::service::service_types::SIP
            && self
                .pinned_aor_identity(&entry.key)
                .is_some_and(|p| p != id)
        {
            return Err(Absorb::PinMismatch);
        }
        self.record_pins(entry, id);
        Ok(())
    }

    /// Removes a local registration.
    pub fn deregister_local(
        &mut self,
        service_type: &str,
        key: &str,
        origin: siphoc_simnet::net::Addr,
    ) {
        self.entries
            .remove(&(service_type.to_owned(), key.to_owned(), origin));
    }

    /// Absorbs a remote entry learned from piggybacked traffic. Returns
    /// `true` when the entry was new or fresher than what was stored (and
    /// so worth re-gossiping). A re-announcement with an *equal* seq from
    /// the same origin is not fresher, but it is a refresh: it extends the
    /// stored expiry so steadily re-advertised services never lapse
    /// mid-refresh.
    pub fn absorb(&mut self, entry: ServiceEntry, now: SimTime) -> bool {
        self.absorb_checked(entry, now) == Absorb::Fresh
    }

    /// [`SlpRegistry::absorb`] with the auth-policy verdict exposed, so
    /// callers can count *why* an entry was dropped. With the policy off
    /// this never returns a rejection and behaves exactly like the
    /// legacy `absorb`.
    pub fn absorb_checked(&mut self, entry: ServiceEntry, now: SimTime) -> Absorb {
        if self.require_signed {
            if let Err(verdict) = self.check_and_pin(&entry) {
                return verdict;
            }
        }
        let key = (entry.service_type.clone(), entry.key.clone(), entry.origin);
        match self.entries.get_mut(&key) {
            Some(existing) if existing.local => Absorb::Stale,
            Some(existing) if existing.entry.seq > entry.seq && existing.expires > now => {
                Absorb::Stale
            }
            Some(existing) if existing.entry.seq == entry.seq && existing.expires > now => {
                existing.expires = existing.expires.max(entry.expires_at(now));
                Absorb::Stale
            }
            _ => {
                let expires = entry.expires_at(now);
                self.entries.insert(
                    key,
                    Stored {
                        entry,
                        expires,
                        local: false,
                    },
                );
                Absorb::Fresh
            }
        }
    }

    /// All unexpired entries matching `(service_type, key)`; an empty key
    /// matches every entry of the type.
    pub fn lookup(&self, service_type: &str, key: &str, now: SimTime) -> Vec<&ServiceEntry> {
        self.entries
            .values()
            .filter(|s| {
                s.expires > now
                    && s.entry.service_type == service_type
                    && (key.is_empty() || s.entry.key == key)
            })
            .map(|s| &s.entry)
            .collect()
    }

    /// All unexpired entries matching a query.
    pub fn matching(&self, query: &ServiceQuery, now: SimTime) -> Vec<ServiceEntry> {
        self.entries
            .values()
            .filter(|s| s.expires > now && query.matches(&s.entry))
            .map(|s| refreshed(s, now))
            .collect()
    }

    /// The node's own registrations, with lifetimes recomputed for
    /// serialization.
    pub fn local_entries(&self, now: SimTime) -> Vec<ServiceEntry> {
        self.entries
            .values()
            .filter(|s| s.local && s.expires > now)
            .map(|s| refreshed(s, now))
            .collect()
    }

    /// Every unexpired entry (local and learned), lifetimes recomputed.
    /// Used by proactive gossip (OLSR mode).
    pub fn all_entries(&self, now: SimTime) -> Vec<ServiceEntry> {
        self.entries
            .values()
            .filter(|s| s.expires > now)
            .map(|s| refreshed(s, now))
            .collect()
    }

    /// All unexpired `service:gateway` entries ranked for lease candidacy:
    /// fewest hops first (per `hops_to`; unreachable sorts last), then the
    /// longest remaining lifetime, then origin for a stable total order.
    /// The Connection Provider leases from the head and keeps the tail as
    /// warm standby for mid-call handoff.
    pub fn gateway_candidates(
        &self,
        now: SimTime,
        hops_to: impl FnMut(siphoc_simnet::net::Addr) -> Option<u8>,
    ) -> Vec<ServiceEntry> {
        let mut out: Vec<ServiceEntry> = self
            .entries
            .values()
            .filter(|s| {
                s.expires > now && s.entry.service_type == crate::service::service_types::GATEWAY
            })
            .map(|s| refreshed(s, now))
            .collect();
        rank_gateways(&mut out, hops_to);
        out
    }

    /// Removes every learned entry announced by `origin` — used when the
    /// node has first-hand evidence the origin is dead (e.g. a gateway
    /// that stopped answering tunnel keepalives) and its adverts must not
    /// keep satisfying lookups until they expire. Local registrations are
    /// untouched. Returns how many entries were dropped.
    pub fn purge_origin(&mut self, origin: siphoc_simnet::net::Addr) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, s| s.local || s.entry.origin != origin);
        before - self.entries.len()
    }

    /// Drops expired entries.
    pub fn purge(&mut self, now: SimTime) {
        self.entries.retain(|_, s| s.expires > now);
    }

    /// Drops every *learned* (non-local) entry, returning how many were
    /// removed. Used after crashes and partition heals: entries absorbed
    /// before the disruption may name gateways or proxies that no longer
    /// exist, and serving them stale is worse than re-flooding a query.
    pub fn drop_remote(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, s| s.local);
        before - self.entries.len()
    }

    /// Number of stored entries (expired included until purged).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the registry in the style of paper Fig. 4 (the MANET SLP
    /// process state listing).
    pub fn render(&self, now: SimTime) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "MANET SLP registrations ({} entries):",
            self.entries.len()
        );
        for s in self.entries.values() {
            let marker = if s.local { "local " } else { "remote" };
            let _ = writeln!(
                out,
                "  [{marker}] {}  (expires {}, seq {})",
                s.entry.service_url(),
                s.expires,
                s.entry.seq
            );
        }
        let _ = now;
        out
    }
}

fn refreshed(s: &Stored, now: SimTime) -> ServiceEntry {
    let mut e = s.entry.clone();
    e.lifetime_secs = s.expires.saturating_since(now).as_secs_f64() as u32;
    e
}

/// Orders gateway entries by lease desirability: hop count to the origin
/// ascending (no route = `u8::MAX`, last), remaining lifetime descending
/// (fresher adverts are likelier to still be alive), origin ascending as a
/// deterministic tiebreak.
pub fn rank_gateways(
    entries: &mut [ServiceEntry],
    mut hops_to: impl FnMut(siphoc_simnet::net::Addr) -> Option<u8>,
) {
    entries.sort_by_key(|e| {
        (
            hops_to(e.origin).unwrap_or(u8::MAX),
            std::cmp::Reverse(e.lifetime_secs),
            e.origin,
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::net::Addr;

    fn sip(aor: &str, origin: u32, seq: u64, lifetime: u32) -> ServiceEntry {
        ServiceEntry::sip_binding(
            aor,
            format!("10.0.0.{}:5060", origin + 1).parse().unwrap(),
            Addr::manet(origin),
            seq,
            lifetime,
        )
    }

    #[test]
    fn absorb_accepts_new_and_fresher_only() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        assert!(r.absorb(sip("alice@v.ch", 1, 5, 60), now));
        assert!(
            !r.absorb(sip("alice@v.ch", 1, 5, 60), now),
            "same seq rejected"
        );
        assert!(
            !r.absorb(sip("alice@v.ch", 1, 4, 60), now),
            "older rejected"
        );
        assert!(r.absorb(sip("alice@v.ch", 1, 6, 60), now), "newer accepted");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn same_seq_reannouncement_extends_expiry() {
        let mut r = SlpRegistry::new();
        assert!(r.absorb(sip("alice@v.ch", 1, 5, 60), SimTime::ZERO));
        // Re-announced at t=50 with the same seq: not re-gossiped, but the
        // lifetime restarts, so the entry must survive past the original
        // t=60 expiry.
        assert!(!r.absorb(sip("alice@v.ch", 1, 5, 60), SimTime::from_secs(50)));
        assert_eq!(
            r.lookup("sip", "alice@v.ch", SimTime::from_secs(90)).len(),
            1,
            "refresh must extend expiry"
        );
        assert!(r
            .lookup("sip", "alice@v.ch", SimTime::from_secs(120))
            .is_empty());
    }

    #[test]
    fn same_seq_refresh_never_shortens_expiry() {
        let mut r = SlpRegistry::new();
        assert!(r.absorb(sip("alice@v.ch", 1, 5, 100), SimTime::ZERO));
        // A same-seq copy with a shorter lifetime (e.g. relayed late) must
        // not pull the expiry earlier.
        assert!(!r.absorb(sip("alice@v.ch", 1, 5, 10), SimTime::from_secs(5)));
        assert_eq!(
            r.lookup("sip", "alice@v.ch", SimTime::from_secs(90)).len(),
            1
        );
    }

    #[test]
    fn gateway_candidates_rank_by_hops_then_freshness() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        let gw = |origin: u32, seq, lifetime| {
            ServiceEntry::gateway(
                format!("82.130.{origin}.1:7077").parse().unwrap(),
                Addr::manet(origin),
                seq,
                lifetime,
            )
        };
        r.absorb(gw(1, 1, 60), now); // 3 hops
        r.absorb(gw(2, 1, 60), now); // 1 hop
        r.absorb(gw(3, 1, 30), now); // 1 hop but staler
        r.absorb(gw(4, 1, 60), now); // unreachable
        r.absorb(sip("alice@v.ch", 9, 1, 60), now); // not a gateway
        let hops = |a: Addr| match a {
            a if a == Addr::manet(1) => Some(3),
            a if a == Addr::manet(2) => Some(1),
            a if a == Addr::manet(3) => Some(1),
            _ => None,
        };
        let ranked = r.gateway_candidates(now, hops);
        let origins: Vec<Addr> = ranked.iter().map(|e| e.origin).collect();
        assert_eq!(
            origins,
            vec![
                Addr::manet(2),
                Addr::manet(3),
                Addr::manet(1),
                Addr::manet(4)
            ]
        );
    }

    #[test]
    fn local_entries_never_overwritten_by_gossip() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        r.register_local(sip("alice@v.ch", 0, 1, 60), now);
        assert!(!r.absorb(sip("alice@v.ch", 0, 99, 60), now));
        assert_eq!(r.lookup("sip", "alice@v.ch", now)[0].seq, 1);
    }

    #[test]
    fn lookup_filters_by_type_key_and_expiry() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        r.absorb(sip("alice@v.ch", 1, 1, 10), now);
        r.absorb(sip("bob@v.ch", 2, 1, 100), now);
        r.absorb(
            ServiceEntry::gateway("10.0.0.9:7077".parse().unwrap(), Addr::manet(8), 1, 100),
            now,
        );
        assert_eq!(r.lookup("sip", "alice@v.ch", now).len(), 1);
        assert_eq!(r.lookup("sip", "", now).len(), 2, "empty key matches type");
        assert_eq!(r.lookup("gateway", "", now).len(), 1);
        let later = SimTime::from_secs(50);
        assert!(r.lookup("sip", "alice@v.ch", later).is_empty(), "expired");
    }

    #[test]
    fn same_aor_from_two_origins_both_kept() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        r.absorb(sip("alice@v.ch", 1, 1, 60), now);
        r.absorb(sip("alice@v.ch", 2, 1, 60), now);
        assert_eq!(r.lookup("sip", "alice@v.ch", now).len(), 2);
    }

    #[test]
    fn refreshed_lifetime_shrinks_with_age() {
        let mut r = SlpRegistry::new();
        r.register_local(sip("alice@v.ch", 0, 1, 100), SimTime::ZERO);
        let at_40 = SimTime::from_secs(40);
        let e = &r.local_entries(at_40)[0];
        assert_eq!(e.lifetime_secs, 60);
    }

    #[test]
    fn purge_removes_expired() {
        let mut r = SlpRegistry::new();
        r.absorb(sip("a@v.ch", 1, 1, 10), SimTime::ZERO);
        r.purge(SimTime::from_secs(20));
        assert!(r.is_empty());
    }

    #[test]
    fn auth_policy_rejects_unsigned_and_forged() {
        use siphoc_simnet::ident::KeyPair;
        let mut r = SlpRegistry::new();
        r.set_require_signed(true);
        let now = SimTime::ZERO;
        let alice = KeyPair::for_addr(Addr::manet(1).0);
        let mallory = KeyPair::for_addr(Addr::manet(6).0);

        // Unsigned: dropped outright.
        assert_eq!(
            r.absorb_checked(sip("alice@v.ch", 1, 1, 60), now),
            Absorb::Unsigned
        );
        // Validly signed: accepted, pins alice's identity for the AOR.
        assert_eq!(
            r.absorb_checked(sip("alice@v.ch", 1, 1, 60).signed(&alice), now),
            Absorb::Fresh
        );
        assert_eq!(r.pinned_aor_identity("alice@v.ch"), Some(alice.identity()));
        // Tampered copy (signature no longer covers the fields): dropped.
        let mut tampered = sip("alice@v.ch", 1, 9, 60).signed(&alice);
        tampered.contact = "10.0.0.66:5060".parse().unwrap();
        assert_eq!(r.absorb_checked(tampered, now), Absorb::BadSig);
        // Mallory hijacks the AOR from her own origin with her own valid
        // key and a huge seq: pin mismatch, dropped, cache unchanged.
        let hijack = sip("alice@v.ch", 6, u64::MAX, 60).signed(&mallory);
        assert!(hijack.auth_valid());
        assert_eq!(r.absorb_checked(hijack, now), Absorb::PinMismatch);
        assert_eq!(r.lookup("sip", "alice@v.ch", now).len(), 1);
        assert_eq!(r.lookup("sip", "alice@v.ch", now)[0].origin, Addr::manet(1));
    }

    #[test]
    fn auth_policy_pins_gateway_origins() {
        use siphoc_simnet::ident::KeyPair;
        let mut r = SlpRegistry::new();
        r.set_require_signed(true);
        let now = SimTime::ZERO;
        let gw_key = KeyPair::for_addr(Addr::manet(2).0);
        let mallory = KeyPair::for_addr(Addr::manet(6).0);
        let gw = ServiceEntry::gateway("82.130.64.1:7077".parse().unwrap(), Addr::manet(2), 1, 60);
        assert_eq!(
            r.absorb_checked(gw.clone().signed(&gw_key), now),
            Absorb::Fresh
        );
        assert_eq!(
            r.pinned_origin_identity(Addr::manet(2)),
            Some(gw_key.identity())
        );
        // Impersonation: mallory forges the gateway's origin under her own
        // key (she cannot sign as the gateway) with a fresher seq.
        let mut forged = gw.clone();
        forged.seq = 99;
        forged.contact = "82.130.64.1:7077".parse().unwrap();
        assert_eq!(
            r.absorb_checked(forged.signed(&mallory), now),
            Absorb::PinMismatch
        );
        // The gateway's own key change is equally a pin mismatch — the
        // Connection Provider treats that as gateway death.
        let rotated = KeyPair::from_secret(0x5eed);
        let mut rekeyed = gw;
        rekeyed.seq = 100;
        assert_eq!(
            r.absorb_checked(rekeyed.signed(&rotated), now),
            Absorb::PinMismatch
        );
        // The legitimate gateway itself keeps refreshing fine.
        let fresh =
            ServiceEntry::gateway("82.130.64.1:7077".parse().unwrap(), Addr::manet(2), 2, 60);
        assert_eq!(r.absorb_checked(fresh.signed(&gw_key), now), Absorb::Fresh);
    }

    #[test]
    fn auth_policy_off_accepts_everything_unchanged() {
        let mut r = SlpRegistry::new();
        assert!(!r.require_signed());
        let now = SimTime::ZERO;
        assert_eq!(
            r.absorb_checked(sip("alice@v.ch", 1, 1, 60), now),
            Absorb::Fresh
        );
        // Forged unsigned hijack sails through — the documented defense-off
        // behavior the adversarial experiment measures.
        assert_eq!(
            r.absorb_checked(sip("alice@v.ch", 6, u64::MAX, 60), now),
            Absorb::Fresh
        );
        assert_eq!(r.lookup("sip", "alice@v.ch", now).len(), 2);
        assert_eq!(r.pinned_aor_identity("alice@v.ch"), None);
    }

    #[test]
    fn local_registration_wins_the_pin_race() {
        use siphoc_simnet::ident::KeyPair;
        let mut r = SlpRegistry::new();
        r.set_require_signed(true);
        let now = SimTime::ZERO;
        let me = KeyPair::for_addr(Addr::manet(0).0);
        let mallory = KeyPair::for_addr(Addr::manet(6).0);
        r.register_local(sip("alice@v.ch", 0, 1, 60), now); // unsigned: no pin
        r.register_local(sip("alice@v.ch", 0, 2, 60).signed(&me), now);
        assert_eq!(r.pinned_aor_identity("alice@v.ch"), Some(me.identity()));
        assert_eq!(
            r.absorb_checked(sip("alice@v.ch", 6, 9, 60).signed(&mallory), now),
            Absorb::PinMismatch
        );
    }

    #[test]
    fn render_shows_local_and_remote() {
        let mut r = SlpRegistry::new();
        let now = SimTime::ZERO;
        r.register_local(sip("alice@v.ch", 0, 1, 60), now);
        r.absorb(sip("bob@v.ch", 1, 1, 60), now);
        let s = r.render(now);
        assert!(s.contains("[local ]"));
        assert!(s.contains("[remote]"));
        assert!(s.contains("service:sip://alice@v.ch!10.0.0.1:5060"));
    }
}
