//! Service entries: the records MANET SLP stores and disseminates.
//!
//! SIPHoc advertises two service types through SLP:
//!
//! * `sip` — one entry per registered user, binding an address-of-record to
//!   the SIP endpoint of the proxy responsible for it (paper Fig. 4:
//!   "the proxy has advertised its own SIP endpoint address as the
//!   responsible contact address for the given user"), and
//! * `gateway` — published by the Gateway Provider on Internet-connected
//!   nodes, naming its layer-2 tunnel server.
//!
//! Entries use a human-readable single-line wire form (`SLP1 reg ...`),
//! which keeps packet captures legible — the property paper Fig. 5 relies
//! on to show SIP contact information inside an AODV route reply. Two
//! constraints of the format: keys and service types must be free of
//! whitespace, and the literal key `-` is reserved (it marks the empty
//! key on the wire and canonicalizes to it).

use std::fmt;
use std::str::FromStr;

use siphoc_simnet::ident::{self, KeyPair};
use siphoc_simnet::net::{Addr, SocketAddr};
use siphoc_simnet::time::SimTime;

/// Well-known service types.
pub mod service_types {
    /// SIP user binding: key is the AOR (`alice@voicehoc.ch`).
    pub const SIP: &str = "sip";
    /// Internet gateway: key is empty, contact is the tunnel server.
    pub const GATEWAY: &str = "gateway";
}

/// Authentication tail of a signed advert: the advertiser's public key
/// and its signature over [`ServiceEntry::signing_bytes`]. Appended to
/// the wire record as two extra hex tokens; unsigned entries serialize
/// exactly as before, so enabling the defense changes no bytes of
/// defense-off runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryAuth {
    /// The advertiser's public key (see [`siphoc_simnet::ident`]).
    pub pk: u64,
    /// Signature over the entry's signing bytes.
    pub sig: u64,
}

/// A service registration entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service type (`"sip"`, `"gateway"`).
    pub service_type: String,
    /// Lookup key within the type; the AOR for `sip`, empty for `gateway`.
    pub key: String,
    /// The advertised endpoint.
    pub contact: SocketAddr,
    /// Node that registered the entry (tie-breaking and refresh source).
    pub origin: Addr,
    /// Per-origin version; higher replaces lower for the same
    /// `(type, key, origin)`.
    pub seq: u64,
    /// Remaining lifetime in seconds at the time of serialization.
    pub lifetime_secs: u32,
    /// Signature tail; `None` for legacy/unsigned adverts.
    pub auth: Option<EntryAuth>,
}

impl ServiceEntry {
    /// Builds a SIP user binding.
    pub fn sip_binding(
        aor: &str,
        contact: SocketAddr,
        origin: Addr,
        seq: u64,
        lifetime_secs: u32,
    ) -> ServiceEntry {
        ServiceEntry {
            service_type: service_types::SIP.to_owned(),
            key: aor.to_lowercase(),
            contact,
            origin,
            seq,
            lifetime_secs,
            auth: None,
        }
    }

    /// Builds a gateway advertisement.
    pub fn gateway(
        contact: SocketAddr,
        origin: Addr,
        seq: u64,
        lifetime_secs: u32,
    ) -> ServiceEntry {
        ServiceEntry {
            service_type: service_types::GATEWAY.to_owned(),
            key: String::new(),
            contact,
            origin,
            seq,
            lifetime_secs,
            auth: None,
        }
    }

    /// The bytes a signature covers: every field except the remaining
    /// lifetime (refreshes re-serialize with a recomputed lifetime and
    /// must not invalidate the signature) and the auth tail itself.
    pub fn signing_bytes(&self) -> Vec<u8> {
        let key: &str = if self.key.is_empty() { "-" } else { &self.key };
        format!(
            "{} {} {} {} {}",
            self.service_type, key, self.contact, self.origin, self.seq
        )
        .into_bytes()
    }

    /// Attaches a signature tail produced with `kp`.
    #[must_use]
    pub fn signed(mut self, kp: &KeyPair) -> ServiceEntry {
        let sig = kp.sign(&self.signing_bytes());
        self.auth = Some(EntryAuth {
            pk: kp.public(),
            sig,
        });
        self
    }

    /// Verifies the signature tail. Unsigned entries fail.
    pub fn auth_valid(&self) -> bool {
        match self.auth {
            Some(EntryAuth { pk, sig }) => ident::verify(pk, &self.signing_bytes(), sig),
            None => false,
        }
    }

    /// The advertiser's self-certifying identity (hash of the attached
    /// public key), if the entry carries an auth tail.
    pub fn advertiser_identity(&self) -> Option<u64> {
        self.auth.map(|a| ident::identity_of(a.pk))
    }

    /// The SLP-style service URL, e.g.
    /// `service:sip://alice@voicehoc.ch!10.0.0.1:5060`.
    pub fn service_url(&self) -> String {
        if self.key.is_empty() {
            format!("service:{}://{}", self.service_type, self.contact)
        } else {
            format!(
                "service:{}://{}!{}",
                self.service_type, self.key, self.contact
            )
        }
    }

    /// Absolute expiry given the instant the entry was (de)serialized.
    pub fn expires_at(&self, now: SimTime) -> SimTime {
        now + siphoc_simnet::time::SimDuration::from_secs(self.lifetime_secs as u64)
    }

    /// Encodes the entry as a one-line wire record.
    pub fn to_wire(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }
}

impl fmt::Display for ServiceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `-` marks the empty key so the field count stays fixed.
        let key: &str = if self.key.is_empty() { "-" } else { &self.key };
        write!(
            f,
            "SLP1 reg {} {} {} {} {} {}",
            self.service_type, key, self.contact, self.origin, self.seq, self.lifetime_secs
        )?;
        if let Some(EntryAuth { pk, sig }) = self.auth {
            write!(f, " {pk:016x} {sig:016x}")?;
        }
        Ok(())
    }
}

/// Error parsing a service entry or query from its wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEntryError {
    what: &'static str,
}

impl ParseEntryError {
    pub(crate) fn new(what: &'static str) -> ParseEntryError {
        ParseEntryError { what }
    }
}

impl fmt::Display for ParseEntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SLP record: {}", self.what)
    }
}

impl std::error::Error for ParseEntryError {}

impl FromStr for ServiceEntry {
    type Err = ParseEntryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_ascii_whitespace();
        if it.next() != Some("SLP1") || it.next() != Some("reg") {
            return Err(ParseEntryError::new("not a reg record"));
        }
        let service_type = it.next().ok_or(ParseEntryError::new("type"))?.to_owned();
        let key_raw = it.next().ok_or(ParseEntryError::new("key"))?;
        let key = if key_raw == "-" {
            String::new()
        } else {
            key_raw.to_owned()
        };
        let contact = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("contact"))?;
        let origin = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("origin"))?;
        let seq = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("seq"))?;
        let lifetime_secs = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("lifetime"))?;
        // Optional auth tail: exactly two hex tokens, or nothing.
        let auth = match it.next() {
            None => None,
            Some(pk_raw) => {
                let pk =
                    u64::from_str_radix(pk_raw, 16).map_err(|_| ParseEntryError::new("auth pk"))?;
                let sig = it
                    .next()
                    .and_then(|v| u64::from_str_radix(v, 16).ok())
                    .ok_or(ParseEntryError::new("auth sig"))?;
                Some(EntryAuth { pk, sig })
            }
        };
        if it.next().is_some() {
            return Err(ParseEntryError::new("trailing fields"));
        }
        Ok(ServiceEntry {
            service_type,
            key,
            contact,
            origin,
            seq,
            lifetime_secs,
            auth,
        })
    }
}

/// A query piggybacked onto routing traffic (AODV service-query RREQs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceQuery {
    /// Requested service type.
    pub service_type: String,
    /// Requested key (`-` wire form for empty).
    pub key: String,
    /// The querying node.
    pub origin: Addr,
    /// Query id for matching replies to retries.
    pub qid: u64,
}

impl fmt::Display for ServiceQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let key: &str = if self.key.is_empty() { "-" } else { &self.key };
        write!(
            f,
            "SLP1 qry {} {} {} {}",
            self.service_type, key, self.origin, self.qid
        )
    }
}

impl ServiceQuery {
    /// Encodes the query as a one-line wire record.
    pub fn to_wire(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }

    /// Whether an entry satisfies this query.
    pub fn matches(&self, entry: &ServiceEntry) -> bool {
        entry.service_type == self.service_type && (self.key.is_empty() || entry.key == self.key)
    }
}

impl FromStr for ServiceQuery {
    type Err = ParseEntryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_ascii_whitespace();
        if it.next() != Some("SLP1") || it.next() != Some("qry") {
            return Err(ParseEntryError::new("not a qry record"));
        }
        let service_type = it.next().ok_or(ParseEntryError::new("type"))?.to_owned();
        let key_raw = it.next().ok_or(ParseEntryError::new("key"))?;
        let key = if key_raw == "-" {
            String::new()
        } else {
            key_raw.to_owned()
        };
        let origin = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("origin"))?;
        let qid = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ParseEntryError::new("qid"))?;
        Ok(ServiceQuery {
            service_type,
            key,
            origin,
            qid,
        })
    }
}

/// Decodes an arbitrary piggyback record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlpRecord {
    /// A registration entry.
    Reg(ServiceEntry),
    /// A query.
    Query(ServiceQuery),
}

impl SlpRecord {
    /// Parses either record kind from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntryError`] if the bytes are not a valid record.
    pub fn parse(bytes: &[u8]) -> Result<SlpRecord, ParseEntryError> {
        let s = std::str::from_utf8(bytes).map_err(|_| ParseEntryError::new("utf8"))?;
        if let Ok(e) = s.parse::<ServiceEntry>() {
            return Ok(SlpRecord::Reg(e));
        }
        s.parse::<ServiceQuery>().map(SlpRecord::Query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> ServiceEntry {
        ServiceEntry::sip_binding(
            "alice@voicehoc.ch",
            "10.0.0.1:5060".parse().unwrap(),
            Addr::manet(0),
            7,
            120,
        )
    }

    #[test]
    fn entry_wire_round_trip() {
        let e = entry();
        let s = e.to_string();
        assert_eq!(
            s,
            "SLP1 reg sip alice@voicehoc.ch 10.0.0.1:5060 10.0.0.1 7 120"
        );
        assert_eq!(s.parse::<ServiceEntry>().unwrap(), e);
    }

    #[test]
    fn gateway_entry_uses_dash_key() {
        let g = ServiceEntry::gateway("10.0.0.3:7077".parse().unwrap(), Addr::manet(2), 1, 60);
        let s = g.to_string();
        assert!(s.contains(" gateway - "), "{s}");
        assert_eq!(s.parse::<ServiceEntry>().unwrap(), g);
        assert_eq!(g.service_url(), "service:gateway://10.0.0.3:7077");
    }

    #[test]
    fn sip_service_url_includes_aor_and_contact() {
        assert_eq!(
            entry().service_url(),
            "service:sip://alice@voicehoc.ch!10.0.0.1:5060"
        );
    }

    #[test]
    fn query_round_trip_and_matching() {
        let q = ServiceQuery {
            service_type: "sip".into(),
            key: "bob@voicehoc.ch".into(),
            origin: Addr::manet(4),
            qid: 99,
        };
        let parsed: ServiceQuery = q.to_string().parse().unwrap();
        assert_eq!(parsed, q);
        assert!(!q.matches(&entry()));
        let bob = ServiceEntry::sip_binding(
            "bob@voicehoc.ch",
            "10.0.0.2:5060".parse().unwrap(),
            Addr::manet(1),
            1,
            60,
        );
        assert!(q.matches(&bob));
        // Empty-key query matches any entry of the type.
        let any_gw = ServiceQuery {
            service_type: "gateway".into(),
            key: String::new(),
            origin: Addr::manet(4),
            qid: 1,
        };
        let gw = ServiceEntry::gateway("10.0.0.3:7077".parse().unwrap(), Addr::manet(2), 1, 60);
        assert!(any_gw.matches(&gw));
    }

    #[test]
    fn record_parse_distinguishes_kinds() {
        let e = entry();
        assert_eq!(SlpRecord::parse(&e.to_wire()).unwrap(), SlpRecord::Reg(e));
        let q = ServiceQuery {
            service_type: "sip".into(),
            key: "x@y".into(),
            origin: Addr::manet(0),
            qid: 3,
        };
        assert_eq!(SlpRecord::parse(&q.to_wire()).unwrap(), SlpRecord::Query(q));
        assert!(SlpRecord::parse(b"junk").is_err());
        assert!(SlpRecord::parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn malformed_entries_rejected() {
        for s in [
            "SLP1 reg sip alice@v", // truncated
            "SLP1 reg sip a 10.0.0.1:5060 10.0.0.1 7 120 extra",
            "SLP2 reg sip a 10.0.0.1:5060 10.0.0.1 7 120",
            // Auth tail must be exactly two hex tokens.
            "SLP1 reg sip a 10.0.0.1:5060 10.0.0.1 7 120 deadbeef",
            "SLP1 reg sip a 10.0.0.1:5060 10.0.0.1 7 120 deadbeef beef junk",
            "SLP1 reg sip a 10.0.0.1:5060 10.0.0.1 7 120 deadbeef nothex",
        ] {
            assert!(s.parse::<ServiceEntry>().is_err(), "{s}");
        }
    }

    #[test]
    fn signed_entry_round_trips_and_verifies() {
        let kp = siphoc_simnet::ident::KeyPair::for_addr(0x0a00_0001);
        let e = entry().signed(&kp);
        assert!(e.auth_valid());
        assert_eq!(e.advertiser_identity(), Some(kp.identity()));
        let parsed: ServiceEntry = e.to_string().parse().unwrap();
        assert_eq!(parsed, e);
        assert!(parsed.auth_valid());
        // Unsigned entries serialize byte-identically to the legacy form.
        assert_eq!(
            entry().to_string(),
            "SLP1 reg sip alice@voicehoc.ch 10.0.0.1:5060 10.0.0.1 7 120"
        );
        assert!(!entry().auth_valid());
    }

    #[test]
    fn tampered_signed_entry_fails_verification() {
        let kp = siphoc_simnet::ident::KeyPair::for_addr(0x0a00_0001);
        let mut e = entry().signed(&kp);
        // The signature survives a lifetime refresh...
        e.lifetime_secs = 30;
        assert!(e.auth_valid());
        // ...but not a re-targeted contact, origin or seq bump.
        let mut hijacked = e.clone();
        hijacked.contact = "10.0.0.9:5060".parse().unwrap();
        assert!(!hijacked.auth_valid());
        let mut forged_origin = e.clone();
        forged_origin.origin = Addr::manet(8);
        assert!(!forged_origin.auth_valid());
        let mut boosted = e.clone();
        boosted.seq = u64::MAX;
        assert!(!boosted.auth_valid());
        // A different principal's key cannot stand in.
        let other = siphoc_simnet::ident::KeyPair::for_addr(0x0a00_0009);
        let stolen = entry().signed(&other);
        assert_ne!(stolen.advertiser_identity(), e.advertiser_identity());
    }
}
