//! MANET SLP: the paper's distributed service location layer.
//!
//! Two cooperating pieces per node share one [`SlpRegistry`]:
//!
//! * [`ManetSlpHandler`] — the routing-handler plugin ("the routing
//!   specific functionality is encapsulated within a routing handler"). It
//!   piggybacks registrations onto routing control messages, absorbs the
//!   ones it sees, and — on AODV service-query RREQs — produces answers
//!   that ride back on the route reply (paper Fig. 5).
//! * [`ManetSlpProcess`] — the SLP daemon offering the standard SLP
//!   interface on `127.0.0.1:427` to the SIPHoc proxy and the Gateway /
//!   Connection Providers. Lookups are answered from the shared registry;
//!   misses (in on-demand mode) trigger a routing-layer query flood.
//!
//! Dissemination style follows the routing protocol: with **AODV** the
//! handler attaches the node's *own* registrations to originated control
//! traffic and resolves misses with query floods (on-demand); with
//! **OLSR** every node gossips *everything it knows* on periodic
//! HELLO/TC messages, so the registry fully replicates and lookups are
//! local (proactive). Experiment E7 contrasts the two.

use std::cell::RefCell;
use std::rc::Rc;

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use siphoc_routing::handler::{MsgKind, RoutingHandler, FLOOD_QUERY_EVENT, HANDLER_UPDATED_EVENT};

use siphoc_simnet::ident::KeyPair;

use crate::msg::SlpMsg;
use crate::registry::{Absorb, SlpRegistry};
use crate::service::{ServiceEntry, ServiceQuery, SlpRecord};

/// How registrations spread through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dissemination {
    /// AODV style: advertise own entries on originated control messages;
    /// resolve lookup misses by flooding a query on a service RREQ.
    OnDemand,
    /// OLSR style: gossip the full registry on periodic control messages;
    /// lookups only consult the (eventually complete) local registry.
    Proactive,
}

/// MANET SLP configuration.
#[derive(Debug, Clone)]
pub struct ManetSlpConfig {
    /// Dissemination mode; match it to the routing protocol in use.
    pub mode: Dissemination,
    /// How long a lookup waits for a flood round before retrying.
    pub query_timeout: SimDuration,
    /// Additional flood rounds before a lookup reports "not found".
    pub query_retries: u32,
}

impl ManetSlpConfig {
    /// Defaults for AODV-style deployments.
    pub fn on_demand() -> ManetSlpConfig {
        ManetSlpConfig {
            mode: Dissemination::OnDemand,
            query_timeout: SimDuration::from_millis(800),
            query_retries: 2,
        }
    }

    /// Defaults for OLSR-style deployments: no floods, wait out gossip.
    pub fn proactive() -> ManetSlpConfig {
        ManetSlpConfig {
            mode: Dissemination::Proactive,
            query_timeout: SimDuration::from_secs(3),
            query_retries: 2,
        }
    }
}

/// The registry shared between daemon and handler.
pub type SharedRegistry = Rc<RefCell<SlpRegistry>>;

/// Creates a fresh shared registry.
pub fn shared_registry() -> SharedRegistry {
    Rc::new(RefCell::new(SlpRegistry::new()))
}

/// The routing-handler side of MANET SLP.
#[derive(Debug)]
pub struct ManetSlpHandler {
    registry: SharedRegistry,
    mode: Dissemination,
    /// Minimum interval between re-attaching an *unchanged* entry to
    /// periodic control messages. Changed entries (new sequence number)
    /// go out immediately; on-demand messages (AODV RREQ/RREP) always
    /// carry current entries since they are rare and latency-critical.
    min_readvertise: SimDuration,
    /// `(type, key, origin)` → `(seq, last attached)`.
    attach_log: std::collections::BTreeMap<(String, String, Addr), (u64, SimTime)>,
}

impl ManetSlpHandler {
    /// Creates the handler over a shared registry with the default 8 s
    /// re-advertisement throttle.
    pub fn new(registry: SharedRegistry, mode: Dissemination) -> ManetSlpHandler {
        ManetSlpHandler {
            registry,
            mode,
            min_readvertise: SimDuration::from_secs(8),
            attach_log: std::collections::BTreeMap::new(),
        }
    }

    /// Overrides the re-advertisement throttle ([`SimDuration::ZERO`]
    /// attaches everything to every message — the A1 ablation's
    /// unthrottled variant).
    pub fn with_min_readvertise(mut self, min: SimDuration) -> ManetSlpHandler {
        self.min_readvertise = min;
        self
    }

    /// Filters `entries` down to those not recently attached unchanged,
    /// updating the attach log for the survivors.
    fn throttle(&mut self, entries: Vec<ServiceEntry>, now: SimTime) -> Vec<ServiceEntry> {
        if self.min_readvertise.is_zero() {
            return entries;
        }
        entries
            .into_iter()
            .filter(|e| {
                let key = (e.service_type.clone(), e.key.clone(), e.origin);
                match self.attach_log.get(&key) {
                    Some((seq, last))
                        if *seq >= e.seq && now.saturating_since(*last) < self.min_readvertise =>
                    {
                        false
                    }
                    _ => {
                        self.attach_log.insert(key, (e.seq, now));
                        true
                    }
                }
            })
            .collect()
    }
}

impl RoutingHandler for ManetSlpHandler {
    fn name(&self) -> &'static str {
        "manet-slp"
    }

    fn collect_outgoing(
        &mut self,
        ctx: &mut Ctx<'_>,
        kind: MsgKind,
        _budget: usize,
    ) -> Vec<Vec<u8>> {
        let now = ctx.now();
        let entries = {
            let reg = self.registry.borrow();
            match self.mode {
                Dissemination::OnDemand => {
                    // Own registrations ride originated control messages;
                    // learned ones are served on demand via query replies.
                    reg.local_entries(now)
                }
                Dissemination::Proactive => match kind {
                    // Full gossip on network-wide and one-hop messages
                    // alike; hop-by-hop relay of learned entries is what
                    // replicates the registry everywhere.
                    MsgKind::OlsrHello | MsgKind::OlsrTc | MsgKind::AodvHello => {
                        reg.all_entries(now)
                    }
                    _ => reg.local_entries(now),
                },
            }
        };
        // Periodic vehicles are throttled; on-demand ones carry current
        // state (a service RREP must answer even if recently advertised).
        let entries = match kind {
            MsgKind::AodvHello | MsgKind::OlsrHello | MsgKind::OlsrTc => {
                self.throttle(entries, now)
            }
            MsgKind::AodvRreq | MsgKind::AodvRrep => entries,
        };
        entries.iter().map(ServiceEntry::to_wire).collect()
    }

    fn process_incoming(
        &mut self,
        ctx: &mut Ctx<'_>,
        kind: MsgKind,
        _from: Addr,
        _origin: Addr,
        entries: &[Vec<u8>],
    ) -> Vec<Vec<u8>> {
        let now = ctx.now();
        let mut answers = Vec::new();
        let mut changed = false;
        for raw in entries {
            match SlpRecord::parse(raw) {
                Ok(SlpRecord::Reg(e)) => match self.registry.borrow_mut().absorb_checked(e, now) {
                    Absorb::Fresh => changed = true,
                    Absorb::Stale => {}
                    Absorb::Unsigned | Absorb::BadSig => {
                        ctx.stats().count("slp.auth_reject", raw.len());
                    }
                    Absorb::PinMismatch => {
                        ctx.stats().count("slp.auth_pin_reject", raw.len());
                    }
                },
                Ok(SlpRecord::Query(q)) => {
                    if kind == MsgKind::AodvRreq {
                        for m in self.registry.borrow().matching(&q, now) {
                            answers.push(m.to_wire());
                        }
                    }
                }
                Err(_) => {
                    ctx.stats().count("slp.malformed_record", raw.len());
                }
            }
        }
        if changed {
            ctx.emit(LocalEvent::Custom {
                kind: HANDLER_UPDATED_EVENT,
                data: Vec::new(),
            });
        }
        answers
    }
}

const TAG_QUERY: u64 = 1;
const TAG_PURGE: u64 = 2;

#[derive(Debug)]
struct PendingQuery {
    xid: u32,
    requester: SocketAddr,
    query: ServiceQuery,
    deadline: SimTime,
    retries_left: u32,
    /// Exhaustive sweep: the network flood runs even when the local
    /// registry already holds matches, and the reply waits for the full
    /// deadline so late answers from distant providers are included.
    exhaustive: bool,
    /// Open observability span covering the distributed lookup.
    span: SpanId,
    /// When the lookup started, for the `slp.lookup_us` histogram.
    started_us: u64,
}

/// The MANET SLP daemon process.
pub struct ManetSlpProcess {
    cfg: ManetSlpConfig,
    registry: SharedRegistry,
    pending: Vec<PendingQuery>,
    next_qid: u64,
    /// When set, every local registration is signed with this key at
    /// creation time (the daemon is the single choke point where entries
    /// are born, so proxy and gateway adverts both come out signed).
    identity: Option<KeyPair>,
}

impl std::fmt::Debug for ManetSlpProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManetSlpProcess")
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl ManetSlpProcess {
    /// Creates the daemon over a shared registry.
    pub fn new(cfg: ManetSlpConfig, registry: SharedRegistry) -> ManetSlpProcess {
        ManetSlpProcess {
            cfg,
            registry,
            pending: Vec::new(),
            next_qid: 0,
            identity: None,
        }
    }

    /// Signs all local registrations with `kp` (the node's identity key).
    #[must_use]
    pub fn with_identity(mut self, kp: KeyPair) -> ManetSlpProcess {
        self.identity = Some(kp);
        self
    }

    fn reply(&self, ctx: &mut Ctx<'_>, to: SocketAddr, xid: u32, entries: Vec<ServiceEntry>) {
        let msg = SlpMsg::SrvRply { xid, entries };
        let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
        ctx.send(Datagram::new(src, to, msg.to_wire()));
    }

    fn flood(&mut self, ctx: &mut Ctx<'_>, query: &ServiceQuery) {
        ctx.stats().count("slp.query_flood", query.to_wire().len());
        ctx.emit(LocalEvent::Custom {
            kind: FLOOD_QUERY_EVENT,
            data: query.to_wire(),
        });
    }

    fn handle_lookup(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: SocketAddr,
        xid: u32,
        service_type: String,
        key: String,
        exhaustive: bool,
    ) {
        let now = ctx.now();
        if !exhaustive {
            let found: Vec<ServiceEntry> = self
                .registry
                .borrow()
                .lookup(&service_type, &key, now)
                .into_iter()
                .cloned()
                .collect();
            if !found.is_empty() {
                ctx.stats().count("slp.lookup_hit", 1);
                ctx.obs().counter_add("slp.lookup_hit", 1);
                ctx.span_instant(SpanCat::Slp, "slp.hit", Some(&key));
                self.reply(ctx, from, xid, found);
                return;
            }
            ctx.stats().count("slp.lookup_miss", 1);
        } else {
            ctx.stats().count("slp.lookup_sweep", 1);
        }
        let span = ctx.span_enter(SpanCat::Slp, "slp.lookup");
        // Wildcard lookups (e.g. the gateway probe's empty key) have no
        // meaningful correlation; an empty key would render as its own
        // bogus per-call group in the Chrome trace.
        if !key.is_empty() {
            ctx.obs().span_corr(span, &key);
        }
        let started_us = ctx.now_us();
        self.next_qid += 1;
        let query = ServiceQuery {
            service_type,
            key,
            origin: ctx.addr(),
            qid: self.next_qid,
        };
        if self.cfg.mode == Dissemination::OnDemand {
            self.flood(ctx, &query);
        }
        let deadline = now + self.cfg.query_timeout;
        self.pending.push(PendingQuery {
            xid,
            requester: from,
            query,
            deadline,
            retries_left: self.cfg.query_retries,
            exhaustive,
            span,
            started_us,
        });
        ctx.set_timer(self.cfg.query_timeout, TAG_QUERY);
    }

    /// Answers any pending query the registry can now satisfy. Exhaustive
    /// sweeps are excluded: a first match must not cut their collection
    /// window short — they resolve at the deadline in `sweep_deadlines`.
    fn drain_pending(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut resolved = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            if p.exhaustive {
                continue;
            }
            let found = self.registry.borrow().matching(&p.query, now);
            if !found.is_empty() {
                resolved.push((i, p.requester, p.xid, found, p.span, p.started_us));
            }
        }
        for (i, requester, xid, found, span, started_us) in resolved.into_iter().rev() {
            self.pending.remove(i);
            ctx.span_exit(span, true);
            let waited = ctx.now_us().saturating_sub(started_us);
            ctx.obs().hist_record("slp.lookup_us", waited);
            self.reply(ctx, requester, xid, found);
        }
    }

    fn sweep_deadlines(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let timeout = self.cfg.query_timeout;
        // (index, finished-sweep?) — sweeps resolve with whatever the
        // registry gathered; ordinary queries give up empty-handed.
        let mut done = Vec::new();
        let mut refloods = Vec::new();
        for (i, p) in self.pending.iter_mut().enumerate() {
            if p.deadline > now {
                continue;
            }
            if p.exhaustive {
                done.push((i, true));
            } else if p.retries_left > 0 {
                p.retries_left -= 1;
                p.deadline = now + timeout;
                refloods.push(p.query.clone());
            } else {
                done.push((i, false));
            }
        }
        for (i, sweep) in done.into_iter().rev() {
            let p = self.pending.remove(i);
            let found = if sweep {
                self.registry.borrow().matching(&p.query, now)
            } else {
                ctx.stats().count("slp.lookup_failed", 1);
                Vec::new()
            };
            ctx.span_exit(p.span, !found.is_empty());
            if sweep {
                let waited = ctx.now_us().saturating_sub(p.started_us);
                ctx.obs().hist_record("slp.lookup_us", waited);
            }
            self.reply(ctx, p.requester, p.xid, found);
        }
        if self.cfg.mode == Dissemination::OnDemand {
            for q in refloods {
                self.flood(ctx, &q);
                ctx.set_timer(timeout, TAG_QUERY);
            }
        } else if !self.pending.is_empty() {
            ctx.set_timer(timeout, TAG_QUERY);
        }
    }
}

impl Process for ManetSlpProcess {
    fn name(&self) -> &'static str {
        "manet-slp"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SLP);
        ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let Ok(msg) = SlpMsg::parse(&dgram.payload) else {
            ctx.stats().count("slp.malformed", dgram.payload.len());
            return;
        };
        match msg {
            SlpMsg::SrvReg {
                xid,
                service_type,
                key,
                contact,
                lifetime_secs,
            } => {
                let now = ctx.now();
                let origin = ctx.addr();
                let mut reg = self.registry.borrow_mut();
                let seq = reg.next_seq();
                let entry = ServiceEntry {
                    service_type,
                    key,
                    contact,
                    origin,
                    seq,
                    lifetime_secs,
                    auth: None,
                };
                let entry = match &self.identity {
                    Some(kp) => entry.signed(kp),
                    None => entry,
                };
                reg.register_local(entry, now);
                drop(reg);
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(
                    src,
                    dgram.src,
                    SlpMsg::SrvAck { xid }.to_wire(),
                ));
                // New local state may answer someone's outstanding query on
                // the next control message; nothing further to do here.
            }
            SlpMsg::SrvDeReg {
                xid,
                service_type,
                key,
            } => {
                let origin = ctx.addr();
                self.registry
                    .borrow_mut()
                    .deregister_local(&service_type, &key, origin);
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(
                    src,
                    dgram.src,
                    SlpMsg::SrvAck { xid }.to_wire(),
                ));
            }
            SlpMsg::SrvRqst {
                xid,
                service_type,
                key,
            } => {
                self.handle_lookup(ctx, dgram.src, xid, service_type, key, false);
            }
            SlpMsg::SrvRqstX {
                xid,
                service_type,
                key,
            } => {
                self.handle_lookup(ctx, dgram.src, xid, service_type, key, true);
            }
            _ => {
                ctx.stats().count("slp.unexpected_msg", dgram.payload.len());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TAG_QUERY => {
                self.drain_pending(ctx);
                self.sweep_deadlines(ctx);
            }
            TAG_PURGE => {
                let now = ctx.now();
                self.registry.borrow_mut().purge(now);
                ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
            }
            _ => {}
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        match ev {
            LocalEvent::Custom { kind, .. } if *kind == HANDLER_UPDATED_EVENT => {
                self.drain_pending(ctx);
            }
            LocalEvent::NodeRestarted => {
                for p in self.pending.drain(..) {
                    ctx.span_exit(p.span, false);
                }
                // Entries learned before the crash may describe a network
                // that no longer exists (the paper's churn scenario: nodes
                // and gateways leave at any time). Keep only what this
                // node itself advertises; fresh gossip re-fills the rest.
                let dropped = self.registry.borrow_mut().drop_remote();
                if dropped > 0 {
                    ctx.stats().count("slp.purged_restart", dropped);
                }
                ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_routing::aodv::{AodvConfig, AodvProcess};
    use siphoc_routing::olsr::{OlsrConfig, OlsrProcess};
    use siphoc_simnet::prelude::*;

    /// Test client that registers a service and/or performs one lookup.
    #[allow(clippy::type_complexity)]
    struct SlpClient {
        register: Option<(String, String, SocketAddr)>,
        lookup_at: Option<(SimTime, String, String)>,
        replies: Rc<RefCell<Vec<(SimTime, Vec<ServiceEntry>)>>>,
    }

    impl SlpClient {
        #[allow(clippy::type_complexity)]
        fn new(
            register: Option<(String, String, SocketAddr)>,
            lookup_at: Option<(SimTime, String, String)>,
        ) -> (SlpClient, Rc<RefCell<Vec<(SimTime, Vec<ServiceEntry>)>>>) {
            let replies = Rc::new(RefCell::new(Vec::new()));
            (
                SlpClient {
                    register,
                    lookup_at,
                    replies: replies.clone(),
                },
                replies,
            )
        }
    }

    impl Process for SlpClient {
        fn name(&self) -> &'static str {
            "slp-client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(9427);
            if let Some((t, k, contact)) = self.register.take() {
                let m = SlpMsg::SrvReg {
                    xid: 1,
                    service_type: t,
                    key: k,
                    contact,
                    lifetime_secs: 600,
                };
                ctx.send_local(ports::SLP, 9427, m.to_wire());
            }
            if let Some((at, _, _)) = &self.lookup_at {
                let delay = at.saturating_since(ctx.now());
                ctx.set_timer(delay, 7);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == 7 {
                if let Some((_, t, k)) = self.lookup_at.take() {
                    let m = SlpMsg::SrvRqst {
                        xid: 2,
                        service_type: t,
                        key: k,
                    };
                    ctx.send_local(ports::SLP, 9427, m.to_wire());
                }
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
            if let Ok(SlpMsg::SrvRply { entries, .. }) = SlpMsg::parse(&dgram.payload) {
                self.replies.borrow_mut().push((ctx.now(), entries));
            }
        }
    }

    use std::cell::RefCell;
    use std::rc::Rc;

    fn add_slp_node(
        w: &mut World,
        pos: (f64, f64),
        aodv: bool,
        cfg: ManetSlpConfig,
    ) -> (NodeId, SharedRegistry) {
        let id = w.add_node(NodeConfig::manet(pos.0, pos.1));
        let registry = shared_registry();
        let handler: Rc<RefCell<ManetSlpHandler>> = Rc::new(RefCell::new(ManetSlpHandler::new(
            registry.clone(),
            cfg.mode,
        )));
        if aodv {
            w.spawn(
                id,
                Box::new(AodvProcess::new(AodvConfig::default()).with_handler(handler)),
            );
        } else {
            w.spawn(
                id,
                Box::new(OlsrProcess::new(OlsrConfig::default()).with_handler(handler)),
            );
        }
        w.spawn(id, Box::new(ManetSlpProcess::new(cfg, registry.clone())));
        (id, registry)
    }

    #[test]
    fn local_register_then_local_lookup() {
        let mut w = World::new(WorldConfig::new(31).with_radio(RadioConfig::ideal()));
        let cfg = ManetSlpConfig::on_demand();
        let (id, _) = add_slp_node(&mut w, (0.0, 0.0), true, cfg);
        let (client, replies) = SlpClient::new(
            Some((
                "sip".into(),
                "alice@v.ch".into(),
                "10.0.0.1:5060".parse().unwrap(),
            )),
            Some((SimTime::from_millis(100), "sip".into(), "alice@v.ch".into())),
        );
        w.spawn(id, Box::new(client));
        w.run_for(SimDuration::from_secs(1));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1.len(), 1);
        assert_eq!(r[0].1[0].key, "alice@v.ch");
    }

    #[test]
    fn aodv_on_demand_lookup_across_three_hops() {
        let mut w = World::new(WorldConfig::new(32).with_radio(RadioConfig::ideal()));
        let cfg = ManetSlpConfig::on_demand;
        let mut nodes = Vec::new();
        for i in 0..4 {
            nodes.push(add_slp_node(&mut w, (i as f64 * 80.0, 0.0), true, cfg()));
        }
        // Bob's proxy registers on the far node.
        let (far, _) = nodes[3];
        let (reg_client, _) = SlpClient::new(
            Some((
                "sip".into(),
                "bob@v.ch".into(),
                "10.0.0.4:5060".parse().unwrap(),
            )),
            None,
        );
        w.spawn(far, Box::new(reg_client));
        w.run_for(SimDuration::from_secs(3));
        // Alice looks Bob up from the near node.
        let (near, near_reg) = (nodes[0].0, nodes[0].1.clone());
        let (lookup_client, replies) = SlpClient::new(
            None,
            Some((SimTime::from_secs(3), "sip".into(), "bob@v.ch".into())),
        );
        w.spawn(near, Box::new(lookup_client));
        w.run_for(SimDuration::from_secs(5));
        let r = replies.borrow();
        assert_eq!(r.len(), 1, "lookup must be answered");
        assert_eq!(r[0].1.len(), 1, "binding found: {:?}", r[0].1);
        assert_eq!(r[0].1[0].contact.to_string(), "10.0.0.4:5060");
        // The querying node cached the learned binding.
        assert!(!near_reg
            .borrow()
            .lookup("sip", "bob@v.ch", w.now())
            .is_empty());
        // And it learned a route to Bob's node from the service RREP.
        assert!(w
            .node(near)
            .routes()
            .lookup_specific(Addr::manet(3), w.now())
            .is_some());
    }

    #[test]
    fn olsr_proactive_lookup_is_local_after_gossip() {
        let mut w = World::new(WorldConfig::new(33).with_radio(RadioConfig::ideal()));
        let cfg = ManetSlpConfig::proactive;
        let mut nodes = Vec::new();
        for i in 0..4 {
            nodes.push(add_slp_node(&mut w, (i as f64 * 80.0, 0.0), false, cfg()));
        }
        let (far, _) = nodes[3];
        let (reg_client, _) = SlpClient::new(
            Some((
                "sip".into(),
                "bob@v.ch".into(),
                "10.0.0.4:5060".parse().unwrap(),
            )),
            None,
        );
        w.spawn(far, Box::new(reg_client));
        // Let gossip replicate.
        w.run_for(SimDuration::from_secs(30));
        for (i, (_, reg)) in nodes.iter().enumerate() {
            assert!(
                !reg.borrow().lookup("sip", "bob@v.ch", w.now()).is_empty(),
                "node {i} missing gossiped binding"
            );
        }
        // Lookup resolves instantly from the local registry.
        let (near, _) = nodes[0];
        let (lookup_client, replies) = SlpClient::new(
            None,
            Some((SimTime::from_secs(30), "sip".into(), "bob@v.ch".into())),
        );
        w.spawn(near, Box::new(lookup_client));
        w.run_for(SimDuration::from_secs(1));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1.len(), 1);
        let latency = r[0].0.saturating_since(SimTime::from_secs(30));
        assert!(
            latency < SimDuration::from_millis(10),
            "local lookup took {latency}"
        );
    }

    #[test]
    fn lookup_for_unknown_service_reports_empty_after_retries() {
        let mut w = World::new(WorldConfig::new(34).with_radio(RadioConfig::ideal()));
        let cfg = ManetSlpConfig::on_demand();
        let timeout = cfg.query_timeout;
        let retries = cfg.query_retries;
        let (id, _) = add_slp_node(&mut w, (0.0, 0.0), true, cfg);
        let (client, replies) = SlpClient::new(
            None,
            Some((SimTime::from_millis(100), "sip".into(), "ghost@v.ch".into())),
        );
        w.spawn(id, Box::new(client));
        w.run_for(SimDuration::from_secs(20));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert!(r[0].1.is_empty());
        // It waited out all retries first.
        let min_wait = timeout * (retries as u64 + 1);
        let waited = r[0].0.saturating_since(SimTime::from_millis(100));
        assert!(waited >= min_wait, "gave up too early: {waited}");
    }
}
