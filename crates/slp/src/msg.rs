//! SLP message formats.
//!
//! Two families share one line-oriented text syntax:
//!
//! * the **local API** between SLP clients (the SIPHoc proxy, the Gateway
//!   and Connection Providers) and the SLP daemon on `127.0.0.1:427` —
//!   `SRVREG` / `SRVDEREG` / `SRVRQST` / `SRVRPLY` / `SRVACK`, and
//! * the **multicast convergence** messages of the standard-SLP baseline —
//!   `MRQST` floods and their unicast `SRVRPLY` answers.
//!
//! Using the same `SRVRQST`/`SRVRPLY` client API for both the MANET SLP
//! daemon and the baseline makes them drop-in interchangeable, which the
//! lookup experiments (E2) rely on.

use std::fmt;

use siphoc_simnet::net::{Addr, SocketAddr};

use crate::service::{ParseEntryError, ServiceEntry};

/// An SLP API or network message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlpMsg {
    /// Register a service (client → daemon). The daemon assigns origin and
    /// sequence number.
    SrvReg {
        /// Client-chosen exchange id.
        xid: u32,
        /// Service type.
        service_type: String,
        /// Lookup key (empty allowed).
        key: String,
        /// Advertised endpoint.
        contact: SocketAddr,
        /// Requested lifetime in seconds.
        lifetime_secs: u32,
    },
    /// Remove a registration (client → daemon).
    SrvDeReg {
        /// Exchange id.
        xid: u32,
        /// Service type.
        service_type: String,
        /// Lookup key.
        key: String,
    },
    /// Acknowledge a registration (daemon → client).
    SrvAck {
        /// Echoed exchange id.
        xid: u32,
    },
    /// Look up services (client → daemon).
    SrvRqst {
        /// Exchange id.
        xid: u32,
        /// Service type.
        service_type: String,
        /// Lookup key (empty = any of the type).
        key: String,
    },
    /// Exhaustive lookup (client → daemon): always sweep the network —
    /// even when the local registry already holds matches — and reply
    /// with everything known once the sweep settles. Multi-homed clients
    /// use this to discover *additional* providers of a service they
    /// already consume (e.g. standby gateways beyond the active one).
    SrvRqstX {
        /// Exchange id.
        xid: u32,
        /// Service type.
        service_type: String,
        /// Lookup key (empty = any of the type).
        key: String,
    },
    /// Lookup result (daemon → client). Empty means not found.
    SrvRply {
        /// Echoed exchange id.
        xid: u32,
        /// Matching entries.
        entries: Vec<ServiceEntry>,
    },
    /// Standard-SLP multicast-convergence request, flooded hop by hop.
    McastRqst {
        /// Flood originator.
        origin: Addr,
        /// Flood id for duplicate suppression.
        fid: u32,
        /// Remaining flood radius.
        ttl: u8,
        /// Where matching service agents unicast their reply.
        reply_to: SocketAddr,
        /// Service type.
        service_type: String,
        /// Lookup key.
        key: String,
    },
}

fn key_out(key: &str) -> &str {
    if key.is_empty() {
        "-"
    } else {
        key
    }
}

fn key_in(raw: &str) -> String {
    if raw == "-" {
        String::new()
    } else {
        raw.to_owned()
    }
}

impl fmt::Display for SlpMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlpMsg::SrvReg {
                xid,
                service_type,
                key,
                contact,
                lifetime_secs,
            } => {
                write!(
                    f,
                    "SRVREG {xid} {service_type} {} {contact} {lifetime_secs}",
                    key_out(key)
                )
            }
            SlpMsg::SrvDeReg {
                xid,
                service_type,
                key,
            } => {
                write!(f, "SRVDEREG {xid} {service_type} {}", key_out(key))
            }
            SlpMsg::SrvAck { xid } => write!(f, "SRVACK {xid}"),
            SlpMsg::SrvRqst {
                xid,
                service_type,
                key,
            } => {
                write!(f, "SRVRQST {xid} {service_type} {}", key_out(key))
            }
            SlpMsg::SrvRqstX {
                xid,
                service_type,
                key,
            } => {
                write!(f, "SRVRQSTX {xid} {service_type} {}", key_out(key))
            }
            SlpMsg::SrvRply { xid, entries } => {
                write!(f, "SRVRPLY {xid} {}", entries.len())?;
                for e in entries {
                    write!(f, "\n{e}")?;
                }
                Ok(())
            }
            SlpMsg::McastRqst {
                origin,
                fid,
                ttl,
                reply_to,
                service_type,
                key,
            } => {
                write!(
                    f,
                    "MRQST {origin} {fid} {ttl} {reply_to} {service_type} {}",
                    key_out(key)
                )
            }
        }
    }
}

impl SlpMsg {
    /// Serializes the message.
    pub fn to_wire(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }

    /// Parses a message from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ParseEntryError`] on malformed input.
    pub fn parse(bytes: &[u8]) -> Result<SlpMsg, ParseEntryError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ParseEntryError::new("utf8"))?;
        let mut lines = text.lines();
        let head = lines.next().ok_or(ParseEntryError::new("empty"))?;
        let mut it = head.split_ascii_whitespace();
        let kind = it.next().ok_or(ParseEntryError::new("kind"))?;
        let mut next = |what: &'static str| it.next().ok_or(ParseEntryError::new(what));
        match kind {
            "SRVREG" => Ok(SlpMsg::SrvReg {
                xid: next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?,
                service_type: next("type")?.to_owned(),
                key: key_in(next("key")?),
                contact: next("contact")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("contact"))?,
                lifetime_secs: next("lifetime")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("lifetime"))?,
            }),
            "SRVDEREG" => Ok(SlpMsg::SrvDeReg {
                xid: next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?,
                service_type: next("type")?.to_owned(),
                key: key_in(next("key")?),
            }),
            "SRVACK" => Ok(SlpMsg::SrvAck {
                xid: next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?,
            }),
            "SRVRQST" => Ok(SlpMsg::SrvRqst {
                xid: next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?,
                service_type: next("type")?.to_owned(),
                key: key_in(next("key")?),
            }),
            "SRVRQSTX" => Ok(SlpMsg::SrvRqstX {
                xid: next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?,
                service_type: next("type")?.to_owned(),
                key: key_in(next("key")?),
            }),
            "SRVRPLY" => {
                let xid = next("xid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("xid"))?;
                let n: usize = next("count")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("count"))?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let line = lines.next().ok_or(ParseEntryError::new("entry line"))?;
                    entries.push(line.parse()?);
                }
                Ok(SlpMsg::SrvRply { xid, entries })
            }
            "MRQST" => Ok(SlpMsg::McastRqst {
                origin: next("origin")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("origin"))?,
                fid: next("fid")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("fid"))?,
                ttl: next("ttl")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("ttl"))?,
                reply_to: next("reply_to")?
                    .parse()
                    .map_err(|_| ParseEntryError::new("reply_to"))?,
                service_type: next("type")?.to_owned(),
                key: key_in(next("key")?),
            }),
            _ => Err(ParseEntryError::new("unknown kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_round_trip() {
        let entry = ServiceEntry::sip_binding(
            "alice@v.ch",
            "10.0.0.1:5060".parse().unwrap(),
            Addr::manet(0),
            1,
            60,
        );
        let msgs = vec![
            SlpMsg::SrvReg {
                xid: 1,
                service_type: "sip".into(),
                key: "alice@v.ch".into(),
                contact: "10.0.0.1:5060".parse().unwrap(),
                lifetime_secs: 120,
            },
            SlpMsg::SrvDeReg {
                xid: 2,
                service_type: "sip".into(),
                key: "alice@v.ch".into(),
            },
            SlpMsg::SrvAck { xid: 3 },
            SlpMsg::SrvRqst {
                xid: 4,
                service_type: "gateway".into(),
                key: String::new(),
            },
            SlpMsg::SrvRqstX {
                xid: 9,
                service_type: "gateway".into(),
                key: String::new(),
            },
            SlpMsg::SrvRply {
                xid: 5,
                entries: vec![entry.clone(), entry],
            },
            SlpMsg::SrvRply {
                xid: 6,
                entries: vec![],
            },
            SlpMsg::McastRqst {
                origin: Addr::manet(3),
                fid: 9,
                ttl: 8,
                reply_to: "10.0.0.4:427".parse().unwrap(),
                service_type: "sip".into(),
                key: "bob@v.ch".into(),
            },
        ];
        for m in msgs {
            let parsed = SlpMsg::parse(&m.to_wire()).unwrap_or_else(|e| panic!("{m:?}: {e}"));
            assert_eq!(parsed, m);
        }
    }

    #[test]
    fn empty_key_round_trips_as_dash() {
        let m = SlpMsg::SrvRqst {
            xid: 1,
            service_type: "gateway".into(),
            key: String::new(),
        };
        assert!(m.to_string().ends_with(" -"));
        assert_eq!(SlpMsg::parse(&m.to_wire()).unwrap(), m);
    }

    #[test]
    fn malformed_rejected() {
        assert!(SlpMsg::parse(b"").is_err());
        assert!(SlpMsg::parse(b"NOPE 1").is_err());
        assert!(SlpMsg::parse(b"SRVRPLY 1 2\nSLP1 reg sip a 10.0.0.1:5060 10.0.0.1 1 60").is_err());
        assert!(SlpMsg::parse(b"SRVREG x sip a 10.0.0.1:5060 60").is_err());
    }
}
