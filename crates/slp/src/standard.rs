//! Standard SLP baseline (RFC 2608 style multicast convergence).
//!
//! The related work the paper cites found that "SLP in its original form
//! is very inefficient in MANETs due to its heavy use of multicast
//! messages". This module implements that original form so the lookup
//! experiments (E2/E3) can measure the inefficiency instead of citing it:
//!
//! * registrations stay **local** to the registering node's service agent —
//!   nothing is disseminated;
//! * a lookup floods an `MRQST` network-wide (IP multicast over a MANET
//!   degenerates to flooding), retransmitting with the multicast
//!   convergence algorithm;
//! * any node holding a matching registration unicasts a `SRVRPLY` back to
//!   the requester — which, under AODV, first triggers a full route
//!   discovery for the reply path.
//!
//! The process exposes the same `127.0.0.1:427` client API as
//! [`crate::manet::ManetSlpProcess`], so the two are interchangeable in
//! every harness.

use std::collections::BTreeMap;

use siphoc_simnet::net::{ports, Addr, Datagram, L2Dst, SocketAddr};
use siphoc_simnet::process::{Ctx, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use crate::msg::SlpMsg;
use crate::registry::SlpRegistry;
use crate::service::{ServiceEntry, ServiceQuery};

/// Standard SLP parameters.
#[derive(Debug, Clone)]
pub struct StandardSlpConfig {
    /// Convergence retransmission interval (RFC 2608 `CONFIG_RETRY`).
    pub retry_interval: SimDuration,
    /// Number of retransmissions before giving up.
    pub retries: u32,
    /// Flood radius of multicast requests.
    pub flood_ttl: u8,
}

impl Default for StandardSlpConfig {
    fn default() -> StandardSlpConfig {
        StandardSlpConfig {
            retry_interval: SimDuration::from_secs(2),
            retries: 2,
            flood_ttl: 16,
        }
    }
}

const TAG_RETRY: u64 = 1;
const TAG_PURGE: u64 = 2;

#[derive(Debug)]
struct PendingLookup {
    xid: u32,
    requester: SocketAddr,
    query: ServiceQuery,
    fid: u32,
    deadline: SimTime,
    retries_left: u32,
}

/// The standard SLP agent process (service agent + user agent in one).
pub struct StandardSlpProcess {
    cfg: StandardSlpConfig,
    local: SlpRegistry,
    pending: Vec<PendingLookup>,
    seen_floods: BTreeMap<(Addr, u32), SimTime>,
    next_fid: u32,
}

impl std::fmt::Debug for StandardSlpProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandardSlpProcess")
            .field("local_entries", &self.local.len())
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl StandardSlpProcess {
    /// Creates a standard SLP agent.
    pub fn new(cfg: StandardSlpConfig) -> StandardSlpProcess {
        StandardSlpProcess {
            cfg,
            local: SlpRegistry::new(),
            pending: Vec::new(),
            seen_floods: BTreeMap::new(),
            next_fid: 0,
        }
    }

    fn reply_local(&self, ctx: &mut Ctx<'_>, to: SocketAddr, xid: u32, entries: Vec<ServiceEntry>) {
        let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
        ctx.send(Datagram::new(
            src,
            to,
            SlpMsg::SrvRply { xid, entries }.to_wire(),
        ));
    }

    fn flood(&mut self, ctx: &mut Ctx<'_>, msg: &SlpMsg) {
        let payload = msg.to_wire();
        ctx.stats().count("slp_std.mrqst", payload.len());
        let src = SocketAddr::new(ctx.addr(), ports::SLP);
        let dst = SocketAddr::new(Addr::BROADCAST, ports::SLP);
        ctx.send_link(L2Dst::Broadcast, Datagram::new(src, dst, payload));
    }

    fn start_lookup(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: SocketAddr,
        xid: u32,
        service_type: String,
        key: String,
    ) {
        let now = ctx.now();
        // Local service agent first.
        let found: Vec<ServiceEntry> = self
            .local
            .lookup(&service_type, &key, now)
            .into_iter()
            .cloned()
            .collect();
        if !found.is_empty() {
            self.reply_local(ctx, from, xid, found);
            return;
        }
        self.next_fid += 1;
        let fid = self.next_fid;
        let query = ServiceQuery {
            service_type: service_type.clone(),
            key: key.clone(),
            origin: ctx.addr(),
            qid: fid as u64,
        };
        let msg = SlpMsg::McastRqst {
            origin: ctx.addr(),
            fid,
            ttl: self.cfg.flood_ttl,
            reply_to: SocketAddr::new(ctx.addr(), ports::SLP),
            service_type,
            key,
        };
        self.seen_floods.insert((ctx.addr(), fid), now);
        self.flood(ctx, &msg);
        self.pending.push(PendingLookup {
            xid,
            requester: from,
            query,
            fid,
            deadline: now + self.cfg.retry_interval,
            retries_left: self.cfg.retries,
        });
        ctx.set_timer(self.cfg.retry_interval, TAG_RETRY);
    }

    fn on_mcast_rqst(&mut self, ctx: &mut Ctx<'_>, msg: SlpMsg) {
        let SlpMsg::McastRqst {
            origin,
            fid,
            ttl,
            reply_to,
            service_type,
            key,
        } = msg
        else {
            return;
        };
        if origin == ctx.addr() {
            return;
        }
        let now = ctx.now();
        if self.seen_floods.contains_key(&(origin, fid)) {
            return;
        }
        self.seen_floods.insert((origin, fid), now);
        // Answer from local registrations only — standard SLP service
        // agents speak for themselves.
        let found: Vec<ServiceEntry> = self
            .local
            .lookup(&service_type, &key, now)
            .into_iter()
            .cloned()
            .collect();
        if !found.is_empty() {
            let rply = SlpMsg::SrvRply {
                xid: fid,
                entries: found,
            };
            ctx.stats().count("slp_std.rply", rply.to_wire().len());
            // Routed unicast: under AODV this triggers route discovery.
            ctx.send_to(reply_to, ports::SLP, rply.to_wire());
        }
        if ttl > 1 {
            let fwd = SlpMsg::McastRqst {
                origin,
                fid,
                ttl: ttl - 1,
                reply_to,
                service_type,
                key,
            };
            self.flood(ctx, &fwd);
        }
    }

    fn on_network_reply(&mut self, ctx: &mut Ctx<'_>, xid_fid: u32, entries: Vec<ServiceEntry>) {
        // Match by flood id; first answer wins.
        if let Some(i) = self.pending.iter().position(|p| p.fid == xid_fid) {
            let p = self.pending.remove(i);
            debug_assert!(entries.iter().all(|e| p.query.matches(e)));
            self.reply_local(ctx, p.requester, p.xid, entries);
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let interval = self.cfg.retry_interval;
        let ttl = self.cfg.flood_ttl;
        let own = ctx.addr();
        let mut give_up = Vec::new();
        let mut refloods = Vec::new();
        for (i, p) in self.pending.iter_mut().enumerate() {
            if p.deadline > now {
                continue;
            }
            if p.retries_left > 0 {
                p.retries_left -= 1;
                p.deadline = now + interval;
                refloods.push(SlpMsg::McastRqst {
                    origin: own,
                    fid: p.fid,
                    ttl,
                    reply_to: SocketAddr::new(own, ports::SLP),
                    service_type: p.query.service_type.clone(),
                    key: p.query.key.clone(),
                });
            } else {
                give_up.push(i);
            }
        }
        for m in refloods {
            self.flood(ctx, &m);
            ctx.set_timer(interval, TAG_RETRY);
        }
        for i in give_up.into_iter().rev() {
            let p = self.pending.remove(i);
            ctx.stats().count("slp_std.lookup_failed", 1);
            self.reply_local(ctx, p.requester, p.xid, Vec::new());
        }
    }
}

impl Process for StandardSlpProcess {
    fn name(&self) -> &'static str {
        "standard-slp"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SLP);
        ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let Ok(msg) = SlpMsg::parse(&dgram.payload) else {
            ctx.stats().count("slp_std.malformed", dgram.payload.len());
            return;
        };
        let local_client = dgram.src.addr.is_loopback();
        match msg {
            SlpMsg::SrvReg {
                xid,
                service_type,
                key,
                contact,
                lifetime_secs,
            } if local_client => {
                let now = ctx.now();
                let origin = ctx.addr();
                let seq = self.local.next_seq();
                self.local.register_local(
                    ServiceEntry {
                        service_type,
                        key,
                        contact,
                        origin,
                        seq,
                        lifetime_secs,
                        auth: None,
                    },
                    now,
                );
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(
                    src,
                    dgram.src,
                    SlpMsg::SrvAck { xid }.to_wire(),
                ));
            }
            SlpMsg::SrvDeReg {
                xid,
                service_type,
                key,
            } if local_client => {
                let origin = ctx.addr();
                self.local.deregister_local(&service_type, &key, origin);
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(
                    src,
                    dgram.src,
                    SlpMsg::SrvAck { xid }.to_wire(),
                ));
            }
            SlpMsg::SrvRqst {
                xid,
                service_type,
                key,
            } if local_client => {
                self.start_lookup(ctx, dgram.src, xid, service_type, key);
            }
            SlpMsg::McastRqst { .. } => self.on_mcast_rqst(ctx, msg),
            SlpMsg::SrvRply { xid, entries } if !local_client => {
                self.on_network_reply(ctx, xid, entries);
            }
            _ => {
                ctx.stats()
                    .count("slp_std.unexpected_msg", dgram.payload.len());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TAG_RETRY => self.sweep(ctx),
            TAG_PURGE => {
                let now = ctx.now();
                self.local.purge(now);
                self.seen_floods
                    .retain(|_, t| now.saturating_since(*t) < SimDuration::from_secs(60));
                ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_routing::aodv::{AodvConfig, AodvProcess};
    use siphoc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    struct Client {
        register: Option<(String, String, SocketAddr)>,
        lookup_at: Option<(SimTime, String, String)>,
        replies: Rc<RefCell<Vec<(SimTime, Vec<ServiceEntry>)>>>,
    }

    impl Process for Client {
        fn name(&self) -> &'static str {
            "client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(9427);
            if let Some((t, k, c)) = self.register.take() {
                let m = SlpMsg::SrvReg {
                    xid: 1,
                    service_type: t,
                    key: k,
                    contact: c,
                    lifetime_secs: 600,
                };
                ctx.send_local(ports::SLP, 9427, m.to_wire());
            }
            if let Some((at, _, _)) = &self.lookup_at {
                ctx.set_timer(at.saturating_since(ctx.now()), 7);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == 7 {
                if let Some((_, t, k)) = self.lookup_at.take() {
                    ctx.send_local(
                        ports::SLP,
                        9427,
                        SlpMsg::SrvRqst {
                            xid: 2,
                            service_type: t,
                            key: k,
                        }
                        .to_wire(),
                    );
                }
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
            if let Ok(SlpMsg::SrvRply { entries, .. }) = SlpMsg::parse(&dgram.payload) {
                self.replies.borrow_mut().push((ctx.now(), entries));
            }
        }
    }

    fn world_with_std_slp(n: usize) -> (World, Vec<NodeId>) {
        let mut w = World::new(WorldConfig::new(44).with_radio(RadioConfig::ideal()));
        let ids: Vec<NodeId> = (0..n)
            .map(|i| w.add_node(NodeConfig::manet(i as f64 * 80.0, 0.0)))
            .collect();
        for &id in &ids {
            w.spawn(id, Box::new(AodvProcess::new(AodvConfig::default())));
            w.spawn(
                id,
                Box::new(StandardSlpProcess::new(StandardSlpConfig::default())),
            );
        }
        (w, ids)
    }

    #[test]
    fn flood_lookup_finds_remote_registration() {
        let (mut w, ids) = world_with_std_slp(4);
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            ids[3],
            Box::new(Client {
                register: Some((
                    "sip".into(),
                    "bob@v.ch".into(),
                    "10.0.0.4:5060".parse().unwrap(),
                )),
                lookup_at: None,
                replies: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        w.spawn(
            ids[0],
            Box::new(Client {
                register: None,
                lookup_at: Some((SimTime::from_secs(2), "sip".into(), "bob@v.ch".into())),
                replies: replies.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(15));
        let r = replies.borrow();
        assert_eq!(r.len(), 1, "lookup must complete");
        assert_eq!(r[0].1.len(), 1, "{:?}", r[0].1);
        assert_eq!(r[0].1[0].contact.to_string(), "10.0.0.4:5060");
        // The flood reached everyone: every node forwarded the MRQST.
        for &id in &ids[1..3] {
            assert!(
                w.node(id).stats().get("slp_std.mrqst").packets >= 1,
                "node {id} did not forward"
            );
        }
    }

    #[test]
    fn lookup_gives_up_empty_when_nothing_registered() {
        let (mut w, ids) = world_with_std_slp(3);
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            ids[0],
            Box::new(Client {
                register: None,
                lookup_at: Some((SimTime::from_secs(1), "sip".into(), "ghost@v.ch".into())),
                replies: replies.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(20));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert!(r[0].1.is_empty());
    }

    #[test]
    fn registrations_do_not_replicate() {
        // The defining inefficiency: registration state stays local.
        let (mut w, ids) = world_with_std_slp(2);
        w.spawn(
            ids[1],
            Box::new(Client {
                register: Some((
                    "sip".into(),
                    "bob@v.ch".into(),
                    "10.0.0.2:5060".parse().unwrap(),
                )),
                lookup_at: None,
                replies: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        w.run_for(SimDuration::from_secs(5));
        // Node 0 never heard about it without asking.
        assert_eq!(w.node(ids[0]).stats().get("slp_std.rply").packets, 0);
    }
}
