//! # siphoc-slp
//!
//! Service location for the SIPHoc reproduction:
//!
//! * [`manet`] — the paper's **MANET SLP**: a fully distributed SLP whose
//!   dissemination rides on routing-protocol control messages through the
//!   routing-handler plugin (`siphoc-routing`);
//! * [`standard`] — the RFC 2608 multicast-convergence baseline whose
//!   MANET inefficiency the paper's related work reports;
//! * [`registry`], [`service`], [`msg`] — the shared state and wire
//!   formats.

#![warn(missing_docs)]

pub mod manet;
pub mod msg;
pub mod registry;
pub mod service;
pub mod standard;

/// Trace dissector for SLP traffic (port 427): shows the message kind and
/// a terse summary.
pub fn slp_dissector(port: u16, payload: &[u8]) -> Option<(String, String)> {
    if port != 427 {
        return None;
    }
    let info = match msg::SlpMsg::parse(payload) {
        Ok(msg::SlpMsg::SrvReg {
            service_type,
            key,
            contact,
            ..
        }) => {
            format!("SrvReg {service_type} {key} -> {contact}")
        }
        Ok(msg::SlpMsg::SrvDeReg {
            service_type, key, ..
        }) => format!("SrvDeReg {service_type} {key}"),
        Ok(msg::SlpMsg::SrvAck { xid }) => format!("SrvAck xid={xid}"),
        Ok(msg::SlpMsg::SrvRqst {
            service_type, key, ..
        }) => format!("SrvRqst {service_type} {key}"),
        Ok(msg::SlpMsg::SrvRqstX {
            service_type, key, ..
        }) => format!("SrvRqstX {service_type} {key}"),
        Ok(msg::SlpMsg::SrvRply { entries, .. }) => format!("SrvRply {} entries", entries.len()),
        Ok(msg::SlpMsg::McastRqst {
            service_type,
            key,
            ttl,
            ..
        }) => {
            format!("McastRqst {service_type} {key} ttl={ttl}")
        }
        Err(_) => {
            // Baseline traffic shares the port.
            let head = String::from_utf8_lossy(payload);
            let head = head.lines().next().unwrap_or_default();
            if head.starts_with("BREG") || head.starts_with("PHELLO") {
                head.chars().take(60).collect()
            } else {
                "malformed".to_owned()
            }
        }
    };
    Some(("slp".to_owned(), info))
}
