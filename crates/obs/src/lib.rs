//! Observability spine for the SIPHoc reproduction.
//!
//! Three pieces, mirroring what a serving stack ships with:
//!
//! * [`metrics`] — a typed registry of counters, gauges and HDR-style
//!   latency histograms with label support, exportable as Prometheus
//!   text or JSON. Replaces flat string-counter dumps as the export
//!   surface; the simulator's per-node `NodeStats` shards are merged
//!   into a [`Registry`] with a `node` label at export time.
//! * [`span`] — structured span tracing on *virtual sim time*, recorded
//!   out-of-band so traced and untraced runs are event-identical.
//! * [`chrome`] — Chrome `trace_event` JSON export plus per-call
//!   timeline assembly (spans correlated by Call-ID), viewable in
//!   `chrome://tracing` or Perfetto.
//!
//! # Zero cost when disabled
//!
//! Hot-path instrumentation goes through [`NodeObs`], the per-node
//! facade. With the `enabled` cargo feature off (the default), `NodeObs`
//! is a zero-sized struct whose methods are empty `#[inline]` bodies —
//! call sites compile away entirely, which is what lets the bench
//! harness pin "obs off ⇒ no regression". The registry, span log and
//! exporters themselves are always compiled: they only run on cold
//! export paths.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod span;

pub use chrome::{call_timelines, chrome_trace_json, CallTimeline, TaggedSpan};
pub use metrics::{Histogram, MetricKey, Registry};
pub use span::{SpanCat, SpanId, SpanLog, SpanRecord};

/// Whether this build records observability data.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-node observability shard: metric counters/gauges/histograms plus
/// the span log, all keyed by `&'static str` so the hot path never
/// allocates a metric name.
///
/// Spans additionally respect a runtime `tracing` switch (off by
/// default): metrics are always recorded when the feature is on, spans
/// only when tracing is turned on for the node (the simulator's
/// `World::set_tracing` flips every node).
#[cfg(feature = "enabled")]
#[derive(Debug, Default)]
pub struct NodeObs {
    tracing: bool,
    spans: SpanLog,
    counters: std::collections::BTreeMap<&'static str, u64>,
    gauges: std::collections::BTreeMap<&'static str, f64>,
    hists: std::collections::BTreeMap<&'static str, Histogram>,
}

/// Per-node observability shard (no-op build): zero-sized, every method
/// an empty inline body.
#[cfg(not(feature = "enabled"))]
#[derive(Debug, Default)]
pub struct NodeObs;

#[cfg(feature = "enabled")]
impl NodeObs {
    /// Whether span tracing is currently on for this node.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Turns span tracing on or off for this node.
    #[inline]
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Adds `v` to a node-local counter.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_default() += v;
    }

    /// Sets a node-local gauge.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records one sample into a node-local histogram.
    #[inline]
    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Opens a span (no-op unless tracing is on; returns
    /// [`SpanId::NONE`] then).
    #[inline]
    pub fn span_enter(&mut self, cat: SpanCat, name: &'static str, now_us: u64) -> SpanId {
        if !self.tracing {
            return SpanId::NONE;
        }
        self.spans.enter(cat, name, now_us)
    }

    /// Attaches a correlation key (Call-ID) to an open span.
    #[inline]
    pub fn span_corr(&mut self, id: SpanId, corr: &str) {
        if !id.is_none() {
            self.spans.correlate(id, corr);
        }
    }

    /// Attaches a free-form note to an open span.
    #[inline]
    pub fn span_note(&mut self, id: SpanId, note: &str) {
        if !id.is_none() {
            self.spans.note(id, note);
        }
    }

    /// Closes a span.
    #[inline]
    pub fn span_exit(&mut self, id: SpanId, now_us: u64, ok: bool) {
        self.spans.exit(id, now_us, ok);
    }

    /// Records a point-in-time marker (no-op unless tracing is on).
    #[inline]
    pub fn span_instant(
        &mut self,
        cat: SpanCat,
        name: &'static str,
        now_us: u64,
        corr: Option<&str>,
    ) {
        if self.tracing {
            self.spans.instant(cat, name, now_us, corr);
        }
    }

    /// Completed spans recorded by this node.
    pub fn spans(&self) -> &[SpanRecord] {
        self.spans.records()
    }

    /// Still-open spans as unfinished records ending at `now_us`.
    pub fn open_spans(&self, now_us: u64) -> Vec<SpanRecord> {
        self.spans.open_records(now_us)
    }

    /// Merges this shard's metrics into `reg`, labelling each series
    /// with `node`.
    pub fn merge_metrics_into(&self, reg: &mut Registry, node: &str) {
        let labels = [("node", node)];
        for (name, v) in &self.counters {
            reg.counter_add(name, &labels, *v);
        }
        for (name, v) in &self.gauges {
            reg.gauge_set(name, &labels, *v);
        }
        for (name, h) in &self.hists {
            reg.hist_merge(name, &labels, h);
        }
        if self.spans.dropped() > 0 {
            reg.counter_add("obs.spans_dropped", &labels, self.spans.dropped());
        }
    }
}

#[cfg(not(feature = "enabled"))]
impl NodeObs {
    /// Whether span tracing is currently on (never, in a no-op build).
    #[inline(always)]
    pub fn tracing(&self) -> bool {
        false
    }

    /// Turns span tracing on or off (no-op build: ignored).
    #[inline(always)]
    pub fn set_tracing(&mut self, _on: bool) {}

    /// Adds to a counter (no-op build: compiled away).
    #[inline(always)]
    pub fn counter_add(&mut self, _name: &'static str, _v: u64) {}

    /// Sets a gauge (no-op build: compiled away).
    #[inline(always)]
    pub fn gauge_set(&mut self, _name: &'static str, _v: f64) {}

    /// Records a histogram sample (no-op build: compiled away).
    #[inline(always)]
    pub fn hist_record(&mut self, _name: &'static str, _v: u64) {}

    /// Opens a span (no-op build: always [`SpanId::NONE`]).
    #[inline(always)]
    pub fn span_enter(&mut self, _cat: SpanCat, _name: &'static str, _now_us: u64) -> SpanId {
        SpanId::NONE
    }

    /// Attaches a correlation key (no-op build: compiled away).
    #[inline(always)]
    pub fn span_corr(&mut self, _id: SpanId, _corr: &str) {}

    /// Attaches a note (no-op build: compiled away).
    #[inline(always)]
    pub fn span_note(&mut self, _id: SpanId, _note: &str) {}

    /// Closes a span (no-op build: compiled away).
    #[inline(always)]
    pub fn span_exit(&mut self, _id: SpanId, _now_us: u64, _ok: bool) {}

    /// Records an instant marker (no-op build: compiled away).
    #[inline(always)]
    pub fn span_instant(
        &mut self,
        _cat: SpanCat,
        _name: &'static str,
        _now_us: u64,
        _corr: Option<&str>,
    ) {
    }

    /// Completed spans (no-op build: always empty).
    pub fn spans(&self) -> &[SpanRecord] {
        &[]
    }

    /// Still-open spans (no-op build: always empty).
    pub fn open_spans(&self, _now_us: u64) -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Merges shard metrics into `reg` (no-op build: nothing to merge).
    pub fn merge_metrics_into(&self, _reg: &mut Registry, _node: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esc_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn node_obs_records_metrics_without_tracing() {
        let mut obs = NodeObs::default();
        obs.counter_add("sip.txn_tx", 2);
        obs.hist_record("sip.call_setup_us", 1200);
        // Spans require the runtime switch.
        let id = obs.span_enter(SpanCat::Sip, "sip.invite", 0);
        assert!(id.is_none());
        obs.set_tracing(true);
        let id = obs.span_enter(SpanCat::Sip, "sip.invite", 0);
        assert!(!id.is_none());
        obs.span_exit(id, 10, true);
        assert_eq!(obs.spans().len(), 1);

        let mut reg = Registry::new();
        obs.merge_metrics_into(&mut reg, "n0");
        assert_eq!(reg.counter("sip.txn_tx", &[("node", "n0")]), 2);
        assert_eq!(
            reg.hist("sip.call_setup_us", &[("node", "n0")])
                .unwrap()
                .count(),
            1
        );
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_node_obs_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NodeObs>(), 0);
        let mut obs = NodeObs::default();
        obs.counter_add("x", 1);
        obs.set_tracing(true);
        let id = obs.span_enter(SpanCat::Sip, "s", 0);
        assert!(id.is_none());
        assert!(obs.spans().is_empty());
        let mut reg = Registry::new();
        obs.merge_metrics_into(&mut reg, "n0");
        assert!(reg.is_empty());
    }
}
