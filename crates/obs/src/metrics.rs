//! Typed, hierarchical metrics: counters, gauges and HDR-style latency
//! histograms with label support, exportable as Prometheus text or JSON.
//!
//! Metric names keep the repo's dotted convention (`sip.call_setup_us`);
//! the Prometheus exporter rewrites dots to underscores since `.` is not
//! legal in a Prometheus metric name. Labels are sorted key/value pairs;
//! the per-node aggregation in `siphoc-simnet` attaches a `node` label
//! when it merges node-local shards into one [`Registry`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of sub-bucket bits per octave. 16 sub-buckets bound the
/// relative quantile error at 1/16 ≈ 6.25% — the classic HDR trade-off.
const SUB_BITS: u32 = 4;
/// Values below `2^(SUB_BITS+1)` are recorded exactly.
const LINEAR_LIMIT: u64 = 1 << (SUB_BITS + 1);

/// A log-linear (HDR-style) histogram of `u64` samples.
///
/// Values up to 31 are exact; above that each power-of-two octave is split
/// into 16 sub-buckets, so quantile estimates carry at most ~6% relative
/// error while the whole range of `u64` fits in under a thousand buckets.
///
/// # Examples
///
/// ```
/// use siphoc_obs::metrics::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [10, 20, 30, 1000, 2000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), 10);
/// assert_eq!(h.max(), 2000);
/// assert!(h.quantile(0.5) >= 30 && h.quantile(0.5) < 32);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Lazily grown; index per [`bucket_index`].
    buckets: Vec<u64>,
}

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_LIMIT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR_LIMIT as usize + ((msb - SUB_BITS - 1) as usize) * (1 << SUB_BITS) + sub
}

/// Inclusive upper bound of a bucket (used for `le` export and quantiles).
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR_LIMIT as usize {
        return idx as u64;
    }
    let b = idx - LINEAR_LIMIT as usize;
    let octave = (b / (1 << SUB_BITS)) as u32;
    let sub = (b % (1 << SUB_BITS)) as u64;
    let msb = octave + SUB_BITS + 1;
    let shift = msb - SUB_BITS;
    (1u64 << msb) + ((sub + 1) << shift) - 1
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket holding the matching sample, clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
    }

    /// Iterates non-empty buckets as `(upper_bound, count)` in order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
    }
}

/// A metric identity: dotted name plus sorted `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `sip.call_setup_us`.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }
}

/// A typed metrics registry: the aggregation and export surface.
///
/// Hot paths record into per-node shards (`NodeObs`); a [`Registry`] is
/// what those shards merge into for export, and what harness-level code
/// records world-scoped series into directly.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    hists: BTreeMap<MetricKey, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_default() += v;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(MetricKey::new(name, labels), v);
    }

    /// Records one histogram sample.
    pub fn hist_record(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.hists
            .entry(MetricKey::new(name, labels))
            .or_default()
            .record(v);
    }

    /// Merges a pre-built histogram (node-shard export path).
    pub fn hist_merge(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.hists
            .entry(MetricKey::new(name, labels))
            .or_default()
            .merge(h);
    }

    /// Current value of a counter (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// A histogram, if recorded.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.hists.get(&MetricKey::new(name, labels))
    }

    /// Sums every counter whose name starts with `prefix`, across labels.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Merges every metric of `other` into this registry.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Whether the registry holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Dots in metric names become underscores; histograms export as
    /// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();
        for (k, v) in &self.counters {
            prom_type_line(&mut out, &mut last_name, &k.name, "counter");
            let _ = writeln!(
                out,
                "{}{} {}",
                prom_name(&k.name),
                prom_labels(&k.labels, None),
                v
            );
        }
        for (k, v) in &self.gauges {
            prom_type_line(&mut out, &mut last_name, &k.name, "gauge");
            let _ = writeln!(
                out,
                "{}{} {}",
                prom_name(&k.name),
                prom_labels(&k.labels, None),
                v
            );
        }
        for (k, h) in &self.hists {
            prom_type_line(&mut out, &mut last_name, &k.name, "histogram");
            let name = prom_name(&k.name);
            let mut cumulative = 0u64;
            for (upper, count) in h.nonzero_buckets() {
                cumulative += count;
                let le = upper.to_string();
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    name,
                    prom_labels(&k.labels, Some(("le", &le))),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                name,
                prom_labels(&k.labels, Some(("le", "+Inf"))),
                h.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                name,
                prom_labels(&k.labels, None),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                name,
                prom_labels(&k.labels, None),
                h.count()
            );
        }
        out
    }

    /// Renders the registry as a JSON document with `counters`, `gauges`
    /// and `histograms` sections. Deterministic: keys are emitted in
    /// `BTreeMap` order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &self.counters {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if first { "" } else { "," },
                crate::esc(&json_key(k)),
                v
            );
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        first = true;
        for (k, v) in &self.gauges {
            let _ = write!(
                out,
                "{}\n    \"{}\": {}",
                if first { "" } else { "," },
                crate::esc(&json_key(k)),
                fmt_f64(*v)
            );
            first = false;
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (k, h) in &self.hists {
            let _ = write!(
                out,
                "{}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                if first { "" } else { "," },
                crate::esc(&json_key(k)),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                fmt_f64(h.mean()),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            );
            first = false;
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

/// `name{a="x",b="y"}` for a flat JSON key.
fn json_key(k: &MetricKey) -> String {
    if k.labels.is_empty() {
        return k.name.clone();
    }
    let mut s = k.name.clone();
    s.push('{');
    for (i, (lk, lv)) in k.labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{lk}={lv}");
    }
    s.push('}');
    s
}

/// Formats an `f64` so integers stay integral (`3` not `3.0` is wrong for
/// JSON gauges — keep one decimal for stability).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Prometheus metric name: dots become underscores.
fn prom_name(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

/// Emits one `# TYPE` line per metric name.
fn prom_type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {} {}", prom_name(name), kind);
        *last = name.to_owned();
    }
}

/// Renders a Prometheus label set, optionally with one extra pair.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "{}=\"{}\"", prom_name(k), crate::esc(v));
        first = false;
    }
    if let Some((k, v)) = extra {
        if !first {
            s.push(',');
        }
        let _ = write!(s, "{}=\"{}\"", k, crate::esc(v));
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        let mut values: Vec<u64> = (0..63)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotonic at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value at {v}");
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < 1024);
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [3u64, 17, 900, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_and_prefix_sums() {
        let mut r = Registry::new();
        r.counter_add("sip.txn_tx", &[("node", "n0")], 2);
        r.counter_add("sip.txn_tx", &[("node", "n1")], 3);
        r.counter_add("slp.lookup_hit", &[], 1);
        assert_eq!(r.counter("sip.txn_tx", &[("node", "n0")]), 2);
        assert_eq!(r.sum_prefix("sip."), 5);
        assert_eq!(r.sum_prefix(""), 6);
    }

    #[test]
    fn registry_merge_accumulates() {
        let mut a = Registry::new();
        a.counter_add("x", &[], 1);
        a.hist_record("h", &[], 10);
        let mut b = Registry::new();
        b.counter_add("x", &[], 2);
        b.gauge_set("g", &[], 4.0);
        b.hist_record("h", &[], 20);
        a.merge(&b);
        assert_eq!(a.counter("x", &[]), 3);
        assert_eq!(a.gauge("g", &[]), Some(4.0));
        assert_eq!(a.hist("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn prometheus_snapshot() {
        let mut r = Registry::new();
        r.counter_add("sip.txn_tx", &[("node", "n0")], 7);
        r.gauge_set("world.nodes", &[], 2.0);
        r.hist_record("sip.call_setup_us", &[], 100);
        r.hist_record("sip.call_setup_us", &[], 100);
        let text = r.render_prometheus();
        let expected = "\
# TYPE sip_txn_tx counter
sip_txn_tx{node=\"n0\"} 7
# TYPE world_nodes gauge
world_nodes 2
# TYPE sip_call_setup_us histogram
sip_call_setup_us_bucket{le=\"103\"} 2
sip_call_setup_us_bucket{le=\"+Inf\"} 2
sip_call_setup_us_sum 200
sip_call_setup_us_count 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_snapshot() {
        let mut r = Registry::new();
        r.counter_add("a.b", &[("node", "n1")], 4);
        r.gauge_set("g", &[], 1.5);
        r.hist_record("h_us", &[], 8);
        let json = r.render_json();
        let expected = "{\n  \"counters\": {\n    \"a.b{node=n1}\": 4\n  },\n  \"gauges\": {\n    \"g\": 1.5\n  },\n  \"histograms\": {\n    \"h_us\": {\"count\": 1, \"sum\": 8, \"min\": 8, \"max\": 8, \"mean\": 8.0, \"p50\": 8, \"p95\": 8, \"p99\": 8}\n  }\n}\n";
        assert_eq!(json, expected);
    }

    #[test]
    fn empty_registry_renders_valid_documents() {
        let r = Registry::new();
        assert_eq!(r.render_prometheus(), "");
        assert!(r.render_json().contains("\"counters\": {}"));
        assert!(r.is_empty());
    }
}
