//! Structured span tracing on virtual sim time.
//!
//! Spans are recorded *out-of-band*: entering or exiting a span never
//! schedules simulator events, never draws from any RNG stream and never
//! changes dispatch order, so a traced run is event-identical to an
//! untraced one — the determinism contract `tests/perf_equivalence.rs`
//! pins. Open spans live in a slab with a LIFO free list (the same idiom
//! as the simulator's event-queue slab), so enter/exit is two vector
//! index operations with no per-span allocation beyond the optional
//! correlation string.

/// What subsystem a span belongs to; becomes the Chrome `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanCat {
    /// SIP user agents, transactions and proxies.
    Sip,
    /// SLP lookups and resolution.
    Slp,
    /// Route discovery and maintenance.
    Routing,
    /// Gateway tunnel handshakes.
    Tunnel,
    /// Media/RTP milestones.
    Media,
    /// Simulator-internal spans.
    Sim,
}

impl SpanCat {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanCat::Sip => "sip",
            SpanCat::Slp => "slp",
            SpanCat::Routing => "routing",
            SpanCat::Tunnel => "tunnel",
            SpanCat::Media => "media",
            SpanCat::Sim => "sim",
        }
    }
}

/// A completed (or instant) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Subsystem category.
    pub cat: SpanCat,
    /// Span name, e.g. `sip.invite`.
    pub name: &'static str,
    /// Start, in sim microseconds.
    pub start_us: u64,
    /// Duration in sim microseconds (0 for instants).
    pub dur_us: u64,
    /// Correlation key — the Call-ID for call-scoped spans.
    pub corr: Option<Box<str>>,
    /// Whether the operation succeeded.
    pub ok: bool,
    /// Free-form annotation.
    pub note: Option<Box<str>>,
    /// True for point-in-time markers.
    pub instant: bool,
}

#[derive(Debug)]
struct OpenSpan {
    cat: SpanCat,
    name: &'static str,
    start_us: u64,
    corr: Option<Box<str>>,
    note: Option<Box<str>>,
}

/// Handle to an open span.
///
/// Instrumented structs store one unconditionally; with the `enabled`
/// feature off nothing ever hands out a non-[`SpanId::NONE`] handle and
/// every operation on it is a no-op through [`crate::NodeObs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The null handle: operations on it are ignored.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this is the null handle.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

impl Default for SpanId {
    fn default() -> SpanId {
        SpanId::NONE
    }
}

/// Default cap on retained completed spans per log.
const DEFAULT_SPAN_CAP: usize = 1 << 18;

/// An append-mostly log of spans for one node.
#[derive(Debug)]
pub struct SpanLog {
    /// Slab of open spans; `None` slots are free.
    open: Vec<Option<OpenSpan>>,
    /// LIFO free list of open-slab slots.
    free: Vec<u32>,
    done: Vec<SpanRecord>,
    cap: usize,
    dropped: u64,
}

impl Default for SpanLog {
    fn default() -> SpanLog {
        SpanLog {
            open: Vec::new(),
            free: Vec::new(),
            done: Vec::new(),
            cap: DEFAULT_SPAN_CAP,
            dropped: 0,
        }
    }
}

impl SpanLog {
    /// Opens a span. The returned id must be passed to [`SpanLog::exit`]
    /// exactly once; the caller should overwrite its stored copy with
    /// [`SpanId::NONE`] afterwards (slots are reused).
    pub fn enter(&mut self, cat: SpanCat, name: &'static str, now_us: u64) -> SpanId {
        let span = OpenSpan {
            cat,
            name,
            start_us: now_us,
            corr: None,
            note: None,
        };
        match self.free.pop() {
            Some(slot) => {
                self.open[slot as usize] = Some(span);
                SpanId(slot)
            }
            None => {
                if self.open.len() >= u32::MAX as usize - 1 {
                    return SpanId::NONE;
                }
                self.open.push(Some(span));
                SpanId((self.open.len() - 1) as u32)
            }
        }
    }

    /// Attaches a correlation key (Call-ID) to an open span.
    pub fn correlate(&mut self, id: SpanId, corr: &str) {
        if let Some(Some(span)) = self.open.get_mut(id.0 as usize) {
            span.corr = Some(corr.into());
        }
    }

    /// Attaches a free-form note to an open span.
    pub fn note(&mut self, id: SpanId, note: &str) {
        if let Some(Some(span)) = self.open.get_mut(id.0 as usize) {
            span.note = Some(note.into());
        }
    }

    /// Closes a span. No-op for [`SpanId::NONE`] or already-closed ids.
    pub fn exit(&mut self, id: SpanId, now_us: u64, ok: bool) {
        if id.is_none() {
            return;
        }
        let Some(slot) = self.open.get_mut(id.0 as usize) else {
            return;
        };
        let Some(span) = slot.take() else {
            return;
        };
        self.free.push(id.0);
        self.push(SpanRecord {
            cat: span.cat,
            name: span.name,
            start_us: span.start_us,
            dur_us: now_us.saturating_sub(span.start_us),
            corr: span.corr,
            ok,
            note: span.note,
            instant: false,
        });
    }

    /// Records a point-in-time marker.
    pub fn instant(&mut self, cat: SpanCat, name: &'static str, now_us: u64, corr: Option<&str>) {
        self.push(SpanRecord {
            cat,
            name,
            start_us: now_us,
            dur_us: 0,
            corr: corr.map(Into::into),
            ok: true,
            note: None,
            instant: true,
        });
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.done.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.done.push(rec);
    }

    /// Completed spans, in completion order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.done
    }

    /// Still-open spans rendered as unfinished records ending at
    /// `now_us` — chaos debugging wants to see what never completed.
    pub fn open_records(&self, now_us: u64) -> Vec<SpanRecord> {
        self.open
            .iter()
            .flatten()
            .map(|s| SpanRecord {
                cat: s.cat,
                name: s.name,
                start_us: s.start_us,
                dur_us: now_us.saturating_sub(s.start_us),
                corr: s.corr.clone(),
                ok: false,
                note: Some("unfinished".into()),
                instant: false,
            })
            .collect()
    }

    /// Spans discarded because the retention cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Changes the retention cap for completed spans.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_produces_record_with_duration() {
        let mut log = SpanLog::default();
        let id = log.enter(SpanCat::Sip, "sip.invite", 1000);
        log.correlate(id, "call-1");
        log.exit(id, 3500, true);
        let recs = log.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "sip.invite");
        assert_eq!(recs[0].dur_us, 2500);
        assert_eq!(recs[0].corr.as_deref(), Some("call-1"));
        assert!(recs[0].ok);
    }

    #[test]
    fn slots_are_reused_lifo_and_double_exit_is_safe() {
        let mut log = SpanLog::default();
        let a = log.enter(SpanCat::Slp, "slp.lookup", 0);
        log.exit(a, 10, true);
        log.exit(a, 20, false); // stale: slot is free, must be ignored
        let b = log.enter(SpanCat::Slp, "slp.lookup", 30);
        assert_eq!(a, b); // LIFO reuse of slot 0
        log.exit(b, 40, true);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn none_id_is_inert() {
        let mut log = SpanLog::default();
        log.exit(SpanId::NONE, 5, true);
        log.correlate(SpanId::NONE, "x");
        assert!(log.records().is_empty());
    }

    #[test]
    fn open_records_mark_unfinished() {
        let mut log = SpanLog::default();
        log.enter(SpanCat::Tunnel, "tunnel.handshake", 100);
        let open = log.open_records(400);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].dur_us, 300);
        assert!(!open[0].ok);
        assert_eq!(open[0].note.as_deref(), Some("unfinished"));
    }

    #[test]
    fn retention_cap_drops_and_counts() {
        let mut log = SpanLog::default();
        log.set_cap(2);
        for i in 0..4 {
            log.instant(SpanCat::Media, "media.start", i, None);
        }
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.dropped(), 2);
    }
}
