//! Chrome `trace_event` export and per-call timeline assembly.
//!
//! The emitted JSON is the "JSON array format" understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): complete
//! (`ph: "X"`) events with microsecond `ts`/`dur`, instant (`ph: "i"`)
//! markers, and metadata events naming processes and threads. The mapping
//! onto the trace viewer's process/thread axes is:
//!
//! * **process (`pid`)** — one per correlation key (per call, keyed by
//!   Call-ID); `pid 0` groups uncorrelated spans. Perfetto then renders
//!   each call as its own lane group: the per-call timeline.
//! * **thread (`tid`)** — the node that recorded the span.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::esc;
use crate::span::SpanRecord;

/// A span plus the node that recorded it.
#[derive(Debug, Clone)]
pub struct TaggedSpan {
    /// Node label, e.g. `n3`.
    pub node: String,
    /// The recorded span.
    pub span: SpanRecord,
}

/// All spans sharing one correlation key, sorted by start time.
#[derive(Debug, Clone)]
pub struct CallTimeline {
    /// The correlation key (Call-ID for call-scoped spans).
    pub corr: String,
    /// Earliest span start, sim microseconds.
    pub start_us: u64,
    /// Latest span end, sim microseconds.
    pub end_us: u64,
    /// The spans, ordered by `(start_us, node)`.
    pub spans: Vec<TaggedSpan>,
}

/// Groups spans into per-correlation timelines (uncorrelated spans are
/// skipped), ordered by first activity.
pub fn call_timelines(spans: &[TaggedSpan]) -> Vec<CallTimeline> {
    let mut groups: BTreeMap<&str, Vec<&TaggedSpan>> = BTreeMap::new();
    for ts in spans {
        if let Some(corr) = ts.span.corr.as_deref() {
            groups.entry(corr).or_default().push(ts);
        }
    }
    let mut timelines: Vec<CallTimeline> = groups
        .into_iter()
        .map(|(corr, mut members)| {
            members.sort_by(|a, b| (a.span.start_us, &a.node).cmp(&(b.span.start_us, &b.node)));
            CallTimeline {
                corr: corr.to_owned(),
                start_us: members.iter().map(|t| t.span.start_us).min().unwrap_or(0),
                end_us: members
                    .iter()
                    .map(|t| t.span.start_us + t.span.dur_us)
                    .max()
                    .unwrap_or(0),
                spans: members.into_iter().cloned().collect(),
            }
        })
        .collect();
    timelines.sort_by(|a, b| (a.start_us, &a.corr).cmp(&(b.start_us, &b.corr)));
    timelines
}

/// Renders spans as Chrome `trace_event` JSON (array format).
///
/// Deterministic for a fixed input: pid/tid assignment follows sorted
/// correlation keys and node labels.
pub fn chrome_trace_json(spans: &[TaggedSpan]) -> String {
    // pid 0 = uncorrelated; calls get 1.. in sorted-corr order.
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    for ts in spans {
        if let Some(c) = ts.span.corr.as_deref() {
            let next = pids.len() as u64 + 1;
            pids.entry(c).or_insert(next);
        }
        let next = tids.len() as u64;
        tids.entry(ts.node.as_str()).or_insert(next);
    }
    let mut out = String::from("[\n");
    let mut first = true;
    let mut emit = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
        *first = false;
    };
    emit(
        r#"{"name": "process_name", "ph": "M", "pid": 0, "args": {"name": "(uncorrelated)"}}"#
            .to_owned(),
        &mut first,
    );
    for (corr, pid) in &pids {
        emit(
            format!(
                r#"{{"name": "process_name", "ph": "M", "pid": {}, "args": {{"name": "call {}"}}}}"#,
                pid,
                esc(corr)
            ),
            &mut first,
        );
    }
    for (node, tid) in &tids {
        // Thread metadata is per-process in the trace model; name the
        // node's lane in every process it appears in.
        let mut procs: Vec<u64> = vec![0];
        procs.extend(pids.values().copied());
        for pid in procs {
            emit(
                format!(
                    r#"{{"name": "thread_name", "ph": "M", "pid": {}, "tid": {}, "args": {{"name": "{}"}}}}"#,
                    pid,
                    tid,
                    esc(node)
                ),
                &mut first,
            );
        }
    }
    for ts in spans {
        let pid = ts
            .span
            .corr
            .as_deref()
            .and_then(|c| pids.get(c).copied())
            .unwrap_or(0);
        let tid = tids.get(ts.node.as_str()).copied().unwrap_or(0);
        let mut args = format!(r#""ok": {}, "node": "{}""#, ts.span.ok, esc(&ts.node));
        if let Some(corr) = ts.span.corr.as_deref() {
            let _ = write!(args, r#", "corr": "{}""#, esc(corr));
        }
        if let Some(note) = ts.span.note.as_deref() {
            let _ = write!(args, r#", "note": "{}""#, esc(note));
        }
        let line = if ts.span.instant {
            format!(
                r#"{{"name": "{}", "cat": "{}", "ph": "i", "s": "p", "ts": {}, "pid": {}, "tid": {}, "args": {{{}}}}}"#,
                esc(ts.span.name),
                ts.span.cat.as_str(),
                ts.span.start_us,
                pid,
                tid,
                args
            )
        } else {
            format!(
                r#"{{"name": "{}", "cat": "{}", "ph": "X", "ts": {}, "dur": {}, "pid": {}, "tid": {}, "args": {{{}}}}}"#,
                esc(ts.span.name),
                ts.span.cat.as_str(),
                ts.span.start_us,
                ts.span.dur_us,
                pid,
                tid,
                args
            )
        };
        emit(line, &mut first);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanCat, SpanLog};

    fn sample_spans() -> Vec<TaggedSpan> {
        let mut log = SpanLog::default();
        let a = log.enter(SpanCat::Sip, "sip.invite", 1000);
        log.correlate(a, "call-1");
        log.exit(a, 4000, true);
        log.instant(SpanCat::Media, "media.start", 4200, Some("call-1"));
        let b = log.enter(SpanCat::Routing, "route.discovery", 500);
        log.exit(b, 900, true);
        log.records()
            .iter()
            .map(|span| TaggedSpan {
                node: "n0".to_owned(),
                span: span.clone(),
            })
            .collect()
    }

    #[test]
    fn chrome_trace_is_structured_json() {
        let json = chrome_trace_json(&sample_spans());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name": "sip.invite""#));
        assert!(json.contains(r#""ph": "X""#));
        assert!(json.contains(r#""ph": "i""#));
        assert!(json.contains(r#""name": "call call-1""#));
        // The uncorrelated discovery span stays in pid 0.
        assert!(json.contains(r#""name": "route.discovery", "cat": "routing", "ph": "X", "ts": 500, "dur": 400, "pid": 0"#));
    }

    #[test]
    fn timelines_group_by_corr_and_sort_by_time() {
        let spans = sample_spans();
        let timelines = call_timelines(&spans);
        assert_eq!(timelines.len(), 1);
        let t = &timelines[0];
        assert_eq!(t.corr, "call-1");
        assert_eq!(t.start_us, 1000);
        assert_eq!(t.end_us, 4200);
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].span.name, "sip.invite");
    }

    #[test]
    fn empty_input_still_renders_an_array() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }
}
