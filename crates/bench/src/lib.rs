//! # siphoc-bench
//!
//! Shared scaffolding for the experiment binaries that regenerate the
//! paper's tables and figures (`DESIGN.md` §4 maps each experiment id to
//! its binary). Each `exp_*` binary builds deterministic worlds through
//! the helpers here, measures, and prints aligned text tables whose
//! numbers are recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod city;
pub mod load;
pub mod location;
pub mod measure;
pub mod topology;

pub use siphoc_core::metrics::{mean, percentile, Series};
