//! Topology builders shared by the experiment binaries.

use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec, RoutingProtocol, SiphocNode};
use siphoc_simnet::mobility::{Area, Mobility, WaypointParams};
use siphoc_simnet::prelude::*;
use siphoc_simnet::rng::SimRng;

/// Default node spacing along chains and grids: comfortably inside the
/// clear part of the 100 m radio range.
pub const SPACING: f64 = 60.0;

/// Creates a world with the ideal (lossless) radio — used when an
/// experiment isolates protocol latency from stochastic loss.
pub fn ideal_world(seed: u64) -> World {
    World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()))
}

/// Creates a world with the typical lossy radio.
pub fn typical_world(seed: u64) -> World {
    World::new(WorldConfig::new(seed))
}

/// Deploys a chain of `n` SIPHoc nodes; `users` maps node index → user
/// name. Returns the deployed handles in chain order.
pub fn siphoc_chain(
    world: &mut World,
    n: usize,
    routing: &RoutingProtocol,
    users: &[(usize, &str)],
) -> Vec<SiphocNode> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut spec = NodeSpec::relay(i as f64 * SPACING, 0.0)
            .with_routing(clone_routing(routing))
            .without_connection_provider();
        if let Some((_, name)) = users.iter().find(|(slot, _)| *slot == i) {
            let ua = bench_ua(name);
            spec = spec.with_user(ua);
        }
        out.push(deploy(world, spec));
    }
    out
}

/// Builds a bench user agent: Fig. 2 configuration but with zero
/// auto-answer delay, so setup-time measurements see protocol latency
/// rather than a fixed ring time.
pub fn bench_ua(name: &str) -> siphoc_sip::ua::UaConfig {
    let mut ua = VoipAppConfig::fig2(name, "voicehoc.ch")
        .to_ua_config()
        .expect("localhost proxy resolves");
    ua.answer_delay = SimDuration::ZERO;
    ua
}

/// Deploys a `side × side` grid of SIPHoc nodes; `users` maps node index
/// (row-major) → user name.
pub fn siphoc_grid(
    world: &mut World,
    side: usize,
    routing: &RoutingProtocol,
    users: &[(usize, &str)],
) -> Vec<SiphocNode> {
    let mut out = Vec::with_capacity(side * side);
    for i in 0..side * side {
        let x = (i % side) as f64 * SPACING;
        let y = (i / side) as f64 * SPACING;
        let mut spec = NodeSpec::relay(x, y)
            .with_routing(clone_routing(routing))
            .without_connection_provider();
        if let Some((_, name)) = users.iter().find(|(slot, _)| *slot == i) {
            spec = spec.with_user(bench_ua(name));
        }
        out.push(deploy(world, spec));
    }
    out
}

/// Random-waypoint mobility for node `index`, derived deterministically
/// from the world seed.
pub fn waypoint(
    seed: u64,
    index: u64,
    area: Area,
    min_speed: f64,
    max_speed: f64,
    pause_s: u64,
) -> Mobility {
    let mut rng = SimRng::from_seed_and_stream(seed, 50_000 + index);
    let start = area.sample(&mut rng);
    Mobility::random_waypoint(
        start,
        WaypointParams::new(min_speed, max_speed, SimDuration::from_secs(pause_s)),
        area,
        SimTime::ZERO,
        &mut rng,
    )
}

fn clone_routing(r: &RoutingProtocol) -> RoutingProtocol {
    match r {
        RoutingProtocol::Aodv(c) => RoutingProtocol::Aodv(c.clone()),
        RoutingProtocol::Olsr(c) => RoutingProtocol::Olsr(c.clone()),
        RoutingProtocol::Dsdv(c) => RoutingProtocol::Dsdv(c.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_positions_are_spaced() {
        let mut w = ideal_world(1);
        let nodes = siphoc_chain(&mut w, 3, &RoutingProtocol::aodv(), &[(0, "a"), (2, "b")]);
        assert_eq!(nodes.len(), 3);
        assert_eq!(w.node(nodes[2].id).position(SimTime::ZERO).0, 2.0 * SPACING);
        assert_eq!(nodes[0].ua_logs.len(), 1);
        assert_eq!(nodes[1].ua_logs.len(), 0);
    }

    #[test]
    fn grid_is_square() {
        let mut w = ideal_world(2);
        let nodes = siphoc_grid(&mut w, 3, &RoutingProtocol::olsr(), &[]);
        assert_eq!(nodes.len(), 9);
        let p = w.node(nodes[8].id).position(SimTime::ZERO);
        assert_eq!(p, (2.0 * SPACING, 2.0 * SPACING));
    }
}
