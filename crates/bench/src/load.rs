//! Scriptable SIP call-load generator (the SIPp-style harness).
//!
//! Builds a "hub" world — one SIPHoc node hosting N registered user
//! agents behind its own proxy, all signaling over loopback and
//! self-addressed unicast — and drives it with a scripted workload:
//! steady call arrivals (uniform or Poisson), synchronized registration
//! storms (every UA re-REGISTERs at once, the partition-heal shape), and
//! BYE / re-INVITE storms (the gateway-handoff shape).
//!
//! Because every message stays on one node, the wall-clock cost of a run
//! is almost entirely SIP parse/render, transaction bookkeeping and
//! registrar lookups — exactly the signaling hot path `exp_call_load`
//! exists to measure. Call setup delay is extracted from the caller-side
//! [`UaLog`]s (OutgoingCall → Established per Call-ID), so the harness
//! works on obs-free builds.

use std::time::Instant;

use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{ActionKind, CallEvent, ScriptedAction, UaConfig};
use siphoc_sip::uri::Aor;

use crate::topology::ideal_world;

/// SIP domain all load-generator users live in.
const DOMAIN: &str = "voicehoc.ch";
/// First UA SIP port on the hub node (one per user).
const UA_PORT_BASE: u16 = 6000;
/// First advertised RTP port (SDP only; the hub runs no media plane).
const RTP_PORT_BASE: u16 = 20000;
/// Registration burst at t=0 settles before the measured load starts.
const RAMP: SimDuration = SimDuration::from_secs(2);
/// Established-call hold time for steady arrivals.
const HOLD: SimDuration = SimDuration::from_secs(2);
/// Drain time after the last scripted action.
const TAIL: SimDuration = SimDuration::from_secs(3);

/// Call arrival process for steady load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Evenly spaced: one call every `1/rate` seconds.
    Uniform,
    /// Poisson: exponential inter-arrival gaps with mean `1/rate`.
    Poisson,
}

impl Arrival {
    /// Lowercase token used in scenario names and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Arrival::Uniform => "uniform",
            Arrival::Poisson => "poisson",
        }
    }
}

/// What the generator scripts on top of the registered hub.
#[derive(Debug, Clone, Copy)]
pub enum LoadScenario {
    /// M calls/s across the user population for `window`.
    Steady {
        /// Offered call rate.
        rate_cps: f64,
        /// Arrival process.
        arrival: Arrival,
        /// Load window length.
        window: SimDuration,
    },
    /// Every UA re-REGISTERs in synchronized waves (short expiry, so the
    /// half-life refresh fires simultaneously across the population).
    RegStorm {
        /// Total simulated run length.
        sim: SimDuration,
    },
    /// Calls set up, then every caller hangs up all of them at once.
    ByeStorm,
    /// Calls set up, then every caller re-INVITEs all of them at once.
    ReinviteStorm,
}

/// One load-generator run: N users × a scenario, fully deterministic.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Registered user agents on the hub (must be even; callers pair
    /// with callees `users/2` apart).
    pub users: usize,
    /// The scripted workload.
    pub scenario: LoadScenario,
    /// World seed (also seeds the Poisson arrival stream).
    pub seed: u64,
}

impl LoadSpec {
    /// Stable scenario name for tables, JSON and `--check` baselines.
    pub fn name(&self) -> String {
        match self.scenario {
            LoadScenario::Steady {
                rate_cps, arrival, ..
            } => {
                let suffix = match arrival {
                    Arrival::Uniform => "",
                    Arrival::Poisson => "_poisson",
                };
                format!("steady_u{}_r{}{}", self.users, rate_cps as u64, suffix)
            }
            LoadScenario::RegStorm { .. } => format!("regstorm_u{}", self.users),
            LoadScenario::ByeStorm => format!("byestorm_u{}", self.users),
            LoadScenario::ReinviteStorm => format!("reinvitestorm_u{}", self.users),
        }
    }

    /// Offered calls/s (0 for storm scenarios).
    pub fn rate_cps(&self) -> f64 {
        match self.scenario {
            LoadScenario::Steady { rate_cps, .. } => rate_cps,
            _ => 0.0,
        }
    }
}

/// Everything one run measures.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Scenario name (see [`LoadSpec::name`]).
    pub name: String,
    /// Registered user agents.
    pub users: usize,
    /// Offered call rate (0 for storms).
    pub rate_cps: f64,
    /// Arrival process token.
    pub arrival: &'static str,
    /// Simulated seconds the run covered.
    pub sim_secs: f64,
    /// Wall-clock milliseconds of the `World` run.
    pub wall_ms: f64,
    /// Events the simulator dispatched.
    pub events: u64,
    /// Calls the script offered.
    pub offered: usize,
    /// Calls that reached Established at the caller.
    pub established: usize,
    /// Calls that failed (final error or transaction timeout).
    pub failed: usize,
    /// Dialogs that terminated (both BYE directions).
    pub terminated: usize,
    /// REGISTER requests the hub proxy accepted.
    pub registers: u64,
    /// In-dialog re-INVITEs completed (200 ACKed at the initiator).
    pub reinvites_ok: u64,
    /// Caller-side setup delays, µs, in call order (unsorted).
    pub setup_us: Vec<u64>,
}

impl LoadReport {
    /// Calls established per wall-clock second — the sustained signaling
    /// throughput of the stack on this hardware.
    pub fn wall_cps(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return f64::NAN;
        }
        self.established as f64 / (self.wall_ms / 1000.0)
    }

    /// Real-time factor: simulated seconds per wall second. A scenario
    /// with `rtf < 1` offers more signaling than the stack can process
    /// in real time — the saturation criterion the knee search uses.
    pub fn rtf(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return f64::NAN;
        }
        self.sim_secs / (self.wall_ms / 1000.0)
    }
}

/// One user's [`UaConfig`] on the hub node.
fn hub_ua(i: usize, register_expires: SimDuration) -> UaConfig {
    let aor = Aor::new(&format!("u{i}"), DOMAIN);
    let proxy = SocketAddr::new(Addr::LOOPBACK, ports::SIPHOC_PROXY);
    let mut cfg = UaConfig::new(aor, proxy);
    cfg.local_port = UA_PORT_BASE + i as u16;
    cfg.rtp_port = RTP_PORT_BASE + i as u16;
    cfg.register_expires = register_expires;
    cfg.answer_delay = SimDuration::ZERO;
    // The load harness opts into the shared retransmit wheel: it changes
    // timer-event counts (and therefore world digests), which is exactly
    // the trade the capacity bench wants and golden-trace runs do not.
    cfg.txn.timer_wheel = true;
    // No media plane runs on the hub, so media start/stop local events
    // would only fan out to all N user agents and be ignored.
    cfg.media_events = false;
    cfg
}

/// Builds the scripted UA population for `spec`. Returns the configs and
/// the `(offered, sim_total)` pair.
fn build_population(spec: &LoadSpec) -> (Vec<UaConfig>, usize, SimDuration) {
    let n = spec.users;
    assert!(n >= 2 && n % 2 == 0, "users must be even and >= 2, got {n}");
    match spec.scenario {
        LoadScenario::Steady {
            rate_cps,
            arrival,
            window,
        } => {
            let mut uas: Vec<UaConfig> = (0..n)
                .map(|i| hub_ua(i, SimDuration::from_secs(3600)))
                .collect();
            let offered = (rate_cps * window.as_secs_f64()).round() as usize;
            let mut gap_rng = SimRng::from_seed_and_stream(spec.seed, 7777);
            let mut at = SimTime::ZERO + RAMP;
            for k in 0..offered {
                let caller = k % n;
                let callee = (caller + n / 2) % n;
                let callee_aor = Aor::new(&format!("u{callee}"), DOMAIN);
                uas[caller].script.push(ScriptedAction {
                    at,
                    kind: ActionKind::Call {
                        to: callee_aor,
                        duration: HOLD,
                    },
                });
                let gap = match arrival {
                    Arrival::Uniform => 1.0 / rate_cps,
                    Arrival::Poisson => gap_rng.exp_secs(1.0 / rate_cps),
                };
                at += SimDuration::from_micros((gap * 1e6) as u64);
            }
            (uas, offered, RAMP + window + HOLD + TAIL)
        }
        LoadScenario::RegStorm { sim } => {
            // Half-life refresh at expires/2 keeps every UA perfectly in
            // phase: the whole population re-REGISTERs every 2 s.
            let uas = (0..n)
                .map(|i| hub_ua(i, SimDuration::from_secs(4)))
                .collect();
            (uas, 0, sim)
        }
        LoadScenario::ByeStorm | LoadScenario::ReinviteStorm => {
            // Pairs (2i → 2i+1) set up staggered calls that outlive the
            // run, then every caller fires the storm action at once.
            let storm_at = SimTime::ZERO + RAMP + SimDuration::from_secs(2);
            let hold = SimDuration::from_secs(1000); // never auto-BYEs
            let uas = (0..n)
                .map(|i| {
                    let mut ua = hub_ua(i, SimDuration::from_secs(3600));
                    if i % 2 == 0 {
                        let callee = Aor::new(&format!("u{}", i + 1), DOMAIN);
                        let at = SimTime::ZERO + RAMP + SimDuration::from_millis(10 * i as u64);
                        ua = ua.call_at(at, callee, hold);
                        let kind = match spec.scenario {
                            LoadScenario::ByeStorm => ActionKind::HangupAll,
                            _ => ActionKind::ReinviteAll,
                        };
                        ua.script.push(ScriptedAction { at: storm_at, kind });
                    }
                    ua
                })
                .collect();
            (
                uas,
                n / 2,
                RAMP + SimDuration::from_secs(2) + SimDuration::from_secs(3),
            )
        }
    }
}

/// Runs one load scenario and measures it.
pub fn run_load(spec: &LoadSpec) -> LoadReport {
    let (uas, offered, sim_total) = build_population(spec);
    let mut w = ideal_world(spec.seed);
    let mut node_spec = NodeSpec::relay(0.0, 0.0).without_connection_provider();
    node_spec.users = uas;
    node_spec.media = false; // signaling plane only
    let hub = deploy(&mut w, node_spec);

    let started = Instant::now();
    w.run_until(SimTime::ZERO + sim_total);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;

    let mut established = 0usize;
    let mut failed = 0usize;
    let mut terminated = 0usize;
    let mut setup_us: Vec<u64> = Vec::new();
    for log in &hub.ua_logs {
        let log = log.borrow();
        // Caller-side pairing: OutgoingCall(t0) → Established(t1) on the
        // same Call-ID within the same UA's log.
        let mut placed: Vec<(SimTime, &str)> = Vec::new();
        for (t, ev) in log.events() {
            match ev {
                CallEvent::OutgoingCall { call_id, .. } => placed.push((*t, call_id)),
                CallEvent::Established { call_id, .. } => {
                    if let Some(pos) = placed.iter().position(|(_, id)| id == call_id) {
                        let (t0, _) = placed.swap_remove(pos);
                        established += 1;
                        setup_us.push((*t - t0).as_micros());
                    }
                }
                CallEvent::Failed { .. } => failed += 1,
                CallEvent::Terminated { .. } => terminated += 1,
                _ => {}
            }
        }
    }

    let stats = w.total_stats();
    LoadReport {
        name: spec.name(),
        users: spec.users,
        rate_cps: spec.rate_cps(),
        arrival: match spec.scenario {
            LoadScenario::Steady { arrival, .. } => arrival.as_str(),
            _ => "storm",
        },
        sim_secs: sim_total.as_secs_f64(),
        wall_ms,
        events: w.events_processed(),
        offered,
        established,
        failed,
        terminated,
        registers: stats.get("proxy.register_local").packets,
        reinvites_ok: stats.get("sip.reinvite_ok").packets,
        setup_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_load_establishes_offered_calls() {
        let spec = LoadSpec {
            users: 8,
            scenario: LoadScenario::Steady {
                rate_cps: 5.0,
                arrival: Arrival::Uniform,
                window: SimDuration::from_secs(2),
            },
            seed: 42,
        };
        let r = run_load(&spec);
        assert_eq!(r.offered, 10);
        assert_eq!(r.established, 10, "all loopback calls must establish");
        assert_eq!(r.failed, 0);
        assert_eq!(r.setup_us.len(), 10);
        assert!(r.registers >= 8, "every UA registers at start");
        assert!(r.setup_us.iter().all(|&us| us > 0));
    }

    #[test]
    fn poisson_arrivals_are_deterministic_per_seed() {
        let spec = LoadSpec {
            users: 8,
            scenario: LoadScenario::Steady {
                rate_cps: 10.0,
                arrival: Arrival::Poisson,
                window: SimDuration::from_secs(2),
            },
            seed: 7,
        };
        let a = run_load(&spec);
        let b = run_load(&spec);
        assert_eq!(a.events, b.events);
        assert_eq!(a.setup_us, b.setup_us);
    }

    #[test]
    fn reg_storm_registers_in_waves() {
        let spec = LoadSpec {
            users: 8,
            scenario: LoadScenario::RegStorm {
                sim: SimDuration::from_secs(7),
            },
            seed: 42,
        };
        let r = run_load(&spec);
        // t=0 storm plus half-life refreshes at 2, 4, 6 s.
        assert!(
            r.registers >= 8 * 3,
            "expected several synchronized REGISTER waves, saw {}",
            r.registers
        );
    }

    #[test]
    fn bye_storm_terminates_every_pair() {
        let spec = LoadSpec {
            users: 8,
            scenario: LoadScenario::ByeStorm,
            seed: 42,
        };
        let r = run_load(&spec);
        assert_eq!(r.established, 4);
        // Both sides log Terminated for each of the 4 dialogs.
        assert!(r.terminated >= 4, "BYE storm left dialogs up: {r:?}");
    }

    #[test]
    fn reinvite_storm_renegotiates_every_pair() {
        let spec = LoadSpec {
            users: 8,
            scenario: LoadScenario::ReinviteStorm,
            seed: 42,
        };
        let r = run_load(&spec);
        assert_eq!(r.established, 4);
        assert!(
            r.reinvites_ok >= 4,
            "re-INVITE storm did not complete: {r:?}"
        );
    }
}
