//! E6 — Voice quality vs hop count and background load.
//!
//! One 30 s PCMU call over a chain of increasing length, on the typical
//! lossy radio; then the same 4-hop call with 0–4 competing ~2.8 Mb/s CBR
//! streams
//! crossing the chain. Reported: effective loss, mean one-way delay and
//! E-model MOS at the callee.
//!
//! Expected shape: MOS stays in the "satisfied" band (>4) for short
//! paths and slides with hops (compounded per-hop loss, queueing);
//! background load pushes queueing delay and loss up and MOS down.
//! Run with `--release`.

use siphoc_bench::topology::{bench_ua, siphoc_chain, typical_world};
use siphoc_core::nodesetup::RoutingProtocol;
use siphoc_simnet::net::SocketAddr;
use siphoc_simnet::prelude::*;
use siphoc_simnet::process::{Ctx, Process};
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 4] = [6601, 6602, 6603, 6604];

/// A constant-bit-rate cross-traffic source: 250 pps × 1400 B ≈ 2.8 Mb/s,
/// a meaningful fraction of the 11 Mb/s link rate, so a handful of
/// streams saturates the shared relays.
struct CbrSource {
    dst: SocketAddr,
    port: u16,
}
impl Process for CbrSource {
    fn name(&self) -> &'static str {
        "cbr"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(self.port);
        ctx.set_timer(SimDuration::from_millis(4), 1);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_to(self.dst, self.port, vec![0u8; 1400]);
        ctx.set_timer(SimDuration::from_millis(4), 1);
    }
}

fn run_call(seed: u64, hops: usize, cbr_streams: usize) -> Option<(f64, f64, f64)> {
    let mut w = typical_world(seed);
    let nodes = siphoc_chain(
        &mut w,
        hops + 1,
        &RoutingProtocol::aodv(),
        &[(0, "alice"), (hops, "bob")],
    );
    // Replace alice's scripted UA: siphoc_chain deploys plain users, so
    // run the call from a separate caller spec instead.
    let _ = &nodes;
    let ua = bench_ua("carol").call_at(
        SimTime::from_secs(10),
        Aor::new("bob", "voicehoc.ch"),
        SimDuration::from_secs(30),
    );
    let caller = siphoc_core::nodesetup::deploy(
        &mut w,
        siphoc_core::nodesetup::NodeSpec::relay(0.0, 50.0)
            .without_connection_provider()
            .with_user(ua),
    );
    // Background CBR along the chain (node k → node k+2), port 9600+k.
    for k in 0..cbr_streams {
        let src = nodes[k % nodes.len()].id;
        let dst_node = &nodes[(k + 2) % nodes.len()];
        let dst = SocketAddr::new(dst_node.addr, 9700);
        w.spawn(
            src,
            Box::new(CbrSource {
                dst,
                port: 9600 + k as u16,
            }),
        );
    }
    w.run_for(SimDuration::from_secs(50));
    let reports = caller.media_reports.as_ref().expect("media").borrow();
    let r = reports.first()?;
    if r.received == 0 {
        return None;
    }
    Some((
        r.loss_fraction * 100.0,
        r.mean_delay.as_millis_f64(),
        r.quality.mos,
    ))
}

fn main() {
    println!(
        "E6: voice quality, typical lossy radio ({} seeds per point)\n",
        SEEDS.len()
    );

    println!("-- vs hop count (no background load) --");
    println!(
        "{:>5} {:>9} {:>10} {:>7}",
        "hops", "loss(%)", "delay(ms)", "MOS"
    );
    for hops in 1..=6usize {
        let mut loss = Vec::new();
        let mut delay = Vec::new();
        let mut mos = Vec::new();
        for seed in SEEDS {
            if let Some((l, d, m)) = run_call(seed, hops, 0) {
                loss.push(l);
                delay.push(d);
                mos.push(m);
            }
        }
        println!(
            "{hops:>5} {:>9.2} {:>10.2} {:>7.2}",
            siphoc_bench::mean(&loss).unwrap_or(f64::NAN),
            siphoc_bench::mean(&delay).unwrap_or(f64::NAN),
            siphoc_bench::mean(&mos).unwrap_or(f64::NAN)
        );
    }

    println!("\n-- 4-hop call vs background CBR streams (250 pps x 1400 B (~2.8 Mb/s) each) --");
    println!(
        "{:>8} {:>9} {:>10} {:>7}",
        "streams", "loss(%)", "delay(ms)", "MOS"
    );
    for streams in [0usize, 1, 2, 3, 4] {
        let mut loss = Vec::new();
        let mut delay = Vec::new();
        let mut mos = Vec::new();
        for seed in SEEDS {
            if let Some((l, d, m)) = run_call(seed, 4, streams) {
                loss.push(l);
                delay.push(d);
                mos.push(m);
            }
        }
        match siphoc_bench::mean(&mos) {
            Some(m) => println!(
                "{streams:>8} {:>9.2} {:>10.2} {m:>7.2}",
                siphoc_bench::mean(&loss).unwrap_or(f64::NAN),
                siphoc_bench::mean(&delay).unwrap_or(f64::NAN),
            ),
            None => println!("{streams:>8} {:>30}", "call setup failed (saturated)"),
        }
    }
    println!("\nshape check: MOS decreases with hops and with load, until");
    println!("saturation prevents call setup entirely.");
}
