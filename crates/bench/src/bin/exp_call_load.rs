//! `exp_call_load` — SIP control-plane capacity benchmark (E11).
//!
//! Drives the scriptable call-load generator in `bench::load` against the
//! signaling hot path: N registered UAs on one hub node place M calls/s
//! through the local SIPHoc proxy/registrar, all over loopback, so the
//! wall-clock cost is almost pure SIP parse/render, transaction
//! bookkeeping and registrar lookups. Scenario families:
//!
//! * `steady_uN_rM[_poisson]` — M calls/s for a fixed window, uniform or
//!   Poisson arrivals. The rate ladder locates the saturation knee.
//! * `regstorm_uN` — the partition-heal shape: every UA re-REGISTERs in
//!   synchronized waves (short expiry keeps the population in phase).
//! * `byestorm_uN` / `reinvitestorm_uN` — the gateway-handoff shape: all
//!   established dialogs BYE or re-INVITE at the same instant.
//!
//! Reported per scenario: wall ms, events, offered/established calls,
//! sustained calls/s (established per *wall* second), real-time factor
//! (sim seconds per wall second) and p50/p95/p99 call setup delay (sim
//! time, from caller-side UA logs — no obs needed). The *knee* is the
//! offered rate where the real-time factor crosses 1.0 — beyond it the
//! stack can no longer keep up with its offered signaling load in real
//! time — interpolated between the two ladder rungs that straddle it.
//!
//! Output: aligned table on stdout plus `results/BENCH_sip.json` with the
//! same provenance block as `BENCH_core.json`. `--check <baseline>`
//! enforces exact event counts and bounded wall-time regression, exactly
//! like `exp_bench_core --check`. Run with `--release`.

use std::fmt::Write as _;

use siphoc_bench::load::{run_load, Arrival, LoadReport, LoadScenario, LoadSpec};
use siphoc_bench::percentile;
use siphoc_simnet::prelude::*;

const LOAD_SEED: u64 = 61_001;
/// Registered UAs in every scenario (even; callers pair across the ring).
const USERS: usize = 96;

/// One measured scenario: the fastest repetition plus every rep's wall.
struct Sample {
    report: LoadReport,
    wall_ms_runs: Vec<f64>,
    rss_peak_kb: u64,
}

/// p50/p95/p99 of the caller-observed setup delay, in milliseconds.
fn setup_percentiles(report: &LoadReport) -> (f64, f64, f64) {
    let ms: Vec<f64> = report
        .setup_us
        .iter()
        .map(|&us| us as f64 / 1000.0)
        .collect();
    (
        percentile(&ms, 50.0).unwrap_or(f64::NAN),
        percentile(&ms, 95.0).unwrap_or(f64::NAN),
        percentile(&ms, 99.0).unwrap_or(f64::NAN),
    )
}

/// Peak resident set size of this process in kB (Linux `VmHWM`).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Runs a spec `reps` times and keeps the fastest repetition (identical
/// seeds mean identical event counts; only wall time varies).
fn best_of(reps: usize, spec: &LoadSpec) -> Sample {
    let mut runs: Vec<LoadReport> = (0..reps.max(1)).map(|_| run_load(spec)).collect();
    let wall_ms_runs: Vec<f64> = runs.iter().map(|r| r.wall_ms).collect();
    let best_idx = wall_ms_runs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least one repetition");
    Sample {
        report: runs.swap_remove(best_idx),
        wall_ms_runs,
        rss_peak_kb: peak_rss_kb(),
    }
}

/// Saturation knee of the steady-rate ladder: the offered calls/s where
/// the real-time factor crosses 1.0. Within each rung `wall/sim` grows
/// close to linearly with offered rate, so the crossing is interpolated
/// between the two rungs that straddle it. Returns `None` while every
/// rung still runs faster than real time (knee above the ladder).
fn find_knee(ladder: &[&LoadReport]) -> Option<f64> {
    for pair in ladder.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        // u = wall/sim = 1/rtf; saturation is u >= 1.
        let ua = (a.wall_ms / 1000.0) / a.sim_secs;
        let ub = (b.wall_ms / 1000.0) / b.sim_secs;
        if ua < 1.0 && ub >= 1.0 {
            let t = (1.0 - ua) / (ub - ua);
            return Some(a.rate_cps + t * (b.rate_cps - a.rate_cps));
        }
    }
    None
}

/// Captures where the numbers came from — same block as `BENCH_core.json`.
fn render_provenance(jobs: usize) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let cmd_line = |cmd: &str, args: &[&str]| -> String {
        std::process::Command::new(cmd)
            .args(args)
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    };
    let rustc = cmd_line("rustc", &["-V"]);
    let rev = cmd_line("git", &["rev-parse", "--short", "HEAD"]);
    format!(
        "  \"provenance\": {{\"cores\": {cores}, \"jobs\": {jobs}, \
         \"rustc\": \"{rustc}\", \"git_rev\": \"{rev}\"}},\n"
    )
}

fn render_json(samples: &[Sample], jobs: usize, knee: Option<f64>, peak_cps: f64) -> String {
    let mut out = String::from("{\n  \"bench\": \"exp_call_load\",\n");
    out.push_str(&render_provenance(jobs));
    let _ = write!(
        out,
        "  \"knee_cps\": {},\n  \"peak_sustained_cps\": {peak_cps:.0},\n",
        knee.map(|k| format!("{k:.0}"))
            .unwrap_or_else(|| "null".to_owned())
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let r = &s.report;
        let (p50, p95, p99) = setup_percentiles(r);
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"users\": {}, \"rate_cps\": {:.0}, \"arrival\": \"{}\", \
             \"sim_secs\": {:.1}, \"wall_ms\": {:.1}, \"wall_ms_runs\": [{}], \"events\": {}, \
             \"offered\": {}, \"established\": {}, \"failed\": {}, \"terminated\": {}, \
             \"registers\": {}, \"reinvites_ok\": {}, \"sustained_cps\": {:.0}, \"rtf\": {:.2}, \
             \"setup_p50_ms\": {:.2}, \"setup_p95_ms\": {:.2}, \"setup_p99_ms\": {:.2}, \
             \"rss_peak_kb\": {}}}",
            r.name,
            r.users,
            r.rate_cps,
            r.arrival,
            r.sim_secs,
            r.wall_ms,
            s.wall_ms_runs
                .iter()
                .map(|w| format!("{w:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            r.events,
            r.offered,
            r.established,
            r.failed,
            r.terminated,
            r.registers,
            r.reinvites_ok,
            r.wall_cps(),
            r.rtf(),
            p50,
            p95,
            p99,
            s.rss_peak_kb
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Carries the `pre_optimization` block of an existing output file into a
/// freshly rendered document. The block is a historical snapshot — it
/// measured code that no longer exists — so a re-run must preserve it
/// verbatim rather than silently dropping the 2× comparison point.
fn carry_pre_block(old: &str, new_json: String) -> String {
    if new_json.contains("\"pre_optimization\"") {
        return new_json;
    }
    let Some(start) = old.find("  \"pre_optimization\": {") else {
        return new_json;
    };
    const CLOSE: &str = "\n  },\n";
    let Some(end) = old[start..].find(CLOSE) else {
        return new_json;
    };
    let block = &old[start..start + end + CLOSE.len()];
    match new_json.find("  \"scenarios\": [") {
        Some(i) => {
            let mut out = String::with_capacity(new_json.len() + block.len());
            out.push_str(&new_json[..i]);
            out.push_str(block);
            out.push_str(&new_json[i..]);
            out
        }
        None => new_json,
    }
}

/// Extracts `"key": <number>` from a flat JSON object chunk (keys matched
/// with their trailing colon — `wall_ms` never matches `wall_ms_runs`).
fn json_num(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = chunk.find(&pat)? + pat.len();
    let rest = &chunk[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `(name, wall_ms, events)` per scenario of a `render_json` document.
fn parse_baseline(text: &str) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"name\":").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(wall_ms) = json_num(chunk, "wall_ms") else {
            continue;
        };
        let Some(events) = json_num(chunk, "events") else {
            continue;
        };
        out.push((name.to_owned(), wall_ms, events as u64));
    }
    out
}

/// Allowed wall-clock slowdown vs the baseline before `--check` fails.
const CHECK_THRESHOLD: f64 = 1.20;
/// Absolute grace on top of the relative threshold (smoke scenarios sit
/// in scheduler-noise territory).
const CHECK_NOISE_FLOOR_MS: f64 = 50.0;

/// Compares this run against a checked-in baseline: event counts must
/// match exactly (deterministic workload), wall time may regress ≤ 20%.
fn check_against_baseline(samples: &[Sample], path: &str) -> Result<Vec<String>, Vec<String>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return Err(vec![format!("cannot read baseline {path}: {e}")]),
    };
    let baseline = parse_baseline(&text);
    let mut failures = Vec::new();
    let mut report = Vec::new();
    for s in samples {
        let name = &s.report.name;
        let Some((_, base_wall, base_events)) = baseline.iter().find(|(n, _, _)| n == name) else {
            failures.push(format!(
                "{name}: not in baseline {path}; regenerate it (exp_call_load --out {path})"
            ));
            continue;
        };
        if s.report.events != *base_events {
            failures.push(format!(
                "{name}: {} events vs {} in the baseline — the deterministic workload \
                 changed, regenerate the baseline before gating on wall time",
                s.report.events, base_events
            ));
            continue;
        }
        let limit = base_wall * CHECK_THRESHOLD + CHECK_NOISE_FLOOR_MS;
        let ratio = s.report.wall_ms / base_wall.max(f64::MIN_POSITIVE);
        if s.report.wall_ms > limit {
            failures.push(format!(
                "{name}: {:.1} ms vs baseline {:.1} ms ({:+.0}%, limit {:.1} ms)",
                s.report.wall_ms,
                base_wall,
                (ratio - 1.0) * 100.0,
                limit
            ));
        } else {
            report.push(format!(
                "{name}: {:.1} ms vs baseline {:.1} ms (limit {:.1} ms) — ok",
                s.report.wall_ms, base_wall, limit
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Published capacity numbers must measure the bare hot path.
    if siphoc_simnet::obs_enabled() && !args.iter().any(|a| a == "--allow-obs") {
        eprintln!(
            "exp_call_load: built with the `obs` feature enabled; numbers would not measure \
             the bare signaling hot path. Build with `cargo build --release -p siphoc-bench` \
             or pass --allow-obs to measure an instrumented build."
        );
        std::process::exit(2);
    }
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        // Smoke runs get their own default path so a CI canary never
        // clobbers the recorded full-sweep numbers.
        .unwrap_or_else(|| {
            if smoke {
                "results/BENCH_sip_smoke.json".to_owned()
            } else {
                "results/BENCH_sip.json".to_owned()
            }
        });
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // The steady-rate ladder. Rungs above 400 calls/s run a shorter
    // window so a pre-optimization sweep stays in CI-friendly wall time;
    // the knee interpolation works on per-rung real-time factors, so the
    // window may differ across rungs. Smoke points are an exact subset of
    // the full sweep (same parameters → same deterministic event counts),
    // which lets CI `--smoke --check results/BENCH_sip.json`.
    let window = |rate: f64| -> SimDuration {
        if rate > 4000.0 {
            SimDuration::from_secs(2)
        } else if rate > 400.0 {
            SimDuration::from_secs(5)
        } else {
            SimDuration::from_secs(10)
        }
    };
    let steady = |rate: f64, arrival: Arrival| -> LoadSpec {
        LoadSpec {
            users: USERS,
            scenario: LoadScenario::Steady {
                rate_cps: rate,
                arrival,
                window: window(rate),
            },
            seed: LOAD_SEED,
        }
    };
    let storm = |scenario: LoadScenario| -> LoadSpec {
        LoadSpec {
            users: USERS,
            scenario,
            seed: LOAD_SEED,
        }
    };
    let reg_storm = storm(LoadScenario::RegStorm {
        sim: SimDuration::from_secs(8),
    });

    let mut specs: Vec<LoadSpec> = Vec::new();
    let ladder_rates: &[f64] = if smoke {
        &[50.0]
    } else {
        &[
            50.0, 200.0, 1000.0, 4000.0, 8000.0, 16000.0, 32000.0, 48000.0, 64000.0, 96000.0,
        ]
    };
    for &r in ladder_rates {
        specs.push(steady(r, Arrival::Uniform));
    }
    if !smoke {
        specs.push(steady(1000.0, Arrival::Poisson));
    }
    specs.push(reg_storm);
    if !smoke {
        specs.push(storm(LoadScenario::ByeStorm));
        specs.push(storm(LoadScenario::ReinviteStorm));
    }

    println!(
        "BENCH sip: signaling control-plane capacity{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<22} {:>6} {:>8} {:>10} {:>12} {:>9} {:>9} {:>7} {:>9} {:>9} {:>9}",
        "scenario",
        "users",
        "rate",
        "wall(ms)",
        "events",
        "offered",
        "estab",
        "rtf",
        "cps(wall)",
        "p50(ms)",
        "p99(ms)"
    );
    let samples: Vec<Sample> =
        siphoc_simnet::parallel::run_indexed(jobs, specs.len(), |i| best_of(reps, &specs[i]));
    for s in &samples {
        let r = &s.report;
        let (p50, _, p99) = setup_percentiles(r);
        println!(
            "{:<22} {:>6} {:>8.0} {:>10.1} {:>12} {:>9} {:>9} {:>7.2} {:>9.0} {:>9.2} {:>9.2}",
            r.name,
            r.users,
            r.rate_cps,
            r.wall_ms,
            r.events,
            r.offered,
            r.established,
            r.rtf(),
            r.wall_cps(),
            p50,
            p99
        );
    }

    // Every steady scenario must establish what it offered — loopback
    // signaling has no loss, so a shortfall is a stack bug, not load.
    for s in &samples {
        let r = &s.report;
        if r.rate_cps > 0.0 {
            assert_eq!(
                r.established, r.offered,
                "{}: {} of {} offered calls established — signaling stack dropped calls",
                r.name, r.established, r.offered
            );
        }
    }

    let ladder: Vec<&LoadReport> = samples
        .iter()
        .map(|s| &s.report)
        .filter(|r| r.rate_cps > 0.0 && r.arrival == "uniform")
        .collect();
    let knee = find_knee(&ladder);
    let peak_cps = ladder.iter().map(|r| r.wall_cps()).fold(0.0f64, f64::max);
    match knee {
        Some(k) => println!(
            "\nsaturation knee: ~{k:.0} offered calls/s (real-time factor crosses 1.0); \
             peak sustained {peak_cps:.0} calls/s"
        ),
        None => println!(
            "\nsaturation knee: above the ladder (every rung faster than real time); \
             peak sustained {peak_cps:.0} calls/s"
        ),
    }

    let json = render_json(&samples, jobs, knee, peak_cps);
    let json = match std::fs::read_to_string(&out_path) {
        Ok(old) => carry_pre_block(&old, json),
        Err(_) => json,
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("cannot write {out_path}: {e}"),
    }

    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(base_path) = check_path {
        match check_against_baseline(&samples, &base_path) {
            Ok(report) => {
                println!("\nregression check vs {base_path}:");
                for line in report {
                    println!("  {line}");
                }
            }
            Err(failures) => {
                eprintln!("\nregression check vs {base_path} FAILED:");
                for line in failures {
                    eprintln!("  {line}");
                }
                std::process::exit(1);
            }
        }
    }
}
