//! E9 — Mid-call gateway handoff latency.
//!
//! Two gateways flank a chain MANET; alice (one hop from the near
//! gateway, two from the far one) holds an Internet call to a wired UA
//! when the serving gateway is powered off mid-call. Tunnel keepalives
//! detect the death, the Connection Provider re-leases from its warm
//! standby, the UA re-INVITEs with the new public contact and media
//! re-homes. Reported per seed:
//!
//! * handoff time (gateway kill → replacement lease held),
//! * whether the call survived (no failure event, RTP kept flowing).
//!
//! Expected shape: handoff completes in `keepalive_interval *
//! (max_missed + 1)` plus one tunnel round-trip — about 4 s with the
//! defaults, against the ~90 s refresh-timeout blind spot it replaces.
//! Run with `--release`; `--smoke` runs a single seed as a CI crash
//! canary.

use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_internet::dns::DnsDirectory;
use siphoc_internet::provider::{ProviderConfig, SipProviderProcess};
use siphoc_media::session::{MediaConfig, MediaProcess};
use siphoc_simnet::net::ports;
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{CallEvent, UaConfig, UserAgent};
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 5] = [6601, 6602, 6603, 6604, 6605];
const PROVIDER: Addr = Addr(0x52010101);
const GW_NEAR: Addr = Addr(0x5282_4001); // 82.130.64.1
const GW_FAR: Addr = Addr(0x5282_4101); // 82.130.65.1

struct Run {
    handoff_s: f64,
    survived: bool,
}

fn pool_of(lease: Addr) -> Addr {
    Addr(lease.0 & 0xffff_ff00)
}

fn run_one(seed: u64) -> Option<Run> {
    let mut w = World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()));
    let dns = DnsDirectory::new().with_record("voicehoc.ch", PROVIDER);
    let p = w.add_node(NodeConfig::wired(PROVIDER));
    w.spawn(
        p,
        Box::new(SipProviderProcess::new(ProviderConfig::new(
            "voicehoc.ch",
            dns.clone(),
        ))),
    );
    let iris_node = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 50)));
    let (iris, _ilog) = UserAgent::new(UaConfig::new(
        Aor::new("iris", "voicehoc.ch"),
        SocketAddr::new(PROVIDER, ports::SIP),
    ));
    w.spawn(iris_node, Box::new(iris));
    let (im, _) = MediaProcess::new(MediaConfig::pcmu(8000));
    w.spawn(iris_node, Box::new(im));

    // Near gateway — alice — relay — far gateway, in a line.
    let gw_near = deploy(
        &mut w,
        NodeSpec::relay(0.0, 0.0)
            .with_gateway(GW_NEAR)
            .with_dns(dns.clone()),
    );
    let mut ua = VoipAppConfig::fig2("alice", "voicehoc.ch")
        .to_ua_config()
        .expect("config");
    ua.answer_delay = SimDuration::ZERO;
    let ua = ua.call_at(
        SimTime::from_secs(30),
        Aor::new("iris", "voicehoc.ch"),
        SimDuration::from_secs(30),
    );
    let alice = deploy(
        &mut w,
        NodeSpec::relay(60.0, 0.0)
            .with_dns(dns.clone())
            .with_user(ua),
    );
    deploy(&mut w, NodeSpec::relay(120.0, 0.0).with_dns(dns.clone()));
    let gw_far = deploy(
        &mut w,
        NodeSpec::relay(180.0, 0.0)
            .with_gateway(GW_FAR)
            .with_dns(dns),
    );

    // Lease + call up, media flowing.
    w.run_until(SimTime::from_secs(35));
    let first: Vec<Addr> = w
        .node(alice.id)
        .local_addrs()
        .iter()
        .copied()
        .filter(|a| a.is_public())
        .collect();
    if first.len() != 1 {
        return None;
    }
    let dead = if pool_of(first[0]) == pool_of(Addr(GW_NEAR.0 + 100)) {
        gw_near.id
    } else {
        gw_far.id
    };
    let rtp_before = w.node(alice.id).stats().get("media.rtp_rx").packets;

    // Kill the serving gateway mid-call and watch for the new lease.
    w.set_node_up(dead, false);
    let killed_at = SimTime::from_secs(35);
    let mut handoff_at = None;
    for step in 0..100 {
        w.run_for(SimDuration::from_millis(100));
        let lease: Vec<Addr> = w
            .node(alice.id)
            .local_addrs()
            .iter()
            .copied()
            .filter(|a| a.is_public() && pool_of(*a) != pool_of(first[0]))
            .collect();
        if !lease.is_empty() {
            handoff_at = Some(killed_at + SimDuration::from_millis(100 * (step + 1)));
            break;
        }
    }
    let handoff_s = handoff_at?.saturating_since(killed_at).as_secs_f64();

    // Let the call run out; did it survive the handoff?
    w.run_until(SimTime::from_secs(70));
    let failed = alice.ua_logs[0]
        .borrow()
        .any(|e| matches!(e, CallEvent::Failed { .. }));
    let rtp_after = w.node(alice.id).stats().get("media.rtp_rx").packets;
    let handoffs = w.node(alice.id).stats().get("cp.handoff_ok").packets;
    Some(Run {
        handoff_s,
        survived: !failed && rtp_after > rtp_before && handoffs >= 1,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: &[u64] = if smoke { &SEEDS[..1] } else { &SEEDS[..] };
    println!(
        "E9: mid-call gateway handoff ({} seed{})\n",
        seeds.len(),
        if seeds.len() == 1 { "" } else { "s" }
    );
    println!("{:>6} {:>13} {:>10}", "seed", "handoff (s)", "survived");
    let mut latencies = Vec::new();
    let mut survived = 0usize;
    for &seed in seeds {
        match run_one(seed) {
            Some(r) => {
                println!(
                    "{seed:>6} {:>13.2} {:>10}",
                    r.handoff_s,
                    if r.survived { "yes" } else { "NO" }
                );
                latencies.push(r.handoff_s);
                survived += usize::from(r.survived);
            }
            None => println!("{seed:>6} {:>13} {:>10}", "-", "NO"),
        }
    }
    let mean = siphoc_bench::mean(&latencies).unwrap_or(f64::NAN);
    println!(
        "\nmean handoff {:.2} s over {} run(s); {}/{} calls survived",
        mean,
        latencies.len(),
        survived,
        seeds.len()
    );
    assert!(
        latencies.len() == seeds.len() && survived == seeds.len(),
        "handoff failed on at least one seed"
    );
    assert!(
        mean <= 5.0,
        "mean handoff {mean:.2} s exceeds the 5 s budget"
    );
    println!("shape check: detection is keepalive-bounded (~4 s with defaults),");
    println!("not refresh-bounded (~90 s); the warm standby avoids a re-probe.");
}
