//! E9 — Mid-call gateway handoff: break-before-make vs make-before-break.
//!
//! Two gateways flank a chain MANET; alice (one hop from the near
//! gateway, two from the far one) holds an Internet call to a wired UA
//! when the serving gateway is powered off mid-call. Each seed runs
//! twice, side by side:
//!
//! * **bbm** (break-before-make, the PR 4 behavior): no standbys, 1 s
//!   keepalives. Death detection → fresh `TCONNECT` to the survivor →
//!   re-INVITE. Handoff is keepalive-bounded, ~4 s.
//! * **mbb** (make-before-break): the Connection Provider pre-warms a
//!   standby lease on the second gateway and pings it on the same fast
//!   cadence as the active one (5 ms, 1 missed). On death it *promotes*
//!   the warm standby instead of re-leasing: handoff is one detection
//!   interval, tens of milliseconds, and the media stall stays inside one
//!   jitter-buffer depth (60 ms).
//!
//! Reported per run: handoff time (kill → replacement lease held), the
//! worst RTP receive stall around the kill (inter-arrival beyond the
//! 20 ms packet schedule — the displacement a jitter buffer must
//! absorb), survival, and — on the last
//! seed, where the far gateway is NAT'd — how many media packets crossed
//! the TURN-style relay. Run with `--release`; `--smoke` runs both modes
//! on the first seed as a CI canary.

use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_internet::dns::DnsDirectory;
use siphoc_internet::provider::{ProviderConfig, SipProviderProcess};
use siphoc_internet::relay::{RelayConfig, TurnRelay};
use siphoc_media::session::{MediaConfig, MediaProcess};
use siphoc_simnet::net::ports;
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{CallEvent, UaConfig, UserAgent};
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 5] = [6601, 6602, 6603, 6604, 6605];
const PROVIDER: Addr = Addr(0x52010101);
const GW_NEAR: Addr = Addr(0x5282_4001); // 82.130.64.1
const GW_FAR: Addr = Addr(0x5282_4101); // 82.130.65.1
const RELAY: Addr = Addr(0x5282_4201); // 82.130.66.1

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Bbm,
    Mbb,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Bbm => "bbm",
            Mode::Mbb => "mbb",
        }
    }
}

struct Run {
    handoff_ms: f64,
    gap_ms: f64,
    survived: bool,
    /// Media packets through the TURN relay (NAT'd runs only).
    relayed: Option<u64>,
}

fn pool_of(lease: Addr) -> Addr {
    Addr(lease.0 & 0xffff_ff00)
}

fn run_one(seed: u64, mode: Mode, nat_far: bool) -> Option<Run> {
    // Regional backbone: the E9 budget (media gap within one jitter-buffer
    // depth) assumes gateway, provider and callee share a metro backbone,
    // not the 20 ms default continental one — three wired legs sit between
    // the re-INVITE and the first re-homed RTP packet.
    let mut wc = WorldConfig::new(seed).with_radio(RadioConfig::ideal());
    wc.wired_latency = SimDuration::from_millis(5);
    wc.wired_jitter = SimDuration::from_millis(1);
    let mut w = World::new(wc);
    let dns = DnsDirectory::new().with_record("voicehoc.ch", PROVIDER);
    let p = w.add_node(NodeConfig::wired(PROVIDER));
    w.spawn(
        p,
        Box::new(SipProviderProcess::new(ProviderConfig::new(
            "voicehoc.ch",
            dns.clone(),
        ))),
    );
    let iris_node = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 50)));
    let (iris, _ilog) = UserAgent::new(UaConfig::new(
        Aor::new("iris", "voicehoc.ch"),
        SocketAddr::new(PROVIDER, ports::SIP),
    ));
    w.spawn(iris_node, Box::new(iris));
    let (im, _) = MediaProcess::new(MediaConfig::pcmu(8000));
    w.spawn(iris_node, Box::new(im));
    let relay_node = nat_far.then(|| {
        let id = w.add_node(NodeConfig::wired(RELAY));
        w.spawn(
            id,
            Box::new(TurnRelay::new(RelayConfig {
                pool_base: Addr(RELAY.0 + 100),
                ..RelayConfig::default()
            })),
        );
        id
    });

    // Mode-specific Connection Provider tuning on every MANET node.
    let tune = |spec: NodeSpec| match mode {
        // PR 4 configuration: defaults, no standbys.
        Mode::Bbm => spec.with_standby(0, SimDuration::from_secs(10)),
        // Fast detection + one pre-warmed standby lease.
        Mode::Mbb => spec
            .with_keepalive(SimDuration::from_millis(5), 1)
            .with_standby(1, SimDuration::from_millis(500)),
    };

    // Near gateway — alice — relay — far gateway, in a line.
    let gw_near = deploy(
        &mut w,
        tune(NodeSpec::relay(0.0, 0.0))
            .with_gateway(GW_NEAR)
            .with_dns(dns.clone()),
    );
    let mut ua = VoipAppConfig::fig2("alice", "voicehoc.ch")
        .to_ua_config()
        .expect("config");
    ua.answer_delay = SimDuration::ZERO;
    let ua = ua.call_at(
        SimTime::from_secs(30),
        Aor::new("iris", "voicehoc.ch"),
        SimDuration::from_secs(30),
    );
    let alice = deploy(
        &mut w,
        tune(NodeSpec::relay(60.0, 0.0))
            .with_dns(dns.clone())
            .with_user(ua),
    );
    deploy(
        &mut w,
        tune(NodeSpec::relay(120.0, 0.0)).with_dns(dns.clone()),
    );
    let far_spec = tune(NodeSpec::relay(180.0, 0.0)).with_dns(dns);
    let far_spec = if nat_far {
        far_spec.with_nat_gateway(GW_FAR, SocketAddr::new(RELAY, ports::TUNNEL))
    } else {
        far_spec.with_gateway(GW_FAR)
    };
    let gw_far = deploy(&mut w, far_spec);

    // Lease + call up, media flowing.
    w.run_until(SimTime::from_secs(35));
    let first: Vec<Addr> = w
        .node(alice.id)
        .local_addrs()
        .iter()
        .copied()
        .filter(|a| a.is_public())
        .collect();
    if first.len() != 1 {
        return None;
    }
    let dead = if pool_of(first[0]) == pool_of(Addr(GW_NEAR.0 + 100)) {
        gw_near.id
    } else {
        gw_far.id
    };
    let rtp_before = w.node(alice.id).stats().get("media.rtp_rx").packets;

    // Kill the serving gateway mid-call; watch for the new lease and the
    // worst RTP receive stall. mbb polls at 5 ms so sub-100 ms handoffs
    // and sub-60 ms media gaps resolve; bbm at 100 ms (second-scale).
    w.set_node_up(dead, false);
    let killed_at = w.now();
    let (poll, steps) = match mode {
        Mode::Bbm => (SimDuration::from_millis(100), 100), // 10 s window
        Mode::Mbb => (SimDuration::from_millis(5), 600),   // 3 s window
    };
    let mut handoff_at = None;
    let mut last_rtp = rtp_before;
    let mut last_rx_at = killed_at;
    // Worst RTP inter-arrival across the handoff; packets normally land
    // every ptime (20 ms), so the stall a jitter buffer must absorb is
    // the inter-arrival minus that schedule.
    let mut max_gap = SimDuration::ZERO;
    for _ in 0..steps {
        w.run_for(poll);
        let now = w.now();
        let rtp = w.node(alice.id).stats().get("media.rtp_rx").packets;
        if rtp > last_rtp {
            max_gap = max_gap.max(now.saturating_since(last_rx_at));
            last_rtp = rtp;
            last_rx_at = now;
        }
        if handoff_at.is_none() {
            let re_homed = w
                .node(alice.id)
                .local_addrs()
                .iter()
                .any(|a| a.is_public() && pool_of(*a) != pool_of(first[0]));
            if re_homed {
                handoff_at = Some(now);
            }
        }
    }
    let handoff_ms = handoff_at?.saturating_since(killed_at).as_secs_f64() * 1e3;

    // Let the call run out; did it survive the handoff?
    w.run_until(SimTime::from_secs(70));
    let failed = alice.ua_logs[0]
        .borrow()
        .any(|e| matches!(e, CallEvent::Failed { .. }));
    let rtp_after = w.node(alice.id).stats().get("media.rtp_rx").packets;
    let handoffs = w.node(alice.id).stats().get("cp.handoff_ok").packets;
    // Honesty check: mbb runs must hand off by *promoting* a pre-warmed
    // standby, not by winning a fast break-before-make re-lease.
    let promoted = w.node(alice.id).stats().get("cp.promote").packets >= 1;
    let relayed = relay_node.map(|id| w.node(id).stats().get("media.relayed").packets);
    const PTIME_MS: f64 = 20.0;
    Some(Run {
        handoff_ms,
        gap_ms: (max_gap.as_secs_f64() * 1e3 - PTIME_MS).max(0.0),
        survived: !failed
            && rtp_after > rtp_before
            && handoffs >= 1
            && (mode == Mode::Bbm || promoted),
        relayed,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seeds: &[u64] = if smoke { &SEEDS[..1] } else { &SEEDS[..] };
    println!(
        "E9: mid-call gateway handoff, break-before-make vs make-before-break ({} seed{})\n",
        seeds.len(),
        if seeds.len() == 1 { "" } else { "s" }
    );
    println!(
        "{:>6} {:>5} {:>6} {:>13} {:>9} {:>9} {:>8}",
        "seed", "mode", "nat", "handoff (ms)", "stall (ms)", "survived", "relayed"
    );
    let mut means = std::collections::BTreeMap::new();
    let mut survived = 0usize;
    let mut runs = 0usize;
    let mut mbb_gap_ok = true;
    let mut relayed_total = 0u64;
    // Each (seed, mode) run builds an isolated world, so the sweep fans
    // out over a worker pool under --jobs; results come back in input
    // order and the report below is identical either way.
    let mut cases = Vec::new();
    for &seed in seeds {
        // The last seed exercises the NAT'd far gateway, so its mbb
        // promotion re-homes media through the TURN-style relay.
        let nat_far = !smoke && seed == SEEDS[SEEDS.len() - 1];
        for mode in [Mode::Bbm, Mode::Mbb] {
            cases.push((seed, mode, nat_far));
        }
    }
    let results = siphoc_simnet::parallel::run_indexed(jobs, cases.len(), |i| {
        let (seed, mode, nat_far) = cases[i];
        run_one(seed, mode, nat_far)
    });
    for (&(seed, mode, nat_far), result) in cases.iter().zip(results) {
        {
            runs += 1;
            match result {
                Some(r) => {
                    println!(
                        "{seed:>6} {:>5} {:>6} {:>13.1} {:>9.1} {:>9} {:>8}",
                        mode.label(),
                        if nat_far { "yes" } else { "-" },
                        r.handoff_ms,
                        r.gap_ms,
                        if r.survived { "yes" } else { "NO" },
                        r.relayed.map_or("-".into(), |n| n.to_string()),
                    );
                    means
                        .entry(mode.label())
                        .or_insert_with(Vec::new)
                        .push(r.handoff_ms);
                    survived += usize::from(r.survived);
                    if mode == Mode::Mbb && r.gap_ms > 60.0 {
                        mbb_gap_ok = false;
                    }
                    relayed_total += r.relayed.unwrap_or(0);
                }
                None => println!(
                    "{seed:>6} {:>5} {:>6} {:>13} {:>9} {:>9} {:>8}",
                    mode.label(),
                    if nat_far { "yes" } else { "-" },
                    "-",
                    "-",
                    "NO",
                    "-"
                ),
            }
        }
    }
    println!();
    for (label, xs) in &means {
        println!(
            "{label}: mean handoff {:.1} ms over {} run(s)",
            siphoc_bench::mean(xs).unwrap_or(f64::NAN),
            xs.len()
        );
    }
    let bbm = means.get("bbm").map(|x| x.as_slice()).unwrap_or_default();
    let mbb = means.get("mbb").map(|x| x.as_slice()).unwrap_or_default();
    let bbm_mean = siphoc_bench::mean(bbm).unwrap_or(f64::NAN);
    let mbb_mean = siphoc_bench::mean(mbb).unwrap_or(f64::NAN);
    assert!(
        survived == runs && bbm.len() + mbb.len() == runs,
        "handoff failed on at least one run ({survived}/{runs} survived)"
    );
    assert!(
        bbm_mean <= 5_000.0,
        "bbm mean handoff {bbm_mean:.1} ms exceeds the 5 s budget"
    );
    let mbb_budget = if smoke { 500.0 } else { 100.0 };
    assert!(
        mbb_mean < mbb_budget,
        "mbb mean handoff {mbb_mean:.1} ms exceeds the {mbb_budget:.0} ms budget"
    );
    assert!(
        mbb_gap_ok,
        "an mbb run stalled media beyond one jitter-buffer depth (60 ms)"
    );
    if !smoke {
        assert!(
            relayed_total > 0,
            "the NAT'd seed never re-homed media through the relay"
        );
    }
    println!("\nshape check: bbm is detection-bounded (keepalive * missed, ~4 s);");
    println!("mbb promotes a pre-warmed standby lease — one short detection");
    println!("interval, media gap within one jitter buffer, even via the relay.");
}
