//! E8 — Scalability with network size (the paper's stated future work:
//! "as a next step, we plan to explore the scalability of the system as
//! the number of nodes grows").
//!
//! Constant-density random topologies from 10 to 50 nodes; a quarter of
//! the nodes run users and half of those place staggered calls while the
//! whole network idles otherwise. Reported per size: call success within
//! 10 s, mean setup time, control payload bytes/node/s, and SLP lookup
//! outcome mix.
//!
//! Expected shape: success holds and setup time grows mildly with the
//! larger diameters; per-node control overhead stays near-flat — the
//! system's costs are per-neighborhood (hellos) and per-call (floods),
//! not per-network. Run with `--release`.

use siphoc_bench::measure::call_measurement;
use siphoc_bench::topology::bench_ua;
use siphoc_core::nodesetup::{deploy, NodeSpec, SiphocNode};
use siphoc_simnet::prelude::*;
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 3] = [8881, 8882, 8883];
/// Node density: one node per (85 m)² keeps the topology connected w.h.p.
const CELL: f64 = 85.0;
const SETUP_DEADLINE: SimDuration = SimDuration::from_secs(10);

struct Outcome {
    attempted: usize,
    ok: usize,
    setup_ms: Vec<f64>,
    ctrl_bytes_per_node_s: f64,
    lookup_hits: u64,
    lookup_misses: u64,
}

fn run_one(seed: u64, n: usize) -> Outcome {
    let mut w = World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()));
    // Constant-density square area.
    let side = (n as f64).sqrt() * CELL;
    let mut rng = SimRng::from_seed_and_stream(seed, 4242);
    let users = n / 4;
    let mut nodes: Vec<SiphocNode> = Vec::new();
    for i in 0..n {
        // Jittered grid placement: connected but irregular.
        let cols = (n as f64).sqrt().ceil() as usize;
        let gx = (i % cols) as f64 * CELL + rng.range_f64(-20.0, 20.0);
        let gy = (i / cols) as f64 * CELL + rng.range_f64(-20.0, 20.0);
        let mut spec =
            NodeSpec::relay(gx.clamp(0.0, side), gy.clamp(0.0, side)).without_connection_provider();
        if i < users {
            let mut ua = bench_ua(&format!("u{i}"));
            if i % 2 == 0 && i + 1 < users {
                ua = ua.call_at(
                    SimTime::from_secs(20 + (i as u64) * 5),
                    Aor::new(&format!("u{}", i + 1), "voicehoc.ch"),
                    SimDuration::from_secs(10),
                );
            }
            spec = spec.with_user(ua);
        }
        nodes.push(deploy(&mut w, spec));
    }
    let run_secs = 120u64;
    w.run_for(SimDuration::from_secs(run_secs));

    let mut attempted = 0;
    let mut ok = 0;
    let mut setup_ms = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if i < users && i % 2 == 0 && i + 1 < users {
            attempted += 1;
            let m = call_measurement(node, 0);
            if let Some(s) = m.setup {
                if s <= SETUP_DEADLINE {
                    ok += 1;
                    setup_ms.push(s.as_millis_f64());
                }
            }
        }
    }
    let ctrl =
        siphoc_bench::measure::control_bytes_per_node_second(&w, SimDuration::from_secs(run_secs));
    let hits = siphoc_core::metrics::total_counter(&w, "slp.lookup_hit").packets;
    let misses = siphoc_core::metrics::total_counter(&w, "slp.lookup_miss").packets;
    Outcome {
        attempted,
        ok,
        setup_ms,
        ctrl_bytes_per_node_s: ctrl,
        lookup_hits: hits,
        lookup_misses: misses,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    println!(
        "E8: scalability with network size ({} seeds per point)\n",
        SEEDS.len()
    );
    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>13} {:>11}",
        "nodes", "calls", "success(%)", "setup(ms)", "ctrl B/node/s", "hit:miss"
    );
    // Every (size, seed) run is an isolated world: fan the whole sweep
    // out over a worker pool under --jobs, then aggregate in input order.
    const SIZES: [usize; 5] = [10, 20, 30, 40, 50];
    let cases: Vec<(usize, u64)> = SIZES
        .iter()
        .flat_map(|&n| SEEDS.iter().map(move |&s| (n, s)))
        .collect();
    let mut results = siphoc_simnet::parallel::run_indexed(jobs, cases.len(), |i| {
        let (n, seed) = cases[i];
        run_one(seed, n)
    })
    .into_iter();
    for n in SIZES {
        let mut attempted = 0;
        let mut ok = 0;
        let mut setup = Vec::new();
        let mut ctrl = Vec::new();
        let mut hits = 0;
        let mut misses = 0;
        for _seed in SEEDS {
            let o = results.next().expect("one result per case");
            attempted += o.attempted;
            ok += o.ok;
            setup.extend(o.setup_ms);
            ctrl.push(o.ctrl_bytes_per_node_s);
            hits += o.lookup_hits;
            misses += o.lookup_misses;
        }
        println!(
            "{n:>6} {attempted:>9} {:>11.0} {:>11.1} {:>13.1} {:>8}:{}",
            100.0 * ok as f64 / attempted.max(1) as f64,
            siphoc_bench::mean(&setup).unwrap_or(f64::NAN),
            siphoc_bench::mean(&ctrl).unwrap_or(f64::NAN),
            hits,
            misses
        );
    }
    println!("\nshape check: success holds, setup grows mildly with diameter,");
    println!("per-node control overhead stays near-flat as the network grows.");
}
