//! E1 — Session establishment time vs hop count.
//!
//! The headline figure of the SIPHoc evaluation: how long from INVITE to
//! Established over 1–7 hop chains, for
//!
//! * AODV **cold** — first-ever call, routes and binding unknown: pays
//!   MANET SLP resolution (service RREQ/RREP) which *also* installs the
//!   route, then the SIP handshake;
//! * AODV **warm** — second call on the same pair: binding cached, route
//!   alive, pure SIP handshake cost;
//! * OLSR — proactive routes and fully replicated bindings: lookup is
//!   local, setup is the SIP handshake over pre-computed routes.
//!
//! Expected shape: cold grows clearly with hops (flood + reply + signaling
//! round trips), warm/OLSR grow gently (per-hop forwarding only), and
//! OLSR ≈ warm. Run with `--release`.

use siphoc_bench::measure::call_measurement;
use siphoc_bench::topology::{ideal_world, siphoc_chain};
use siphoc_bench::Series;
use siphoc_core::nodesetup::RoutingProtocol;
use siphoc_simnet::prelude::*;
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 5] = [1101, 1102, 1103, 1104, 1105];
const MAX_HOPS: usize = 7;

fn run_one(seed: u64, hops: usize, routing: RoutingProtocol, warm: bool) -> Option<(f64, f64)> {
    let proactive = !matches!(routing, RoutingProtocol::Aodv(_));
    let mut w = ideal_world(seed);
    // Caller on node 0, callee on node `hops`.
    let mut nodes = siphoc_chain(&mut w, hops + 1, &routing, &[(hops, "bob")]);
    // Give proactive protocols (and their gossip) time to converge; keep
    // AODV cold by calling before periodic floods spread the binding.
    // DSDV needs diameter x update-interval.
    let (first_call, settle) = if proactive {
        (90u64, 90u64)
    } else {
        (3u64, 0u64)
    };
    let mut ua = siphoc_bench::topology::bench_ua("alice");
    ua = ua.call_at(
        SimTime::from_secs(first_call),
        Aor::new("bob", "voicehoc.ch"),
        SimDuration::from_secs(3),
    );
    if warm {
        // Second call 4 s after the first: binding cached, route from the
        // first call still within its active lifetime.
        ua = ua.call_at(
            SimTime::from_secs(first_call + 4),
            Aor::new("bob", "voicehoc.ch"),
            SimDuration::from_secs(3),
        );
    }
    let caller = siphoc_core::nodesetup::deploy(
        &mut w,
        siphoc_core::nodesetup::NodeSpec::relay(0.0, -60.0)
            .with_routing(match &routing {
                RoutingProtocol::Aodv(c) => RoutingProtocol::Aodv(c.clone()),
                RoutingProtocol::Olsr(c) => RoutingProtocol::Olsr(c.clone()),
                RoutingProtocol::Dsdv(c) => RoutingProtocol::Dsdv(c.clone()),
            })
            .without_connection_provider()
            .with_user(ua),
    );
    let _ = settle;
    let _ = &mut nodes;
    w.run_for(SimDuration::from_secs(first_call + 20));
    let k = if warm { 1 } else { 0 };
    let m = call_measurement(&caller, k);
    m.setup.map(|d| (hops as f64, d.as_millis_f64()))
}

fn sweep(label: &str, routing: fn() -> RoutingProtocol, warm: bool) -> Series {
    let mut series = Series::new(label);
    for hops in 1..=MAX_HOPS {
        let mut samples = Vec::new();
        for seed in SEEDS {
            if let Some((_, ms)) = run_one(seed, hops, routing(), warm) {
                samples.push(ms);
            }
        }
        if let Some(mean) = siphoc_bench::mean(&samples) {
            series.push(hops as f64, mean);
        }
    }
    series
}

fn main() {
    println!(
        "E1: session establishment time vs hop count ({} seeds per point)\n",
        SEEDS.len()
    );
    let cold = sweep("aodv-cold", RoutingProtocol::aodv, false);
    let warm = sweep("aodv-warm", RoutingProtocol::aodv, true);
    let olsr = sweep("olsr", RoutingProtocol::olsr, false);
    let dsdv = sweep("dsdv", RoutingProtocol::dsdv, false);

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "hops", "aodv-cold", "aodv-warm", "olsr", "dsdv"
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "", "(ms)", "(ms)", "(ms)", "(ms)"
    );
    for i in 0..cold.points.len() {
        let h = cold.points[i].0;
        let c = cold.points[i].1;
        let find = |s: &Series| {
            s.points
                .iter()
                .find(|(x, _)| *x == h)
                .map(|(_, y)| *y)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{h:>5.0} {c:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            find(&warm),
            find(&olsr),
            find(&dsdv)
        );
    }
    println!("\nshape check: cold > warm at every hop count; cold grows with hops.");
}
