//! F6 — Deployment footprint (paper §4).
//!
//! The paper reports static sizes for the iPAQ port: a 1.2 MB system
//! (proxy, Gateway Provider, Connection Provider, MANET SLP plus ~20
//! shared libraries) against the handheld's 32 MB flash, of which the OS
//! takes 25 MB, plus a 1 MB VoIP application. Binary sizes do not
//! translate across languages and decades, so this harness accounts the
//! footprint dimension the middleware *scales* with: per-node runtime
//! state as the network and user population grow — the number that
//! decides whether the 7 MB of free flash/RAM headroom survives a large
//! MANET. `EXPERIMENTS.md` restates the paper's static numbers alongside.
//!
//! Run with `--release`.

use siphoc_bench::topology::{bench_ua, SPACING};
use siphoc_core::metrics::{node_footprint, ROUTE_ENTRY_BYTES, SLP_ENTRY_BYTES};
use siphoc_core::nodesetup::{deploy, NodeSpec, RoutingProtocol};
use siphoc_simnet::prelude::*;

fn run(side: usize, users: usize, routing: RoutingProtocol, label: &str) {
    let mut w = World::new(WorldConfig::new(9901).with_radio(RadioConfig::ideal()));
    let mut nodes = Vec::new();
    for i in 0..side * side {
        let x = (i % side) as f64 * SPACING;
        let y = (i / side) as f64 * SPACING;
        let mut spec = NodeSpec::relay(x, y)
            .with_routing(match &routing {
                RoutingProtocol::Aodv(c) => RoutingProtocol::Aodv(c.clone()),
                RoutingProtocol::Olsr(c) => RoutingProtocol::Olsr(c.clone()),
                RoutingProtocol::Dsdv(c) => RoutingProtocol::Dsdv(c.clone()),
            })
            .without_connection_provider();
        if i < users {
            spec = spec.with_user(bench_ua(&format!("user{i}")));
        }
        nodes.push(deploy(&mut w, spec));
    }
    // Let the network converge; OLSR replicates everything.
    w.run_for(SimDuration::from_secs(60));
    let now = w.now();
    let mut max_routes = 0usize;
    let mut max_slp = 0usize;
    let mut sum_bytes = 0usize;
    for n in &nodes {
        let fp = node_footprint(&w, n.id, Some(&n.registry), now);
        max_routes = max_routes.max(fp.routing_entries);
        max_slp = max_slp.max(fp.slp_entries);
        sum_bytes += fp.routing_bytes + fp.slp_bytes;
    }
    let mean_bytes = sum_bytes / nodes.len();
    println!(
        "{label:<12} {:>6} {:>6} {:>12} {:>10} {:>12}",
        side * side,
        users,
        max_routes,
        max_slp,
        mean_bytes
    );
}

fn main() {
    println!("F6: per-node middleware state vs scale");
    println!(
        "(route entry = {ROUTE_ENTRY_BYTES} B, SLP entry = {SLP_ENTRY_BYTES} B accounting units)\n"
    );
    println!(
        "{:<12} {:>6} {:>6} {:>12} {:>10} {:>12}",
        "stack", "nodes", "users", "max routes", "max SLP", "mean bytes"
    );
    for (side, users) in [(3usize, 4usize), (4, 8), (5, 12)] {
        run(side, users, RoutingProtocol::aodv(), "siphoc/aodv");
    }
    for (side, users) in [(3usize, 4usize), (4, 8), (5, 12)] {
        run(side, users, RoutingProtocol::olsr(), "siphoc/olsr");
    }
    println!("\npaper's static footprint for context: middleware 1.2 MB,");
    println!("VoIP app 1.0 MB, OS 25 MB of the iPAQ's 32 MB flash.");
    println!("Runtime state above stays in kilobytes even at 25 nodes —");
    println!("the middleware's scaling footprint is negligible next to code size.");
}
