//! E12 — adversarial faults vs the PKI-less defense layer.
//!
//! Two attacks from the malicious fault family run against the full
//! stack, each twice per seed — defenses off (the paper's trust-everyone
//! baseline) and on (signed SLP adverts + registry pins, challenge
//! REGISTER auth, gateway attestation):
//!
//! * **AOR hijack** — a compromised relay on the only path between two
//!   callers impersonates the callee's SIP binding in its own shared
//!   registry (victim origin kept, contact flipped to the attacker's
//!   blackhole port, sequence boosted past any honest refresh). The
//!   unmodified SLP daemon gossips the forgery; defense-off every INVITE
//!   lands on the attacker. Defense-on the forgery dies at cache-insert
//!   (AOR + origin pins) and calls complete normally.
//! * **Rogue gateway** — the compromised node impersonates both real
//!   gateways' adverts, then the serving gateway is killed. The
//!   break-before-make re-lease consults the poisoned registry;
//!   defense-off the client `TCONNECT`s to the attacker's fake tunnel
//!   server, accepts a TEST-NET-3 lease, and its tunneled traffic is
//!   blackholed. Defense-on the forgeries are rejected and the client
//!   re-homes to the surviving real gateway.
//!
//! The ablation arm runs the hijack topology *benign* (no compromise)
//! with defenses off vs on and reports call-setup delay percentiles plus
//! per-advert wire bytes — the price of the signature layer. Run with
//! `--release`; `--smoke` runs the first seed only and writes no results
//! file; the full run renders `results/BENCH_adversarial.json`.

use std::fmt::Write as _;

use siphoc_core::adversary::AdversaryConfig;
use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec, RoutingProtocol};
use siphoc_internet::dns::DnsDirectory;
use siphoc_internet::provider::{ProviderConfig, SipProviderProcess};
use siphoc_simnet::net::ports;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{CallEvent, UaConfig, UserAgent};
use siphoc_sip::uri::Aor;
use siphoc_slp::service::ServiceEntry;

const SEEDS: [u64; 5] = [7701, 7702, 7703, 7704, 7705];
const PROVIDER: Addr = Addr(0x52010101);
const GW_A: Addr = Addr(0x5282_4001); // 82.130.64.1
const GW_B: Addr = Addr(0x5282_4101); // 82.130.65.1
const DOMAIN: &str = "voicehoc.ch";

/// The bogus lease pool handed out by the fake tunnel server
/// (TEST-NET-3, `AdversaryConfig::default().bogus_public`).
const BOGUS_POOL: Addr = Addr(0xcb00_7100); // 203.0.113.0

#[derive(Clone, Copy, PartialEq)]
enum Case {
    /// AOR hijack in a 3-node chain; `attack: false` is the benign
    /// ablation run measuring setup-delay overhead.
    Hijack { secure: bool, attack: bool },
    /// Rogue gateway + serving-gateway kill in the handoff topology.
    Rogue { secure: bool },
}

impl Case {
    fn label(self) -> String {
        let (name, secure) = match self {
            Case::Hijack {
                secure,
                attack: true,
            } => ("hijack", secure),
            Case::Hijack {
                secure,
                attack: false,
            } => ("benign", secure),
            Case::Rogue { secure } => ("rogue", secure),
        };
        format!("{name}/{}", if secure { "on" } else { "off" })
    }
}

#[derive(Default)]
struct Outcome {
    /// Calls alice placed / calls that established.
    calls: usize,
    established: usize,
    /// INVITEs blackholed by the attacker (unique Call-IDs).
    hijacked: u64,
    /// Rogue-gateway runs: did the client end up on a bogus lease?
    captured: bool,
    /// Rogue-gateway runs: did the client hold a lease from a pool other
    /// than its first one after the kill (bogus or survivor)?
    rehomed: bool,
    /// Bogus leases the fake tunnel server granted.
    bogus_leases: u64,
    /// Tunneled datagrams the attacker dropped.
    blackholed: u64,
    /// OutgoingCall → Established per completed call, milliseconds.
    setup_ms: Vec<f64>,
}

fn chain_spec(x: f64, secure: bool) -> NodeSpec {
    let spec = NodeSpec::relay(x, 0.0).with_routing(RoutingProtocol::olsr());
    if secure {
        spec.with_security()
    } else {
        spec
    }
}

fn setup_deltas(log: &siphoc_sip::ua::UaLog) -> Vec<f64> {
    let mut out = Vec::new();
    for (t0, ev) in log.events() {
        let CallEvent::OutgoingCall { call_id, .. } = ev else {
            continue;
        };
        let est = log.events().iter().find_map(|(t, e)| match e {
            CallEvent::Established { call_id: c, .. } if c == call_id => Some(*t),
            _ => None,
        });
        if let Some(t1) = est {
            out.push(t1.saturating_since(*t0).as_secs_f64() * 1e3);
        }
    }
    out
}

/// AOR hijack: alice — mallory — bob in a line; mallory is the only
/// relay, so every INVITE and every gossiped advert crosses it. With
/// `attack`, mallory is compromised at t=20 s and alice's three calls
/// (t=30/45/60) run against the poisoned caches.
fn run_hijack(seed: u64, secure: bool, attack: bool) -> Outcome {
    let wc = WorldConfig::new(seed).with_radio(RadioConfig::ideal());
    let mut w = World::new(wc);

    let mut ua = VoipAppConfig::fig2("alice", DOMAIN)
        .to_ua_config()
        .expect("config");
    ua.answer_delay = SimDuration::ZERO;
    for at in [30u64, 45, 60] {
        ua = ua.call_at(
            SimTime::from_secs(at),
            Aor::new("bob", DOMAIN),
            SimDuration::from_secs(5),
        );
    }
    let alice = deploy(&mut w, chain_spec(0.0, secure).with_user(ua));
    let mallory = deploy(
        &mut w,
        chain_spec(60.0, secure).with_adversary(AdversaryConfig::default()),
    );
    let mut bob_ua = VoipAppConfig::fig2("bob", DOMAIN)
        .to_ua_config()
        .expect("config");
    bob_ua.answer_delay = SimDuration::ZERO;
    deploy(&mut w, chain_spec(120.0, secure).with_user(bob_ua));

    if attack {
        w.install_fault_plan(FaultPlan::new().compromise_at(
            SimTime::from_secs(20),
            mallory.id,
            MaliciousKind::AorHijack,
        ));
    }
    w.run_until(SimTime::from_secs(80));

    let log = alice.ua_logs[0].borrow();
    Outcome {
        calls: log.count(|e| matches!(e, CallEvent::OutgoingCall { .. })),
        established: log.count(|e| matches!(e, CallEvent::Established { .. })),
        hijacked: w
            .node(mallory.id)
            .stats()
            .get("rogue.hijacked_calls")
            .packets,
        setup_ms: setup_deltas(&log),
        ..Outcome::default()
    }
}

fn pool_of(lease: Addr) -> Addr {
    Addr(lease.0 & 0xffff_ff00)
}

/// Rogue gateway: the exp_handoff chain (two real gateways flanking the
/// MANET, alice mid-call to a wired UA, break-before-make Connection
/// Provider). Mallory is compromised at t=35; the serving gateway dies
/// at t=50 and the forced re-lease runs against the poisoned registry.
fn run_rogue(seed: u64, secure: bool) -> Outcome {
    let mut wc = WorldConfig::new(seed).with_radio(RadioConfig::ideal());
    wc.wired_latency = SimDuration::from_millis(5);
    wc.wired_jitter = SimDuration::from_millis(1);
    let mut w = World::new(wc);
    let dns = DnsDirectory::new().with_record(DOMAIN, PROVIDER);
    let p = w.add_node(NodeConfig::wired(PROVIDER));
    w.spawn(
        p,
        Box::new(SipProviderProcess::new(ProviderConfig::new(
            DOMAIN,
            dns.clone(),
        ))),
    );
    let iris_node = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 50)));
    let (iris, _ilog) = UserAgent::new(UaConfig::new(
        Aor::new("iris", DOMAIN),
        SocketAddr::new(PROVIDER, ports::SIP),
    ));
    w.spawn(iris_node, Box::new(iris));

    // Break-before-make on every MANET node: the kill must force a
    // re-lease *through the registry* rather than a standby promotion.
    let tune = |x: f64| {
        chain_spec(x, secure)
            .with_standby(0, SimDuration::from_secs(10))
            .with_dns(dns.clone())
    };

    let gw_a = deploy(&mut w, tune(0.0).with_gateway(GW_A));
    let mut ua = VoipAppConfig::fig2("alice", DOMAIN)
        .to_ua_config()
        .expect("config");
    ua.answer_delay = SimDuration::ZERO;
    let ua = ua.call_at(
        SimTime::from_secs(30),
        Aor::new("iris", DOMAIN),
        SimDuration::from_secs(45),
    );
    let alice = deploy(&mut w, tune(60.0).with_user(ua));
    // The rogue tunnel server needs the tunnel port, which the Connection
    // Provider's client half owns on an attached node — the attacker
    // shuts its own client down before going rogue.
    let mallory = deploy(
        &mut w,
        tune(120.0)
            .without_connection_provider()
            .with_adversary(AdversaryConfig::default()),
    );
    let gw_b = deploy(&mut w, tune(180.0).with_gateway(GW_B));

    w.install_fault_plan(FaultPlan::new().compromise_at(
        SimTime::from_secs(35),
        mallory.id,
        MaliciousKind::RogueGateway,
    ));

    // Lease + call up; find the serving gateway before the kill.
    w.run_until(SimTime::from_secs(50));
    let first: Vec<Addr> = w
        .node(alice.id)
        .local_addrs()
        .iter()
        .copied()
        .filter(|a| a.is_public())
        .collect();
    let serving = first
        .first()
        .map(|a| {
            if pool_of(*a) == pool_of(Addr(GW_A.0 + 100)) {
                gw_a.id
            } else {
                gw_b.id
            }
        })
        .unwrap_or(gw_a.id);
    w.set_node_up(serving, false);
    w.run_until(SimTime::from_secs(75));

    let after: Vec<Addr> = w
        .node(alice.id)
        .local_addrs()
        .iter()
        .copied()
        .filter(|a| a.is_public() || pool_of(*a) == BOGUS_POOL)
        .collect();
    let captured = after.iter().any(|a| pool_of(*a) == BOGUS_POOL);
    let rehomed = match first.first() {
        Some(f) => after.iter().any(|a| pool_of(*a) != pool_of(*f)),
        None => false,
    };
    let log = alice.ua_logs[0].borrow();
    Outcome {
        calls: log.count(|e| matches!(e, CallEvent::OutgoingCall { .. })),
        established: log.count(|e| matches!(e, CallEvent::Established { .. })),
        hijacked: 0,
        captured,
        rehomed,
        bogus_leases: w.node(mallory.id).stats().get("rogue.lease").packets,
        blackholed: w.node(mallory.id).stats().get("rogue.blackholed").packets,
        setup_ms: Vec::new(),
    }
}

fn run_case(seed: u64, case: Case) -> Outcome {
    match case {
        Case::Hijack { secure, attack } => run_hijack(seed, secure, attack),
        Case::Rogue { secure } => run_rogue(seed, secure),
    }
}

/// Per-advert bytes, signed vs unsigned — the wire cost of the defense.
fn advert_bytes() -> (usize, usize, usize, usize) {
    let origin = Addr::new(10, 0, 0, 3);
    let kp = siphoc_simnet::ident::KeyPair::for_addr(origin.0);
    let sip = ServiceEntry::sip_binding(
        "bob@voicehoc.ch",
        SocketAddr::new(origin, ports::SIP),
        origin,
        7,
        120,
    );
    let gw = ServiceEntry::gateway(SocketAddr::new(origin, ports::TUNNEL), origin, 7, 60);
    (
        sip.to_wire().len(),
        sip.clone().signed(&kp).to_wire().len(),
        gw.to_wire().len(),
        gw.clone().signed(&kp).to_wire().len(),
    )
}

fn render_provenance(jobs: usize) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let cmd_line = |cmd: &str, args: &[&str]| -> String {
        std::process::Command::new(cmd)
            .args(args)
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    };
    let rustc = cmd_line("rustc", &["-V"]);
    let rev = cmd_line("git", &["rev-parse", "--short", "HEAD"]);
    format!(
        "  \"provenance\": {{\"cores\": {cores}, \"jobs\": {jobs}, \
         \"rustc\": \"{rustc}\", \"git_rev\": \"{rev}\"}},\n"
    )
}

struct Rates {
    hijack_off: f64,
    hijack_on: f64,
    rogue_off: f64,
    rogue_on: f64,
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    jobs: usize,
    seeds: usize,
    rates: &Rates,
    insecure_ms: &[f64],
    secure_ms: &[f64],
) -> String {
    let pct = |xs: &[f64], p: f64| siphoc_bench::percentile(xs, p).unwrap_or(f64::NAN);
    let (sip_u, sip_s, gw_u, gw_s) = advert_bytes();
    let mut out = String::from("{\n  \"bench\": \"exp_adversarial\",\n");
    out.push_str(&render_provenance(jobs));
    let _ = write!(
        out,
        "  \"attacks\": {{\n    \"aor_hijack\": {{\"defense_off_success\": {:.2}, \
         \"defense_on_success\": {:.2}, \"calls_per_run\": 3, \"seeds\": {seeds}}},\n    \
         \"rogue_gateway\": {{\"defense_off_success\": {:.2}, \
         \"defense_on_success\": {:.2}, \"seeds\": {seeds}}}\n  }},\n",
        rates.hijack_off, rates.hijack_on, rates.rogue_off, rates.rogue_on,
    );
    let _ = write!(
        out,
        "  \"ablation\": {{\n    \"setup_ms_insecure\": {{\"p50\": {:.2}, \"p95\": {:.2}, \
         \"p99\": {:.2}, \"n\": {}}},\n    \"setup_ms_secure\": {{\"p50\": {:.2}, \
         \"p95\": {:.2}, \"p99\": {:.2}, \"n\": {}}},\n    \
         \"advert_bytes\": {{\"sip_unsigned\": {sip_u}, \"sip_signed\": {sip_s}, \
         \"gateway_unsigned\": {gw_u}, \"gateway_signed\": {gw_s}}}\n  }}\n}}\n",
        pct(insecure_ms, 50.0),
        pct(insecure_ms, 95.0),
        pct(insecure_ms, 99.0),
        insecure_ms.len(),
        pct(secure_ms, 50.0),
        pct(secure_ms, 95.0),
        pct(secure_ms, 99.0),
        secure_ms.len(),
    );
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seeds: &[u64] = if smoke { &SEEDS[..1] } else { &SEEDS[..] };
    println!(
        "E12: adversarial faults vs PKI-less defenses ({} seed{})\n",
        seeds.len(),
        if seeds.len() == 1 { "" } else { "s" }
    );
    println!(
        "{:>6} {:>11} {:>6} {:>6} {:>9} {:>9} {:>7} {:>11}",
        "seed", "case", "calls", "est", "hijacked", "captured", "leases", "blackholed"
    );

    let variants = [
        Case::Hijack {
            secure: false,
            attack: true,
        },
        Case::Hijack {
            secure: true,
            attack: true,
        },
        Case::Rogue { secure: false },
        Case::Rogue { secure: true },
        Case::Hijack {
            secure: false,
            attack: false,
        },
        Case::Hijack {
            secure: true,
            attack: false,
        },
    ];
    let mut cases = Vec::new();
    for &seed in seeds {
        for &case in &variants {
            cases.push((seed, case));
        }
    }
    let results = siphoc_simnet::parallel::run_indexed(jobs, cases.len(), |i| {
        let (seed, case) = cases[i];
        run_case(seed, case)
    });

    // Per-variant tallies across seeds.
    let mut hijack_succ = [0usize; 2]; // [off, on] runs where the attack won
    let mut hijack_runs = [0usize; 2];
    let mut hijack_clean = [true; 2]; // defense-on: all calls established
    let mut rogue_succ = [0usize; 2];
    let mut rogue_runs = [0usize; 2];
    let mut rogue_rehomed_ok = true; // defense-on: survivor re-lease happened
    let mut setup_ms: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (&(seed, case), r) in cases.iter().zip(&results) {
        println!(
            "{seed:>6} {:>11} {:>6} {:>6} {:>9} {:>9} {:>7} {:>11}",
            case.label(),
            r.calls,
            r.established,
            r.hijacked,
            if matches!(case, Case::Rogue { .. }) {
                if r.captured {
                    "yes"
                } else {
                    "no"
                }
            } else {
                "-"
            },
            r.bogus_leases,
            r.blackholed,
        );
        let arm = |secure: bool| usize::from(secure);
        match case {
            Case::Hijack {
                secure,
                attack: true,
            } => {
                hijack_runs[arm(secure)] += 1;
                // The attack wins a run when every placed call was
                // swallowed by the blackhole and none established.
                if r.calls > 0 && r.hijacked as usize >= r.calls && r.established == 0 {
                    hijack_succ[arm(secure)] += 1;
                }
                if secure && (r.established < r.calls || r.hijacked > 0) {
                    hijack_clean[1] = false;
                }
            }
            Case::Rogue { secure } => {
                rogue_runs[arm(secure)] += 1;
                if r.captured {
                    rogue_succ[arm(secure)] += 1;
                }
                if secure && !r.rehomed {
                    rogue_rehomed_ok = false;
                }
            }
            Case::Hijack {
                secure,
                attack: false,
            } => {
                setup_ms[arm(secure)].extend_from_slice(&r.setup_ms);
            }
        }
    }
    let rate = |succ: usize, runs: usize| succ as f64 / runs.max(1) as f64;
    let rates = Rates {
        hijack_off: rate(hijack_succ[0], hijack_runs[0]),
        hijack_on: rate(hijack_succ[1], hijack_runs[1]),
        rogue_off: rate(rogue_succ[0], rogue_runs[0]),
        rogue_on: rate(rogue_succ[1], rogue_runs[1]),
    };
    let pct = |xs: &[f64], p: f64| siphoc_bench::percentile(xs, p).unwrap_or(f64::NAN);
    println!(
        "\naor hijack:    {:.0}% success defenses off, {:.0}% defenses on",
        rates.hijack_off * 100.0,
        rates.hijack_on * 100.0
    );
    println!(
        "rogue gateway: {:.0}% success defenses off, {:.0}% defenses on",
        rates.rogue_off * 100.0,
        rates.rogue_on * 100.0
    );
    let (sip_u, sip_s, gw_u, gw_s) = advert_bytes();
    println!(
        "setup delay:   insecure p50/p95/p99 {:.1}/{:.1}/{:.1} ms, secure {:.1}/{:.1}/{:.1} ms",
        pct(&setup_ms[0], 50.0),
        pct(&setup_ms[0], 95.0),
        pct(&setup_ms[0], 99.0),
        pct(&setup_ms[1], 50.0),
        pct(&setup_ms[1], 95.0),
        pct(&setup_ms[1], 99.0),
    );
    println!(
        "advert bytes:  sip {sip_u} -> {sip_s} (+{}), gateway {gw_u} -> {gw_s} (+{})",
        sip_s - sip_u,
        gw_s - gw_u
    );

    assert!(
        rates.hijack_off > 0.8,
        "AOR hijack succeeded on only {:.0}% of defense-off runs (need > 80%)",
        rates.hijack_off * 100.0
    );
    assert!(
        rates.hijack_on == 0.0,
        "AOR hijack succeeded on {:.0}% of defense-on runs (need 0%)",
        rates.hijack_on * 100.0
    );
    assert!(
        hijack_clean[1],
        "a defense-on hijack run lost calls — the defense must be transparent"
    );
    assert!(
        rates.rogue_off > 0.8,
        "rogue gateway captured only {:.0}% of defense-off runs (need > 80%)",
        rates.rogue_off * 100.0
    );
    assert!(
        rates.rogue_on == 0.0,
        "rogue gateway captured {:.0}% of defense-on runs (need 0%)",
        rates.rogue_on * 100.0
    );
    assert!(
        rogue_rehomed_ok,
        "a defense-on rogue run never re-homed to the surviving gateway"
    );
    assert!(
        !setup_ms[0].is_empty() && !setup_ms[1].is_empty(),
        "ablation runs produced no established calls"
    );

    if !smoke {
        let json = render_json(jobs, seeds.len(), &rates, &setup_ms[0], &setup_ms[1]);
        std::fs::write("results/BENCH_adversarial.json", &json).expect("write results");
        println!("\nwrote results/BENCH_adversarial.json");
    }
    println!("\nshape check: impersonation forgeries replace honest cache entries when");
    println!("nothing is verified, and die at cache-insert against identity pins;");
    println!("the signature layer costs bytes per advert, not call-setup latency.");
}
