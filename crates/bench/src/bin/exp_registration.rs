//! E7 — Registration propagation: how long until a new user's binding is
//! resolvable from across the network, per location service.
//!
//! A user registers at t=10 s on one corner of a 4×4 grid; the opposite
//! corner polls the binding through the local API every 250 ms. Reported
//! number: registration → first successful lookup.
//!
//! Expected shape: MANET SLP over AODV resolves on the first on-demand
//! query (sub-second); replicated services take until their next
//! gossip/refresh round (seconds, set by HELLO/TC/refresh intervals).
//! Run with `--release`.

use siphoc_bench::location::{add_location_node, LocationKind, LookupProbe};
use siphoc_bench::topology::SPACING;
use siphoc_simnet::prelude::*;

const SEEDS: [u64; 5] = [7701, 7702, 7703, 7704, 7705];
const REGISTER_AT: u64 = 10;
const POLL_MS: u64 = 250;
const SIDE: usize = 4;

fn run_one(seed: u64, kind: LocationKind) -> Option<f64> {
    let mut w = World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()));
    let mut ids = Vec::new();
    for i in 0..SIDE * SIDE {
        let x = (i % SIDE) as f64 * SPACING;
        let y = (i / SIDE) as f64 * SPACING;
        ids.push(add_location_node(&mut w, kind, x, y));
    }
    // Delayed registration through a scripted probe: register via a
    // lookup-probe that sends SrvReg at t=REGISTER_AT. The probe API
    // registers at start, so deploy the registering node's probe late by
    // scheduling the registration as a lookup-side effect is not possible;
    // instead run the world to t=REGISTER_AT, then spawn the registrar.
    w.run_for(SimDuration::from_secs(REGISTER_AT));
    let far = *ids.last().expect("nodes");
    let contact = SocketAddr::new(w.node(far).addr(), 5060);
    let (reg, _) = LookupProbe::new(Some(("newuser@v.ch".into(), contact)), Vec::new());
    w.spawn(far, Box::new(reg));

    // Poller on the near corner.
    let polls: Vec<(SimTime, String)> = (0..240)
        .map(|k| {
            (
                SimTime::from_secs(REGISTER_AT) + SimDuration::from_millis(50 + k * POLL_MS),
                "newuser@v.ch".to_owned(),
            )
        })
        .collect();
    let (probe, results) = LookupProbe::new(None, polls);
    w.spawn(ids[0], Box::new(probe));
    w.run_for(SimDuration::from_secs(75));

    let registered = SimTime::from_secs(REGISTER_AT);
    let r = results.borrow();
    r.iter()
        .find(|res| res.found)
        .map(|res| res.answered.saturating_since(registered).as_secs_f64())
}

fn main() {
    println!(
        "E7: registration propagation on a {SIDE}x{SIDE} grid ({} seeds, poll {POLL_MS} ms)\n",
        SEEDS.len()
    );
    println!("{:<18} {:>14} {:>8}", "service", "visible(s)", "misses");
    for kind in LocationKind::all() {
        let mut samples = Vec::new();
        let mut misses = 0;
        for seed in SEEDS {
            match run_one(seed, kind) {
                Some(s) => samples.push(s),
                None => misses += 1,
            }
        }
        match siphoc_bench::mean(&samples) {
            Some(m) => println!("{:<18} {:>14.2} {:>8}", kind.label(), m, misses),
            None => println!("{:<18} {:>14} {:>8}", kind.label(), "never", misses),
        }
    }
    println!("\nshape check: on-demand AODV resolves at first poll; replicated");
    println!("services wait for their gossip round (OLSR TC / refresh timers).");
}
