//! `exp_bench_core` — wall-clock benchmark of the simulator hot path.
//!
//! Unlike the `exp_*` experiments (which reproduce paper numbers inside
//! simulated time), this harness measures the *simulator itself*: how many
//! events per wall-clock second the core event loop sustains on fixed,
//! broadcast-heavy MANET workloads. Two scenario families, three sizes
//! each, all seeds fixed:
//!
//! * `bcast_N` — an N-node constant-density mesh where every node
//!   broadcasts a 64-byte beacon every 100 ms. Isolates the radio
//!   broadcast path (receiver discovery + loss sampling + delivery), the
//!   quadratic hot spot this harness exists to watch.
//! * `siphoc_N` — an N-node mesh running the full SIPHoc stack (AODV with
//!   SLP piggybacking) with staggered calls between user pairs. Measures
//!   the same hot path under realistic protocol traffic.
//!
//! Output: an aligned text table on stdout plus `results/BENCH_core.json`
//! (written with plain string formatting — no JSON dependency) recording
//! per scenario: node count, simulated seconds, wall-clock ms, events
//! dispatched, events/sec and peak RSS. Each scenario runs `--reps N`
//! times (default 3) and the table/JSON report the fastest repetition —
//! the minimum is the standard noise-robust wall-clock estimator; all
//! repetition times are kept in the JSON as `wall_ms_runs`. CI runs
//! `--smoke` (smallest mesh of each family only, one rep; failure means
//! panic, never a perf number).
//!
//! A third family, `city_N_tT`, runs the district/convoy/swarm city of
//! `siphoc_bench::city` under the sharded work-stealing executor at `T`
//! threads; the full sweep includes a 100 000-node city at 1/2/4/8
//! threads — the headline scaling curve. `--city100k-smoke` is the CI
//! canary for that path: a 4000-node city (big enough to actually
//! steal) at t1 and t2, asserting identical event counts and that
//! stealing engaged.
//!
//! `--check <baseline.json>` compares this run against a previously
//! recorded file: event counts must match exactly (they are
//! deterministic; a mismatch means the baseline is stale) and wall time
//! may regress by at most 20%, else the process exits non-zero. The
//! wall-time gate only applies when the baseline's `provenance` block
//! matches this machine (core count and CPU model); cross-machine
//! checks report wall-time overruns as warnings, because wall-clock
//! numbers from different hardware are not commensurable. The binary
//! also refuses to run if it was built with the `obs` feature compiled
//! into the simulator (pass `--allow-obs` to deliberately measure an
//! instrumented build).
//!
//! Run with `--release`; debug numbers are meaningless.

use std::fmt::Write as _;
use std::time::Instant;

use siphoc_bench::city::{build_city, CityParams};
use siphoc_bench::topology::bench_ua;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_simnet::prelude::*;
use siphoc_sip::uri::Aor;

const BCAST_SEED: u64 = 60_001;
const SIPHOC_SEED: u64 = 60_002;
const CITY_SEED: u64 = 60_003;
/// Node density: one node per (85 m)² keeps meshes connected w.h.p.
const CELL: f64 = 85.0;
const BEACON_PORT: u16 = 9900;
const BEACON_BYTES: usize = 64;
const BEACON_INTERVAL_MS: u64 = 100;

/// One measured scenario run.
struct Sample {
    name: String,
    nodes: usize,
    sim_secs: f64,
    /// Fastest repetition (see `wall_ms_runs` for every repetition).
    wall_ms: f64,
    wall_ms_runs: Vec<f64>,
    events: u64,
    radio_tx: u64,
    rss_peak_kb: u64,
    /// Worker threads used by the sharded executor (1 = plain loop).
    threads: usize,
    /// Events executed speculatively by cross-window work stealing
    /// (0 for single-thread runs and the non-city scenarios).
    steals: u64,
}

impl Sample {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return f64::NAN;
        }
        self.events as f64 / (self.wall_ms / 1000.0)
    }
}

/// Discards every datagram; binding the beacon port makes deliveries take
/// the full dispatch path (port lookup + process call) instead of being
/// dropped at the node boundary.
struct NullSink;

impl Process for NullSink {
    fn name(&self) -> &'static str {
        "bench-sink"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(BEACON_PORT);
    }
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: &Datagram) {}
}

/// Peak resident set size of this process in kB (Linux `VmHWM`; 0 where
/// unavailable). Monotonic over the process lifetime.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Jittered constant-density grid placement for node `i` of `n`.
fn mesh_position(i: usize, n: usize, rng: &mut SimRng) -> (f64, f64) {
    let side = (n as f64).sqrt() * CELL;
    let cols = (n as f64).sqrt().ceil() as usize;
    let x = (i % cols) as f64 * CELL + rng.range_f64(-20.0, 20.0);
    let y = (i / cols) as f64 * CELL + rng.range_f64(-20.0, 20.0);
    (x.clamp(0.0, side), y.clamp(0.0, side))
}

/// Pure broadcast-flood workload: every node beacons every 100 ms.
fn run_bcast(n: usize, sim_secs: u64) -> Sample {
    let mut w = World::new(WorldConfig::new(BCAST_SEED));
    let mut place_rng = SimRng::from_seed_and_stream(BCAST_SEED, 4242);
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let (x, y) = mesh_position(i, n, &mut place_rng);
        let id = w.add_node(NodeConfig::manet(x, y));
        w.spawn(id, Box::new(NullSink));
        ids.push(id);
    }
    let started = Instant::now();
    let total_ms = sim_secs * 1000;
    let mut t_ms = 0u64;
    while t_ms < total_ms {
        w.run_until(SimTime::from_millis(t_ms));
        for &id in &ids {
            let src = SocketAddr::new(w.node(id).addr(), BEACON_PORT);
            let dst = SocketAddr::new(Addr::BROADCAST, BEACON_PORT);
            w.inject(id, Datagram::new(src, dst, vec![0xB5u8; BEACON_BYTES]));
        }
        t_ms += BEACON_INTERVAL_MS;
    }
    w.run_until(SimTime::from_millis(total_ms));
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    Sample {
        name: format!("bcast_{n}"),
        nodes: n,
        sim_secs: sim_secs as f64,
        wall_ms,
        wall_ms_runs: vec![wall_ms],
        events: w.events_processed(),
        radio_tx: w.total_stats().get("radio.tx").packets,
        rss_peak_kb: peak_rss_kb(),
        threads: 1,
        steals: 0,
    }
}

/// Full-stack workload: AODV + MANET SLP piggybacking, staggered calls.
fn run_siphoc(n: usize, sim_secs: u64) -> Sample {
    let mut w = World::new(WorldConfig::new(SIPHOC_SEED));
    let mut place_rng = SimRng::from_seed_and_stream(SIPHOC_SEED, 4242);
    let users = (n / 10).max(4);
    for i in 0..n {
        let (x, y) = mesh_position(i, n, &mut place_rng);
        let mut spec = NodeSpec::relay(x, y).without_connection_provider();
        if i < users {
            let mut ua = bench_ua(&format!("u{i}"));
            if i % 2 == 0 && i + 1 < users {
                ua = ua.call_at(
                    SimTime::from_millis(5000 + (i as u64) * 500),
                    Aor::new(&format!("u{}", i + 1), "voicehoc.ch"),
                    SimDuration::from_secs(5),
                );
            }
            spec = spec.with_user(ua);
        }
        deploy(&mut w, spec);
    }
    let started = Instant::now();
    w.run_for(SimDuration::from_secs(sim_secs));
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    Sample {
        name: format!("siphoc_{n}"),
        nodes: n,
        sim_secs: sim_secs as f64,
        wall_ms,
        wall_ms_runs: vec![wall_ms],
        events: w.events_processed(),
        radio_tx: w.total_stats().get("radio.tx").packets,
        rss_peak_kb: peak_rss_kb(),
        threads: 1,
        steals: 0,
    }
}

/// City-scale workload for the sharded parallel executor: districts on a
/// coarse super-grid (independent conflict components), mobile convoys
/// and a dense emergency swarm, all beaconing on their own timers so the
/// whole run is one `run_until_threads` call. The same seed at any
/// thread count dispatches exactly the same events — `main` asserts it.
fn run_city(n: usize, sim_secs: u64, threads: usize) -> Sample {
    let mut w = World::new(WorldConfig::new(CITY_SEED));
    build_city(&mut w, CityParams::with_nodes(n));
    let started = Instant::now();
    w.run_until_threads(SimTime::from_secs(sim_secs), threads);
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let (par_w, seq_w) = w.window_counts();
    let (steal_w, steals) = w.steal_counts();
    eprintln!(
        "  city_{n} t{threads}: {par_w} parallel / {seq_w} sequential windows, \
         {steals} stolen events over {steal_w} windows"
    );
    Sample {
        name: format!("city_{n}_t{threads}"),
        nodes: n,
        sim_secs: sim_secs as f64,
        wall_ms,
        wall_ms_runs: vec![wall_ms],
        events: w.events_processed(),
        radio_tx: w.total_stats().get("radio.tx").packets,
        rss_peak_kb: peak_rss_kb(),
        threads,
        steals,
    }
}

/// Runs a scenario `reps` times and keeps the fastest repetition
/// (identical seeds mean identical event counts; only wall time varies).
fn best_of(reps: usize, run: impl Fn() -> Sample) -> Sample {
    let mut runs: Vec<Sample> = (0..reps.max(1)).map(|_| run()).collect();
    let wall_ms_runs: Vec<f64> = runs.iter().map(|s| s.wall_ms).collect();
    let best_idx = wall_ms_runs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least one repetition");
    let mut best = runs.swap_remove(best_idx);
    best.wall_ms_runs = wall_ms_runs;
    best
}

/// Hardware parallelism of the recording machine (0 where unknown).
fn current_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0)
}

/// CPU model string (Linux `/proc/cpuinfo` `model name`; "unknown"
/// elsewhere). Part of provenance so `--check` can tell whether a
/// baseline's wall-clock numbers were recorded on comparable hardware.
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Captures where the numbers came from: hardware parallelism, CPU
/// model, sweep concurrency, toolchain and source revision. Wall-clock
/// numbers are only comparable across runs with matching provenance.
fn render_provenance(jobs: usize) -> String {
    let cores = current_cores();
    let cpu = cpu_model();
    let cmd_line = |cmd: &str, args: &[&str]| -> String {
        std::process::Command::new(cmd)
            .args(args)
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    };
    let rustc = cmd_line("rustc", &["-V"]);
    let rev = cmd_line("git", &["rev-parse", "--short", "HEAD"]);
    format!(
        "  \"provenance\": {{\"cores\": {cores}, \"cpu\": \"{cpu}\", \"jobs\": {jobs}, \
         \"rustc\": \"{rustc}\", \"git_rev\": \"{rev}\"}},\n"
    )
}

fn render_json(samples: &[Sample], jobs: usize) -> String {
    let mut out = String::from("{\n  \"bench\": \"exp_bench_core\",\n");
    out.push_str(&render_provenance(jobs));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"nodes\": {}, \"sim_secs\": {:.1}, \"wall_ms\": {:.1}, \
             \"wall_ms_runs\": [{}], \"events\": {}, \"events_per_sec\": {:.0}, \
             \"radio_tx\": {}, \"rss_peak_kb\": {}, \"threads\": {}, \"steals\": {}}}",
            s.name,
            s.nodes,
            s.sim_secs,
            s.wall_ms,
            s.wall_ms_runs
                .iter()
                .map(|w| format!("{w:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            s.events,
            s.events_per_sec(),
            s.radio_tx,
            s.rss_peak_kb,
            s.threads,
            s.steals
        );
        out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"key": <number>` from a flat JSON object chunk. Keys are
/// matched with their trailing colon so `wall_ms` never matches
/// `wall_ms_runs` and `events` never matches `events_per_sec`.
fn json_num(chunk: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = chunk.find(&pat)? + pat.len();
    let rest = &chunk[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "value"` from a flat JSON object chunk. Values are
/// taken up to the next quote — good enough for the provenance strings
/// this harness writes (none contain escapes).
fn json_str<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let i = chunk.find(&pat)? + pat.len();
    let rest = &chunk[i..];
    rest.split('"').next()
}

/// Parses the scenario list out of a `render_json` document:
/// `(name, wall_ms, events)` per scenario. Hand-rolled for the same
/// reason `render_json` is: no JSON dependency in the bench binary.
fn parse_baseline(text: &str) -> Vec<(String, f64, u64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"name\":").skip(1) {
        let Some(name) = chunk.split('"').nth(1) else {
            continue;
        };
        let Some(wall_ms) = json_num(chunk, "wall_ms") else {
            continue;
        };
        let Some(events) = json_num(chunk, "events") else {
            continue;
        };
        out.push((name.to_owned(), wall_ms, events as u64));
    }
    out
}

/// Allowed wall-clock slowdown vs the baseline before `--check` fails.
const CHECK_THRESHOLD: f64 = 1.20;

/// Absolute grace added on top of the relative threshold. Smoke scenarios
/// finish in single-digit milliseconds, where scheduler noise alone
/// exceeds 20%; the floor absorbs that while leaving the relative
/// threshold in charge of every workload large enough to measure.
const CHECK_NOISE_FLOOR_MS: f64 = 50.0;

/// Compares this run against a checked-in baseline. Event counts are
/// deterministic and must match *exactly* — a mismatch means the workload
/// changed and the baseline is stale, which would make the wall-time
/// comparison meaningless. Wall time may regress by at most 20% — but
/// only when the baseline's `provenance` says it was recorded on this
/// machine class (same core count and CPU model). Wall-clock numbers
/// recorded elsewhere are not commensurable, so a cross-machine check
/// reports overruns as warnings instead of failing: the honest gate is
/// "event counts always, wall time only against your own hardware".
fn check_against_baseline(samples: &[Sample], path: &str) -> Result<Vec<String>, Vec<String>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return Err(vec![format!("cannot read baseline {path}: {e}")]),
    };
    let baseline = parse_baseline(&text);
    let base_cores = json_num(&text, "cores").map(|c| c as usize);
    let base_cpu = json_str(&text, "cpu");
    let same_machine =
        base_cores == Some(current_cores()) && base_cpu.is_none_or(|c| c == cpu_model());
    let mut failures = Vec::new();
    let mut report = Vec::new();
    if !same_machine {
        report.push(format!(
            "baseline provenance (cores: {}, cpu: {}) differs from this machine \
             (cores: {}, cpu: {}); wall-time overruns are WARNINGS, event counts still gate",
            base_cores.map_or("absent".to_owned(), |c| c.to_string()),
            base_cpu.unwrap_or("absent"),
            current_cores(),
            cpu_model()
        ));
    }
    for s in samples {
        let Some((_, base_wall, base_events)) =
            baseline.iter().find(|(name, _, _)| *name == s.name)
        else {
            failures.push(format!(
                "{}: not in baseline {path}; regenerate it (scripts/bench.sh --smoke --out {path})",
                s.name
            ));
            continue;
        };
        if s.events != *base_events {
            failures.push(format!(
                "{}: {} events vs {} in the baseline — the deterministic workload changed, \
                 regenerate the baseline before gating on wall time",
                s.name, s.events, base_events
            ));
            continue;
        }
        let limit = base_wall * CHECK_THRESHOLD + CHECK_NOISE_FLOOR_MS;
        let ratio = s.wall_ms / base_wall.max(f64::MIN_POSITIVE);
        if s.wall_ms > limit {
            let line = format!(
                "{}: {:.1} ms vs baseline {:.1} ms ({:+.0}%, limit {:.1} ms = +{:.0}% + {:.0} ms noise floor)",
                s.name,
                s.wall_ms,
                base_wall,
                (ratio - 1.0) * 100.0,
                limit,
                (CHECK_THRESHOLD - 1.0) * 100.0,
                CHECK_NOISE_FLOOR_MS
            );
            if same_machine {
                failures.push(line);
            } else {
                report.push(format!("WARN (cross-machine, not gating): {line}"));
            }
        } else {
            report.push(format!(
                "{}: {:.1} ms vs baseline {:.1} ms (limit {:.1} ms) — ok",
                s.name, s.wall_ms, base_wall, limit
            ));
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // CI canary for the work-stealing path: a city big enough that the
    // lookahead window actually steals (the 500-node smoke city is too
    // small for the conflict-cell exclusion margin), run at t1 and t2,
    // with the event-identity and stealing-engaged asserts below.
    let city100k_smoke = args.iter().any(|a| a == "--city100k-smoke");
    // Published numbers must measure the bare hot path: refuse to run if
    // this binary was built with observability compiled in (e.g. via a
    // whole-workspace build that unified the `obs` feature into simnet).
    if siphoc_simnet::obs_enabled() && !args.iter().any(|a| a == "--allow-obs") {
        eprintln!(
            "exp_bench_core: built with the `obs` feature enabled; numbers would not measure \
             the bare hot path. Build with `cargo build --release -p siphoc-bench` \
             (scripts/bench.sh does) or pass --allow-obs to measure an instrumented build."
        );
        std::process::exit(2);
    }
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke || city100k_smoke { 1 } else { 3 });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        // Smoke runs get their own default path so a CI canary never
        // clobbers the recorded full-sweep numbers.
        .unwrap_or_else(|| {
            if city100k_smoke {
                "results/BENCH_city100k_smoke.json".to_owned()
            } else if smoke {
                "results/BENCH_core_smoke.json".to_owned()
            } else {
                "results/BENCH_core.json".to_owned()
            }
        });

    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    // (size, simulated seconds) — the 1000-node points run shorter so a
    // full sweep stays in CI-friendly wall time even pre-optimization.
    let bcast_points: &[(usize, u64)] = if smoke {
        &[(50, 5)]
    } else if city100k_smoke {
        &[]
    } else {
        &[(50, 30), (200, 20), (1000, 10)]
    };
    let siphoc_points: &[(usize, u64)] = if smoke {
        &[(50, 5)]
    } else if city100k_smoke {
        &[]
    } else {
        &[(50, 30), (200, 20), (1000, 10)]
    };
    // (size, simulated seconds, sharded-executor threads). The same city
    // at several thread counts: t1 is the sequential reference, the
    // others measure the sharded speedup — and must dispatch identical
    // events. The 100k rows at 1/2/4/8 threads are the headline curve
    // for the work-stealing executor.
    let city_points: &[(usize, u64, usize)] = if smoke {
        &[(500, 2, 1), (500, 2, 2)]
    } else if city100k_smoke {
        &[(4_000, 1, 1), (4_000, 1, 2)]
    } else {
        &[
            (10_000, 3, 1),
            (10_000, 3, 2),
            (10_000, 3, 4),
            (100_000, 2, 1),
            (100_000, 2, 2),
            (100_000, 2, 4),
            (100_000, 2, 8),
        ]
    };

    println!(
        "BENCH core: simulator hot-path throughput{}\n",
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:<12} {:>6} {:>9} {:>10} {:>12} {:>13} {:>10} {:>12}",
        "scenario",
        "nodes",
        "sim(s)",
        "wall(ms)",
        "events",
        "events/sec",
        "radio.tx",
        "rss_peak_kb"
    );
    // One flat task list so `--jobs` can sweep scenarios concurrently
    // (results stay in declaration order). City points keep jobs=1
    // semantics anyway when run alone: with --jobs 1 (the default, and
    // what scripts/bench.sh uses for recorded numbers) everything runs
    // inline exactly as before.
    enum Point {
        Bcast(usize, u64),
        Siphoc(usize, u64),
        City(usize, u64, usize),
    }
    let mut points: Vec<Point> = Vec::new();
    points.extend(bcast_points.iter().map(|&(n, s)| Point::Bcast(n, s)));
    points.extend(siphoc_points.iter().map(|&(n, s)| Point::Siphoc(n, s)));
    points.extend(city_points.iter().map(|&(n, s, t)| Point::City(n, s, t)));
    let samples: Vec<Sample> =
        siphoc_simnet::parallel::run_indexed(jobs, points.len(), |i| match points[i] {
            Point::Bcast(n, secs) => best_of(reps, || run_bcast(n, secs)),
            Point::Siphoc(n, secs) => best_of(reps, || run_siphoc(n, secs)),
            Point::City(n, secs, threads) => best_of(reps, || run_city(n, secs, threads)),
        });
    for s in &samples {
        println!(
            "{:<12} {:>6} {:>9.1} {:>10.1} {:>12} {:>13.0} {:>10} {:>12}",
            s.name,
            s.nodes,
            s.sim_secs,
            s.wall_ms,
            s.events,
            s.events_per_sec(),
            s.radio_tx,
            s.rss_peak_kb
        );
    }

    // The sharded executor must be trace-equivalent: every city sample
    // of a given size has to dispatch exactly as many events as its
    // single-thread reference.
    for s in &samples {
        if s.threads <= 1 || !s.name.starts_with("city_") {
            continue;
        }
        let reference = samples
            .iter()
            .find(|r| r.name == format!("city_{}_t1", s.nodes))
            .expect("city sweeps always include a t1 reference");
        assert_eq!(
            s.events, reference.events,
            "{}: event count diverged from {} — the sharded executor broke determinism",
            s.name, reference.name
        );
    }
    // The city100k canary additionally requires that the work-stealing
    // path *engaged* — otherwise the identity assert above only pins the
    // barrier path and the canary is vacuous.
    if city100k_smoke {
        let stolen: u64 = samples
            .iter()
            .filter(|s| s.threads > 1)
            .map(|s| s.steals)
            .sum();
        assert!(
            stolen > 0,
            "city100k canary: work stealing never engaged on the multi-thread runs"
        );
        println!("\ncity100k canary ok: {stolen} stolen events, t1/t2 event counts identical");
    }

    let json = render_json(&samples, jobs);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\ncannot write {out_path}: {e}"),
    }

    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(base_path) = check_path {
        match check_against_baseline(&samples, &base_path) {
            Ok(report) => {
                println!("\nregression check vs {base_path}:");
                for line in report {
                    println!("  {line}");
                }
            }
            Err(failures) => {
                eprintln!("\nregression check vs {base_path} FAILED:");
                for line in failures {
                    eprintln!("  {line}");
                }
                std::process::exit(1);
            }
        }
    }
}
