//! A1 — Ablation: what exactly does piggybacking buy?
//!
//! Three variants of service dissemination over identical 4×4 AODV grids
//! with 6 registered users, measured over 120 quiet seconds plus one
//! cross-grid lookup:
//!
//! 1. **piggyback (throttled)** — SIPHoc as shipped: entries ride existing
//!    routing messages, unchanged entries re-attach at most every 8 s;
//! 2. **piggyback (unthrottled)** — entries ride *every* routing message
//!    (the naive reading of the paper's mechanism);
//! 3. **dedicated messages** — same information in standalone packets
//!    (the proactive-HELLO baseline at the same 8 s period).
//!
//! Reported: control payload bytes/node/s, extra *packets* on the air
//! versus the pure-routing baseline, and lookup latency. Run with
//! `--release`.

use std::cell::RefCell;
use std::rc::Rc;

use siphoc_bench::location::{LookupProbe, LookupResult};
use siphoc_bench::measure::control_bytes_per_node_second;
use siphoc_bench::topology::SPACING;
use siphoc_core::baselines::{BaselineConfig, ProactiveHello};
use siphoc_routing::aodv::{AodvConfig, AodvProcess};
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_slp::manet::{
    shared_registry, Dissemination, ManetSlpConfig, ManetSlpHandler, ManetSlpProcess,
};

const SEED: u64 = 8801;
const SIDE: usize = 4;
const USERS: usize = 6;
const MEASURE_SECS: u64 = 120;

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Throttled,
    Unthrottled,
    Dedicated,
}

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Throttled => "piggyback (8s throttle)",
            Variant::Unthrottled => "piggyback (unthrottled)",
            Variant::Dedicated => "dedicated messages",
        }
    }
}

fn build(world: &mut World, variant: Variant) -> Vec<NodeId> {
    let mut ids = Vec::new();
    for i in 0..SIDE * SIDE {
        let x = (i % SIDE) as f64 * SPACING;
        let y = (i / SIDE) as f64 * SPACING;
        let id = world.add_node(NodeConfig::manet(x, y));
        match variant {
            Variant::Throttled | Variant::Unthrottled => {
                let registry = shared_registry();
                let mut handler = ManetSlpHandler::new(registry.clone(), Dissemination::OnDemand);
                if variant == Variant::Unthrottled {
                    handler = handler.with_min_readvertise(SimDuration::ZERO);
                }
                let handler = Rc::new(RefCell::new(handler));
                world.spawn(
                    id,
                    Box::new(AodvProcess::new(AodvConfig::default()).with_handler(handler)),
                );
                world.spawn(
                    id,
                    Box::new(ManetSlpProcess::new(ManetSlpConfig::on_demand(), registry)),
                );
            }
            Variant::Dedicated => {
                world.spawn(id, Box::new(AodvProcess::new(AodvConfig::default())));
                let cfg = BaselineConfig {
                    refresh_interval: SimDuration::from_secs(8),
                    ..BaselineConfig::default()
                };
                world.spawn(id, Box::new(ProactiveHello::new(cfg)));
            }
        }
        ids.push(id);
    }
    ids
}

fn dedicated_packets(world: &World) -> u64 {
    let mut total = 0;
    for prefix in ["phello.", "slp_std.", "bcast_reg."] {
        total += siphoc_core::metrics::total_prefix(world, prefix).packets;
    }
    total
}

fn run(variant: Variant) -> (f64, u64, Option<LookupResult>) {
    let mut w = World::new(WorldConfig::new(SEED).with_radio(RadioConfig::ideal()));
    let ids = build(&mut w, variant);
    for (u, id) in ids.iter().enumerate().take(USERS) {
        let contact = SocketAddr::new(w.node(*id).addr(), 5060);
        let (reg, _) = LookupProbe::new(Some((format!("user{u}@v.ch"), contact)), Vec::new());
        w.spawn(*id, Box::new(reg));
    }
    // One lookup from the far corner for the user on the near corner.
    let (probe, results) = LookupProbe::new(
        None,
        vec![(SimTime::from_secs(60), "user0@v.ch".to_owned())],
    );
    w.spawn(*ids.last().expect("nodes"), Box::new(probe));
    w.run_for(SimDuration::from_secs(MEASURE_SECS));
    let bytes = control_bytes_per_node_second(&w, SimDuration::from_secs(MEASURE_SECS));
    let extra_packets = dedicated_packets(&w);
    let lookup = results.borrow().first().copied();
    (bytes, extra_packets, lookup)
}

fn main() {
    println!("A1: piggybacking ablation ({SIDE}x{SIDE} grid, {USERS} users, {MEASURE_SECS}s)\n");
    println!(
        "{:<26} {:>14} {:>16} {:>12}",
        "variant", "ctrl B/node/s", "extra packets", "lookup(ms)"
    );
    for variant in [Variant::Throttled, Variant::Unthrottled, Variant::Dedicated] {
        let (bytes, extra, lookup) = run(variant);
        let lookup_ms = lookup
            .filter(|l| l.found)
            .map(|l| format!("{:.2}", l.latency().as_millis_f64()))
            .unwrap_or_else(|| "miss".to_owned());
        println!(
            "{:<26} {:>14.1} {:>16} {:>12}",
            variant.label(),
            bytes,
            extra,
            lookup_ms
        );
    }
    println!("\nshape check: throttled piggyback has the lowest byte cost and ZERO");
    println!("extra packets; dedicated messages pay whole packets for the same data.");
}
