//! E3 — Control overhead vs network size and number of users.
//!
//! Measures on-air control bytes per node per second over a quiet 120 s
//! window (registrations present, no calls) for each location service.
//! SIPHoc's claim: piggybacking adds *bytes to existing packets* instead
//! of new packets, so its overhead tracks the routing protocol's own
//! baseline; the alternatives add packet floods or periodic dedicated
//! messages on top.
//!
//! Run with `--release`.

use siphoc_bench::location::{add_location_node, LocationKind, LookupProbe};
use siphoc_bench::measure::control_bytes_per_node_second;
use siphoc_bench::topology::SPACING;
use siphoc_simnet::prelude::*;

const SEED: u64 = 3301;
const MEASURE_SECS: u64 = 120;

fn run_one(side: usize, users: usize, kind: LocationKind) -> f64 {
    let mut w = World::new(WorldConfig::new(SEED).with_radio(RadioConfig::ideal()));
    let mut ids = Vec::new();
    for i in 0..side * side {
        let x = (i % side) as f64 * SPACING;
        let y = (i / side) as f64 * SPACING;
        ids.push(add_location_node(&mut w, kind, x, y));
    }
    for (u, id) in ids.iter().enumerate().take(users) {
        let contact = SocketAddr::new(w.node(*id).addr(), 5060);
        let (reg, _) = LookupProbe::new(Some((format!("user{u}@v.ch"), contact)), Vec::new());
        w.spawn(*id, Box::new(reg));
    }
    w.run_for(SimDuration::from_secs(MEASURE_SECS));
    control_bytes_per_node_second(&w, SimDuration::from_secs(MEASURE_SECS))
}

fn main() {
    println!("E3: control overhead (bytes/node/s), {MEASURE_SECS} s quiet network\n");

    println!("-- vs network size (4 users registered) --");
    print!("{:>7}", "nodes");
    for kind in LocationKind::all() {
        print!(" {:>16}", kind.label());
    }
    println!();
    for side in [2usize, 3, 4, 5] {
        print!("{:>7}", side * side);
        for kind in LocationKind::all() {
            print!(" {:>16.1}", run_one(side, 4, kind));
        }
        println!();
    }

    println!("\n-- vs registered users (16 nodes) --");
    print!("{:>7}", "users");
    for kind in LocationKind::all() {
        print!(" {:>16}", kind.label());
    }
    println!();
    for users in [0usize, 2, 4, 8, 16] {
        print!("{:>7}", users);
        for kind in LocationKind::all() {
            print!(" {:>16.1}", run_one(4, users, kind));
        }
        println!();
    }
    println!("\nshape check: manet-slp tracks its routing baseline (row users=0);");
    println!("bcast/phello/standard add dedicated traffic growing with users.");
}
