//! T1 — Provider interoperability matrix (paper §3.2).
//!
//! "We have tested this feature with three different SIP providers,
//! siphoc.ch, netvoip.ch and polyphone.ethz.ch. Typically, SIP providers
//! have their SIP proxy running on the domain they assign the SIP
//! addresses from. If that is the case (as for siphoc.ch and netvoip.ch),
//! one can make phone calls to and from the Internet without a problem.
//! However, a problem occurs if the SIP provider requires a special
//! outbound proxy to be set in the VoIP configuration (as for
//! polyphone.ethz.ch)."
//!
//! For each provider, a MANET user two hops from the gateway attempts an
//! outbound call to an Internet user of that provider and receives an
//! inbound call back. Run with `--release`.

use siphoc_bench::measure::call_measurement;
use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_internet::dns::DnsDirectory;
use siphoc_internet::provider::{ProviderConfig, SipProviderProcess};
use siphoc_media::session::{MediaConfig, MediaProcess};
use siphoc_simnet::net::ports;
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{CallEvent, UaConfig, UserAgent};
use siphoc_sip::uri::Aor;

struct Provider {
    domain: &'static str,
    addr: Addr,
    /// Whether the provider's proxy is reachable via its domain (false =
    /// the polyphone case: needs a provider-specific outbound proxy).
    reachable_via_domain: bool,
}

fn run_provider(p: &Provider) -> (bool, bool) {
    let mut w = World::new(WorldConfig::new(9301).with_radio(RadioConfig::ideal()));
    let mut dns = DnsDirectory::new();
    if p.reachable_via_domain {
        dns.insert(p.domain, p.addr);
    }
    let pn = w.add_node(NodeConfig::wired(p.addr));
    w.spawn(
        pn,
        Box::new(SipProviderProcess::new(ProviderConfig::new(
            p.domain,
            dns.clone(),
        ))),
    );

    // Internet-side user of this provider; calls the MANET user at t=60.
    let iris_node = w.add_node(NodeConfig::wired(Addr::new(82, 9, 9, 9)));
    let iris_cfg = UaConfig::new(
        Aor::new("iris", p.domain),
        SocketAddr::new(p.addr, ports::SIP),
    )
    .call_at(
        SimTime::from_secs(60),
        Aor::new("alice", p.domain),
        SimDuration::from_secs(5),
    );
    let (iris, iris_log) = UserAgent::new(iris_cfg);
    w.spawn(iris_node, Box::new(iris));
    let (im, _) = MediaProcess::new(MediaConfig::pcmu(8000));
    w.spawn(iris_node, Box::new(im));

    // MANET: gateway, relay, alice (provider account: this domain).
    deploy(
        &mut w,
        NodeSpec::relay(0.0, 0.0)
            .with_gateway(Addr::new(82, 130, 64, 1))
            .with_dns(dns.clone()),
    );
    deploy(&mut w, NodeSpec::relay(60.0, 0.0).with_dns(dns.clone()));
    let alice_ua = VoipAppConfig::fig2("alice", p.domain)
        .to_ua_config()
        .expect("config resolves")
        .call_at(
            SimTime::from_secs(25),
            Aor::new("iris", p.domain),
            SimDuration::from_secs(5),
        );
    let alice = deploy(
        &mut w,
        NodeSpec::relay(120.0, 0.0)
            .with_dns(dns)
            .with_user(alice_ua),
    );

    w.run_for(SimDuration::from_secs(90));
    let outbound_ok = call_measurement(&alice, 0).setup.is_some();
    let inbound_ok = iris_log
        .borrow()
        .any(|e| matches!(e, CallEvent::Established { .. }));
    (outbound_ok, inbound_ok)
}

fn main() {
    let providers = [
        Provider {
            domain: "siphoc.ch",
            addr: Addr(0x52010101),
            reachable_via_domain: true,
        },
        Provider {
            domain: "netvoip.ch",
            addr: Addr(0x52020202),
            reachable_via_domain: true,
        },
        Provider {
            domain: "polyphone.ethz.ch",
            addr: Addr(0x52030303),
            reachable_via_domain: false,
        },
    ];
    println!("T1: provider interoperability (MANET user, 2 hops from gateway)\n");
    println!("{:<20} {:>10} {:>10}", "provider", "outbound", "inbound");
    let mut rows = Vec::new();
    for p in &providers {
        let (out_ok, in_ok) = run_provider(p);
        println!(
            "{:<20} {:>10} {:>10}",
            p.domain,
            if out_ok { "OK" } else { "FAIL" },
            if in_ok { "OK" } else { "FAIL" }
        );
        rows.push((p.domain, out_ok, in_ok));
    }
    println!("\npaper's result: siphoc.ch OK, netvoip.ch OK, polyphone.ethz.ch");
    println!("fails (special outbound proxy overwritten by SIPHoc — open issue).");
    assert_eq!(rows[0], ("siphoc.ch", true, true));
    assert_eq!(rows[1], ("netvoip.ch", true, true));
    assert_eq!(rows[2], ("polyphone.ethz.ch", false, false));
    println!("matrix matches the paper.");
}
