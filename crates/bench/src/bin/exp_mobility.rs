//! E4 — Call setup success rate vs mobility.
//!
//! 16 SIPHoc nodes move by random waypoint in a 300×300 m area; eight of
//! them place calls at staggered times while everything moves. Swept over
//! maximum node speed (0 = static control). Reported: fraction of
//! attempted calls established within a 10 s deadline, and mean MOS of
//! sessions that carried any media.
//!
//! Expected shape: among the mobile sweeps, success-within-deadline and
//! MOS decline as speed grows (link churn outpaces AODV repair). The
//! static control (speed 0) is *not* an upper bound: uniformly scattered
//! static nodes keep whatever chronically lossy links the placement drew,
//! while mobile nodes average their link quality over time — a known
//! random-topology artifact worth seeing in the data. Run with
//! `--release`.

use siphoc_bench::measure::call_measurement;
use siphoc_bench::topology::{bench_ua, waypoint};
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_simnet::mobility::Area;
use siphoc_simnet::prelude::*;
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 4] = [4401, 4402, 4403, 4404];
const N: usize = 20;
const AREA_W: f64 = 350.0;
const AREA_H: f64 = 250.0;
const SPEEDS: [f64; 5] = [0.0, 1.5, 5.0, 10.0, 15.0];
/// A call counts as successful when it establishes within this deadline —
/// callers do not wait out the full 32 s SIP timeout in practice.
const SETUP_DEADLINE: SimDuration = SimDuration::from_secs(10);

fn run_one(seed: u64, speed: f64) -> (usize, usize, Vec<f64>) {
    let mut w = World::new(WorldConfig::new(seed)); // typical lossy radio
    let area = Area::new(AREA_W, AREA_H);
    let mut rng = SimRng::from_seed_and_stream(seed, 999);
    let mut nodes = Vec::new();
    for i in 0..N {
        let pos = area.sample(&mut rng);
        let mut spec = NodeSpec::relay(pos.0, pos.1).without_connection_provider();
        if speed > 0.0 {
            spec = spec.with_mobility(waypoint(
                seed,
                i as u64,
                area,
                (speed / 3.0).max(0.5),
                speed,
                2,
            ));
        }
        // Users on the first 8 nodes; even ones call odd ones.
        if i < 8 {
            let mut ua = bench_ua(&format!("u{i}"));
            if i % 2 == 0 {
                ua = ua.call_at(
                    SimTime::from_secs(30 + i as u64 * 10),
                    Aor::new(&format!("u{}", i + 1), "voicehoc.ch"),
                    SimDuration::from_secs(20),
                );
            }
            spec = spec.with_user(ua);
        }
        nodes.push(deploy(&mut w, spec));
    }
    w.run_for(SimDuration::from_secs(140));

    let mut attempted = 0;
    let mut established = 0;
    let mut mos = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if i < 8 && i % 2 == 0 {
            attempted += 1;
            let m = call_measurement(node, 0);
            if m.setup.map(|s| s <= SETUP_DEADLINE).unwrap_or(false) {
                established += 1;
            }
            for r in node.media_reports.as_ref().expect("media").borrow().iter() {
                if r.received > 0 {
                    mos.push(r.quality.mos);
                }
            }
        }
    }
    (attempted, established, mos)
}

fn main() {
    println!(
        "E4: call success under mobility ({} nodes, {} seeds per speed)\n",
        N,
        SEEDS.len()
    );
    println!(
        "{:>11} {:>10} {:>12} {:>10}",
        "speed(m/s)", "attempts", "success(%)", "meanMOS"
    );
    for speed in SPEEDS {
        let mut att = 0;
        let mut est = 0;
        let mut mos = Vec::new();
        for seed in SEEDS {
            let (a, e, m) = run_one(seed, speed);
            att += a;
            est += e;
            mos.extend(m);
        }
        let rate = 100.0 * est as f64 / att.max(1) as f64;
        let mean_mos = siphoc_bench::mean(&mos).unwrap_or(f64::NAN);
        println!("{speed:>11.1} {att:>10} {rate:>12.0} {mean_mos:>10.2}");
    }
    println!("\nshape check: among mobile sweeps (speed > 0), success and MOS");
    println!("decline as speed grows; the static control reflects placement luck.");
}
