//! A2 — Radio-model ablation: does shared-channel contention change the
//! experiment shapes?
//!
//! `DESIGN.md` records the simplification that senders contend only
//! through their own transmit queues. This ablation re-runs the E6 voice
//! quality sweep with carrier sensing enabled (nodes defer while any
//! in-range node transmits) and compares. If the shapes agree, the
//! simplification is harmless at paper-scale traffic; where they diverge
//! (heavy load) the contention model is the honest one.
//!
//! Run with `--release`.

use siphoc_bench::topology::{bench_ua, siphoc_chain, SPACING};
use siphoc_core::nodesetup::RoutingProtocol;
use siphoc_simnet::prelude::*;
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 3] = [8811, 8812, 8813];

fn run_call(seed: u64, hops: usize, carrier_sense: bool) -> Option<(f64, f64)> {
    let radio = RadioConfig {
        carrier_sense,
        ..RadioConfig::default_80211b()
    };
    let mut w = World::new(WorldConfig::new(seed).with_radio(radio));
    let nodes = siphoc_chain(&mut w, hops + 1, &RoutingProtocol::aodv(), &[(hops, "bob")]);
    let _ = &nodes;
    let ua = bench_ua("alice").call_at(
        SimTime::from_secs(10),
        Aor::new("bob", "voicehoc.ch"),
        SimDuration::from_secs(20),
    );
    let caller = siphoc_core::nodesetup::deploy(
        &mut w,
        siphoc_core::nodesetup::NodeSpec::relay(0.0, SPACING)
            .without_connection_provider()
            .with_user(ua),
    );
    w.run_for(SimDuration::from_secs(40));
    let reports = caller.media_reports.as_ref().expect("media").borrow();
    let r = reports.first()?;
    if r.received == 0 {
        return None;
    }
    Some((r.loss_fraction * 100.0, r.quality.mos))
}

fn main() {
    println!(
        "A2: carrier-sense ablation, voice quality vs hops ({} seeds)\n",
        SEEDS.len()
    );
    println!(
        "{:>5} {:>14} {:>10} {:>14} {:>10}",
        "hops", "loss% (queue)", "MOS", "loss% (CSMA)", "MOS"
    );
    for hops in [1usize, 2, 4, 6] {
        let mut row = Vec::new();
        for cs in [false, true] {
            let mut loss = Vec::new();
            let mut mos = Vec::new();
            for seed in SEEDS {
                if let Some((l, m)) = run_call(seed, hops, cs) {
                    loss.push(l);
                    mos.push(m);
                }
            }
            row.push((
                siphoc_bench::mean(&loss).unwrap_or(f64::NAN),
                siphoc_bench::mean(&mos).unwrap_or(f64::NAN),
            ));
        }
        println!(
            "{hops:>5} {:>14.2} {:>10.2} {:>14.2} {:>10.2}",
            row[0].0, row[0].1, row[1].0, row[1].1
        );
    }
    println!("\nshape check: at one 64 kb/s call the two radio models agree —");
    println!("the DESIGN.md simplification holds at paper-scale traffic.");
}
