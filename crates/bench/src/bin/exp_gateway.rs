//! E5 — Internet integration cost vs distance to the gateway.
//!
//! A chain MANET with the gateway at one end; the measured node sits
//! 1–5 hops away. Reported per distance:
//!
//! * gateway discovery + tunnel establishment time (Connection Provider
//!   start → lease held),
//! * provider registration time (node start → REGISTER visible at the
//!   provider, measured at the caller as its first possible call),
//! * Internet call setup time (INVITE → Established to an Internet UA).
//!
//! Expected shape: tunnel establishment grows mildly with hops on top of
//! the Connection Provider's 0–5 s probe jitter. Call setup carries a
//! large constant: the proxy only falls through to the Internet after the
//! MANET SLP lookup exhausts its retries (~2.4 s with defaults) — the
//! price of "MANET first, Internet second" resolution — plus per-hop
//! forwarding. Run with `--release`.

use siphoc_bench::measure::call_measurement;
use siphoc_core::config::VoipAppConfig;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_internet::dns::DnsDirectory;
use siphoc_internet::provider::{ProviderConfig, SipProviderProcess};
use siphoc_media::session::{MediaConfig, MediaProcess};
use siphoc_simnet::net::ports;
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::{UaConfig, UserAgent};
use siphoc_sip::uri::Aor;

const SEEDS: [u64; 5] = [5501, 5502, 5503, 5504, 5505];
const PROVIDER: Addr = Addr(0x52010101);
const GW_PUB: Addr = Addr(0x52824001);

fn run_one(seed: u64, hops: usize) -> Option<(f64, f64)> {
    let mut w = World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()));
    let dns = DnsDirectory::new().with_record("voicehoc.ch", PROVIDER);
    let p = w.add_node(NodeConfig::wired(PROVIDER));
    w.spawn(
        p,
        Box::new(SipProviderProcess::new(ProviderConfig::new(
            "voicehoc.ch",
            dns.clone(),
        ))),
    );
    let iris_node = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 50)));
    let (iris, _ilog) = UserAgent::new(UaConfig::new(
        Aor::new("iris", "voicehoc.ch"),
        SocketAddr::new(PROVIDER, ports::SIP),
    ));
    w.spawn(iris_node, Box::new(iris));
    let (im, _) = MediaProcess::new(MediaConfig::pcmu(8000));
    w.spawn(iris_node, Box::new(im));

    // Gateway at x=0; relays; measured node `hops` away.
    let gw = deploy(
        &mut w,
        NodeSpec::relay(0.0, 0.0)
            .with_gateway(GW_PUB)
            .with_dns(dns.clone()),
    );
    for i in 1..hops {
        deploy(
            &mut w,
            NodeSpec::relay(i as f64 * 60.0, 0.0).with_dns(dns.clone()),
        );
    }
    let mut ua = VoipAppConfig::fig2("alice", "voicehoc.ch")
        .to_ua_config()
        .expect("config");
    ua.answer_delay = SimDuration::ZERO;
    let ua = ua.call_at(
        SimTime::from_secs(30),
        Aor::new("iris", "voicehoc.ch"),
        SimDuration::from_secs(5),
    );
    let alice = deploy(
        &mut w,
        NodeSpec::relay(hops as f64 * 60.0, 0.0)
            .with_dns(dns)
            .with_user(ua),
    );

    // Tunnel establishment time: when alice's node gains its leased
    // public alias.
    let _ = gw;
    let mut tunnel_at = None;
    for step in 0..300 {
        w.run_for(SimDuration::from_millis(100));
        if w.node(alice.id).local_addrs().len() > 1 {
            tunnel_at = Some(SimTime::from_millis(100 * (step + 1)));
            break;
        }
    }
    let tunnel_s = tunnel_at?.as_secs_f64();
    w.run_until(SimTime::from_secs(60));
    let m = call_measurement(&alice, 0);
    let setup_ms = m.setup?.as_millis_f64();
    Some((tunnel_s, setup_ms))
}

fn main() {
    println!(
        "E5: Internet integration vs hops to gateway ({} seeds per point)\n",
        SEEDS.len()
    );
    println!(
        "{:>5} {:>16} {:>18}",
        "hops", "tunnel-up (s)", "call-setup (ms)"
    );
    for hops in 1..=5usize {
        let mut tunnel = Vec::new();
        let mut setup = Vec::new();
        for seed in SEEDS {
            if let Some((t, s)) = run_one(seed, hops) {
                tunnel.push(t);
                setup.push(s);
            }
        }
        println!(
            "{hops:>5} {:>16.2} {:>18.1}",
            siphoc_bench::mean(&tunnel).unwrap_or(f64::NAN),
            siphoc_bench::mean(&setup).unwrap_or(f64::NAN)
        );
    }
    println!("\nshape check: both grow with hops; tunnel-up is dominated by the");
    println!("Connection Provider's probe jitter (0–5 s) plus one flood round.");
}
