//! F3 — The paper's Fig. 3 call-setup walkthrough, with timings.
//!
//! Reconstructs the eight numbered steps of "how a call between two users
//! in an ad hoc network is established" from the packet trace of a real
//! run (3-hop chain, AODV), and prints when each step happened:
//!
//! 1/3. the applications register with their local proxies,
//! 2/4. the proxies advertise the users via MANET SLP,
//! 5.   the caller's INVITE reaches its local proxy,
//! 6.   the proxy consults MANET SLP (service query on the routing layer),
//! 7.   the resolved INVITE is forwarded to the responsible remote proxy,
//! 8.   the remote proxy delivers it to the callee's application.
//!
//! Run with `--release`.

use siphoc_bench::topology::bench_ua;
use siphoc_core::nodesetup::{deploy, NodeSpec};
use siphoc_simnet::prelude::*;
use siphoc_simnet::trace::TraceKind;
use siphoc_sip::uri::Aor;

fn main() {
    let mut w = World::new(WorldConfig::new(333).with_radio(RadioConfig::ideal()));
    w.trace_mut().set_enabled(true);

    let alice_ua = bench_ua("alice").call_at(
        SimTime::from_secs(2),
        Aor::new("bob", "voicehoc.ch"),
        SimDuration::from_secs(3),
    );
    let alice = deploy(
        &mut w,
        NodeSpec::relay(0.0, 0.0)
            .without_connection_provider()
            .with_user(alice_ua),
    );
    deploy(
        &mut w,
        NodeSpec::relay(60.0, 0.0).without_connection_provider(),
    );
    deploy(
        &mut w,
        NodeSpec::relay(120.0, 0.0).without_connection_provider(),
    );
    let bob = deploy(
        &mut w,
        NodeSpec::relay(180.0, 0.0)
            .without_connection_provider()
            .with_user(bench_ua("bob")),
    );
    w.run_for(SimDuration::from_secs(8));

    let entries: Vec<_> = w.trace().entries().collect();
    let text = |e: &siphoc_simnet::trace::TraceEntry| {
        String::from_utf8_lossy(&e.dgram.payload).into_owned()
    };

    let find = |what: &str, pred: &dyn Fn(&siphoc_simnet::trace::TraceEntry) -> bool| {
        let hit = entries.iter().find(|e| pred(e));
        match hit {
            Some(e) => println!("  {:>10}  {what}", e.time.to_string()),
            None => println!("  {:>10}  {what}  ** NOT OBSERVED **", "-"),
        }
        hit.map(|e| e.time)
    };

    println!("F3: Fig. 3 steps, reconstructed from the packet trace\n");
    let s1 = find("step 1: alice's REGISTER reaches her local proxy", &|e| {
        e.kind == TraceKind::Loopback && e.node == alice.id && text(e).starts_with("REGISTER")
    });
    let s2 = find("step 2: alice's proxy advertises her via MANET SLP", &|e| {
        e.kind == TraceKind::Loopback && e.node == alice.id && text(e).starts_with("SRVREG")
    });
    let s3 = find("step 3: bob's REGISTER reaches his local proxy", &|e| {
        e.kind == TraceKind::Loopback && e.node == bob.id && text(e).starts_with("REGISTER")
    });
    let s4 = find("step 4: bob's proxy advertises him via MANET SLP", &|e| {
        e.kind == TraceKind::Loopback && e.node == bob.id && text(e).starts_with("SRVREG")
    });
    let s5 = find("step 5: alice's INVITE reaches her local proxy", &|e| {
        e.kind == TraceKind::Loopback && e.node == alice.id && text(e).starts_with("INVITE")
    });
    let s6 = find("step 6: proxy consults MANET SLP (SRVRQST)", &|e| {
        e.kind == TraceKind::Loopback && e.node == alice.id && text(e).starts_with("SRVRQST")
    });
    let s6b = find(
        "        ... resolved on the routing layer (service RREP arrives)",
        &|e| {
            e.kind == TraceKind::RadioRx
                && e.node == alice.id
                && e.dgram.dst.port == 654
                && text(e).contains("bob@voicehoc.ch")
        },
    );
    let s7 = find("step 7: INVITE forwarded to bob's proxy (on air)", &|e| {
        e.kind == TraceKind::RadioTx && e.node == alice.id && text(e).starts_with("INVITE")
    });
    let s8 = find(
        "step 8: bob's proxy delivers the INVITE to his application",
        &|e| {
            e.kind == TraceKind::Loopback
                && e.node == bob.id
                && text(e).starts_with("INVITE")
                && e.dgram.dst.port == 5070
        },
    );

    for (name, t) in [
        ("s1", s1),
        ("s2", s2),
        ("s3", s3),
        ("s4", s4),
        ("s5", s5),
        ("s6", s6),
        ("s6-resolve", s6b),
        ("s7", s7),
        ("s8", s8),
    ] {
        assert!(t.is_some(), "{name} must be observable in the trace");
    }
    let resolve = s6b.expect("checked").saturating_since(s6.expect("checked"));
    let total = s8.expect("checked").saturating_since(s5.expect("checked"));
    println!("\nSLP resolution took {resolve}; proxy-to-application delivery {total} end to end.");
}
