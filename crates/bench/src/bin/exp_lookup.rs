//! E2 — Lookup delay of the location-service alternatives vs network size.
//!
//! A user registered on one corner of a grid is looked up from the
//! opposite corner, for every location service behind the common
//! `127.0.0.1:427` API:
//!
//! * MANET SLP over AODV — on-demand query piggybacked on a service RREQ;
//! * MANET SLP over OLSR — proactive replication, local lookup;
//! * standard SLP — multicast convergence flood + unicast reply (which
//!   itself needs an AODV route discovery);
//! * broadcast-REGISTER and proactive-HELLO baselines — replicated, local.
//!
//! Expected shape: replicated services answer in microseconds (if the
//! replica converged); MANET SLP/AODV pays one flood round trip growing
//! with diameter; standard SLP pays the flood *plus* a reverse route
//! discovery and its convergence timers — the paper's "very inefficient
//! in MANETs" claim, measured. Run with `--release`.

use siphoc_bench::location::{add_location_node, LocationKind, LookupProbe};
use siphoc_bench::topology::SPACING;
use siphoc_simnet::prelude::*;

const SEEDS: [u64; 5] = [2201, 2202, 2203, 2204, 2205];
const SIDES: [usize; 4] = [2, 3, 4, 5]; // 4..25 nodes

fn run_one(seed: u64, side: usize, kind: LocationKind) -> Option<(f64, bool)> {
    let mut w = World::new(WorldConfig::new(seed).with_radio(RadioConfig::ideal()));
    let mut ids = Vec::new();
    for i in 0..side * side {
        let x = (i % side) as f64 * SPACING;
        let y = (i / side) as f64 * SPACING;
        ids.push(add_location_node(&mut w, kind, x, y));
    }
    // Register bob on the far corner at t≈0.
    let (reg, _) = LookupProbe::new(
        Some((
            "bob@v.ch".into(),
            SocketAddr::new(w.node(*ids.last().expect("nodes")).addr(), 5060),
        )),
        Vec::new(),
    );
    w.spawn(*ids.last().expect("nodes"), Box::new(reg));
    // Look up from the near corner after the replicated services have had
    // time to converge (30 s covers OLSR TC and baseline refresh periods).
    let (probe, results) =
        LookupProbe::new(None, vec![(SimTime::from_secs(30), "bob@v.ch".into())]);
    w.spawn(ids[0], Box::new(probe));
    w.run_for(SimDuration::from_secs(45));
    let r = results.borrow();
    let first = r.first()?;
    Some((first.latency().as_millis_f64(), first.found))
}

fn main() {
    println!(
        "E2: lookup delay vs network size ({} seeds per point)\n",
        SEEDS.len()
    );
    print!("{:>7}", "nodes");
    for kind in LocationKind::all() {
        print!(" {:>16}", kind.label());
    }
    println!("\n{:>7} (mean ms; '!' marks runs with misses)", "");
    for side in SIDES {
        print!("{:>7}", side * side);
        for kind in LocationKind::all() {
            let mut samples = Vec::new();
            let mut misses = 0;
            for seed in SEEDS {
                match run_one(seed, side, kind) {
                    Some((ms, true)) => samples.push(ms),
                    Some((_, false)) => misses += 1,
                    None => misses += 1,
                }
            }
            match siphoc_bench::mean(&samples) {
                Some(m) => {
                    let mark = if misses > 0 { "!" } else { "" };
                    print!(" {:>15.2}{}", m, if mark.is_empty() { " " } else { mark });
                }
                None => print!(" {:>16}", "miss"),
            }
        }
        println!();
    }
    println!("\nshape check: manet-slp/aodv grows mildly with diameter;");
    println!("replicated services are near-instant; standard-slp is slowest.");
}
