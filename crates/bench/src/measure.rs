//! Measurement helpers: call setup latency, registration propagation,
//! control-overhead accounting.

use siphoc_core::nodesetup::SiphocNode;
use siphoc_simnet::prelude::*;
use siphoc_sip::ua::CallEvent;

/// Outcome of one measured call attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallMeasurement {
    /// INVITE sent → Established at the caller; `None` if never
    /// established.
    pub setup: Option<SimDuration>,
    /// Whether the call failed with a final error or timeout.
    pub failed: bool,
}

/// Extracts the `k`-th call attempt measurement from a caller's log.
pub fn call_measurement(node: &SiphocNode, k: usize) -> CallMeasurement {
    let log = node.ua_logs[0].borrow();
    let placed: Vec<SimTime> = log
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, CallEvent::OutgoingCall { .. }))
        .map(|(t, _)| *t)
        .collect();
    let Some(&placed_at) = placed.get(k) else {
        return CallMeasurement {
            setup: None,
            failed: true,
        };
    };
    let window_end = placed.get(k + 1).copied().unwrap_or(SimTime::MAX);
    let established = log
        .events()
        .iter()
        .find(|(t, e)| {
            *t >= placed_at && *t < window_end && matches!(e, CallEvent::Established { .. })
        })
        .map(|(t, _)| *t);
    let failed = log
        .events()
        .iter()
        .any(|(t, e)| *t >= placed_at && *t < window_end && matches!(e, CallEvent::Failed { .. }));
    CallMeasurement {
        setup: established.map(|t| t - placed_at),
        failed,
    }
}

/// Sums the on-air control bytes of a world: routing control traffic plus
/// any dedicated location-service traffic (standard SLP floods, broadcast
/// registrations, proactive hellos).
pub fn control_bytes(world: &World) -> u64 {
    let mut total = 0u64;
    for prefix in ["aodv.", "olsr.", "slp_std.", "bcast_reg.", "phello."] {
        let c = siphoc_core::metrics::total_prefix(world, prefix);
        total += c.bytes;
    }
    // Piggyback bytes are already inside aodv./olsr. message counters;
    // subtract the lookup-accounting counters that are not on-air.
    for non_air in [
        "slp.lookup_hit",
        "slp.lookup_miss",
        "slp.lookup_failed",
        "slp.query_flood",
    ] {
        total = total.saturating_sub(siphoc_core::metrics::total_counter(world, non_air).bytes);
    }
    total
}

/// Control bytes per node per second over a run of `duration`.
pub fn control_bytes_per_node_second(world: &World, duration: SimDuration) -> f64 {
    let n = world
        .node_ids()
        .iter()
        .filter(|id| world.node(**id).has_radio())
        .count()
        .max(1);
    control_bytes(world) as f64 / n as f64 / duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ideal_world, siphoc_chain};
    use siphoc_core::nodesetup::RoutingProtocol;
    use siphoc_sip::uri::Aor;

    #[test]
    fn call_measurement_extracts_setup_time() {
        let mut w = ideal_world(9);
        let mut nodes = siphoc_chain(&mut w, 2, &RoutingProtocol::aodv(), &[(0, "a"), (1, "b")]);
        // Schedule a's call by rebuilding its UA config is awkward here;
        // instead use the log-based extraction on a scripted deployment.
        let _ = &mut nodes;
        // Deploy a dedicated caller with a script.
        let ua = siphoc_core::config::VoipAppConfig::fig2("x", "voicehoc.ch")
            .to_ua_config()
            .unwrap()
            .call_at(
                SimTime::from_secs(3),
                Aor::new("b", "voicehoc.ch"),
                SimDuration::from_secs(2),
            );
        let caller = siphoc_core::nodesetup::deploy(
            &mut w,
            siphoc_core::nodesetup::NodeSpec::relay(0.0, 60.0).with_user(ua),
        );
        w.run_for(SimDuration::from_secs(12));
        let m = call_measurement(&caller, 0);
        assert!(m.setup.is_some(), "call should establish");
        assert!(!m.failed);
        let s = m.setup.unwrap();
        assert!(s < SimDuration::from_secs(3), "setup {s}");
        // A second attempt that never happened reports failure.
        let m2 = call_measurement(&caller, 1);
        assert!(m2.setup.is_none() && m2.failed);
    }

    #[test]
    fn control_bytes_counts_routing_traffic() {
        let mut w = ideal_world(10);
        let _ = siphoc_chain(&mut w, 3, &RoutingProtocol::aodv(), &[]);
        w.run_for(SimDuration::from_secs(10));
        assert!(control_bytes(&w) > 0, "hellos must be counted");
        assert!(control_bytes_per_node_second(&w, SimDuration::from_secs(10)) > 0.0);
    }
}
