//! Location-service experiment scaffolding (E2, E3, E7, A1).
//!
//! Every location service in the workspace — MANET SLP in both
//! dissemination modes, standard SLP, broadcast registration, proactive
//! HELLO — answers the same client API on `127.0.0.1:427`, so one probe
//! process measures them all interchangeably.

use std::cell::RefCell;
use std::rc::Rc;

use siphoc_core::baselines::{BaselineConfig, BroadcastRegistration, ProactiveHello};
use siphoc_routing::aodv::{AodvConfig, AodvProcess};
use siphoc_routing::olsr::{OlsrConfig, OlsrProcess};
use siphoc_simnet::net::{ports, Datagram, SocketAddr};
use siphoc_simnet::node::NodeConfig;
use siphoc_simnet::prelude::*;
use siphoc_simnet::process::{Ctx, Process};
use siphoc_slp::manet::{
    shared_registry, Dissemination, ManetSlpConfig, ManetSlpHandler, ManetSlpProcess,
};
use siphoc_slp::msg::SlpMsg;
use siphoc_slp::standard::{StandardSlpConfig, StandardSlpProcess};

/// The location-service alternatives under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocationKind {
    /// MANET SLP over AODV (on-demand piggybacking) — SIPHoc's default.
    ManetSlpAodv,
    /// MANET SLP over OLSR (proactive piggybacking).
    ManetSlpOlsr,
    /// RFC 2608 multicast-convergence SLP (runs over AODV).
    StandardSlp,
    /// Broadcast-REGISTER flooding (Leggio et al.; runs over AODV).
    BroadcastReg,
    /// Proactive HELLO mapping (Pico SIP; runs over AODV).
    ProactiveHello,
}

impl LocationKind {
    /// Human-readable label for result tables.
    pub fn label(self) -> &'static str {
        match self {
            LocationKind::ManetSlpAodv => "manet-slp/aodv",
            LocationKind::ManetSlpOlsr => "manet-slp/olsr",
            LocationKind::StandardSlp => "standard-slp",
            LocationKind::BroadcastReg => "bcast-register",
            LocationKind::ProactiveHello => "proactive-hello",
        }
    }

    /// All variants, for sweep loops.
    pub fn all() -> [LocationKind; 5] {
        [
            LocationKind::ManetSlpAodv,
            LocationKind::ManetSlpOlsr,
            LocationKind::StandardSlp,
            LocationKind::BroadcastReg,
            LocationKind::ProactiveHello,
        ]
    }
}

/// Spawns routing + the chosen location service on a fresh node at the
/// given position; returns the node id.
pub fn add_location_node(world: &mut World, kind: LocationKind, x: f64, y: f64) -> NodeId {
    let id = world.add_node(NodeConfig::manet(x, y));
    match kind {
        LocationKind::ManetSlpAodv => {
            let registry = shared_registry();
            let handler = Rc::new(RefCell::new(ManetSlpHandler::new(
                registry.clone(),
                Dissemination::OnDemand,
            )));
            world.spawn(
                id,
                Box::new(AodvProcess::new(AodvConfig::default()).with_handler(handler)),
            );
            world.spawn(
                id,
                Box::new(ManetSlpProcess::new(ManetSlpConfig::on_demand(), registry)),
            );
        }
        LocationKind::ManetSlpOlsr => {
            let registry = shared_registry();
            let handler = Rc::new(RefCell::new(ManetSlpHandler::new(
                registry.clone(),
                Dissemination::Proactive,
            )));
            world.spawn(
                id,
                Box::new(OlsrProcess::new(OlsrConfig::default()).with_handler(handler)),
            );
            world.spawn(
                id,
                Box::new(ManetSlpProcess::new(ManetSlpConfig::proactive(), registry)),
            );
        }
        LocationKind::StandardSlp => {
            world.spawn(id, Box::new(AodvProcess::new(AodvConfig::default())));
            world.spawn(
                id,
                Box::new(StandardSlpProcess::new(StandardSlpConfig::default())),
            );
        }
        LocationKind::BroadcastReg => {
            world.spawn(id, Box::new(AodvProcess::new(AodvConfig::default())));
            world.spawn(
                id,
                Box::new(BroadcastRegistration::new(BaselineConfig::default())),
            );
        }
        LocationKind::ProactiveHello => {
            world.spawn(id, Box::new(AodvProcess::new(AodvConfig::default())));
            world.spawn(id, Box::new(ProactiveHello::new(BaselineConfig::default())));
        }
    }
    id
}

/// One lookup result captured by the probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupResult {
    /// When the request was issued.
    pub issued: SimTime,
    /// When the reply arrived.
    pub answered: SimTime,
    /// Whether a binding was found.
    pub found: bool,
}

impl LookupResult {
    /// Request→reply latency.
    pub fn latency(&self) -> SimDuration {
        self.answered.saturating_since(self.issued)
    }
}

/// Shared lookup results.
pub type LookupLog = Rc<RefCell<Vec<LookupResult>>>;

const PROBE_PORT: u16 = 9500;

/// A probe that can register one binding at start and perform scheduled
/// lookups against the node-local location service.
pub struct LookupProbe {
    register: Option<(String, SocketAddr)>,
    lookups: Vec<(SimTime, String)>,
    issued: Vec<SimTime>,
    results: LookupLog,
    next_xid: u32,
}

impl std::fmt::Debug for LookupProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupProbe").finish_non_exhaustive()
    }
}

impl LookupProbe {
    /// Creates a probe and the handle to its results.
    pub fn new(
        register: Option<(String, SocketAddr)>,
        lookups: Vec<(SimTime, String)>,
    ) -> (LookupProbe, LookupLog) {
        let results: LookupLog = Rc::new(RefCell::new(Vec::new()));
        (
            LookupProbe {
                register,
                lookups,
                issued: Vec::new(),
                results: results.clone(),
                next_xid: 100,
            },
            results,
        )
    }
}

impl Process for LookupProbe {
    fn name(&self) -> &'static str {
        "lookup-probe"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(PROBE_PORT);
        if let Some((key, contact)) = self.register.take() {
            self.next_xid += 1;
            let m = SlpMsg::SrvReg {
                xid: self.next_xid,
                service_type: "sip".to_owned(),
                key,
                contact,
                lifetime_secs: 3600,
            };
            ctx.send_local(ports::SLP, PROBE_PORT, m.to_wire());
        }
        for (i, (at, _)) in self.lookups.iter().enumerate() {
            ctx.set_timer(at.saturating_since(ctx.now()), i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some((_, key)) = self.lookups.get(token as usize).cloned() else {
            return;
        };
        self.next_xid += 1;
        self.issued.push(ctx.now());
        let m = SlpMsg::SrvRqst {
            xid: self.next_xid,
            service_type: "sip".to_owned(),
            key,
        };
        ctx.send_local(ports::SLP, PROBE_PORT, m.to_wire());
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if let Ok(SlpMsg::SrvRply { entries, .. }) = SlpMsg::parse(&dgram.payload) {
            let k = self.results.borrow().len();
            let issued = self.issued.get(k).copied().unwrap_or(ctx.now());
            self.results.borrow_mut().push(LookupResult {
                issued,
                answered: ctx.now(),
                found: !entries.is_empty(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SPACING;

    #[test]
    fn probe_measures_each_service_kind() {
        for kind in LocationKind::all() {
            let mut w = World::new(WorldConfig::new(17).with_radio(RadioConfig::ideal()));
            let a = add_location_node(&mut w, kind, 0.0, 0.0);
            let b = add_location_node(&mut w, kind, SPACING, 0.0);
            let (reg, _) = LookupProbe::new(
                Some(("bob@v.ch".into(), "10.0.0.2:5060".parse().unwrap())),
                Vec::new(),
            );
            w.spawn(b, Box::new(reg));
            let (probe, results) =
                LookupProbe::new(None, vec![(SimTime::from_secs(30), "bob@v.ch".to_owned())]);
            w.spawn(a, Box::new(probe));
            w.run_for(SimDuration::from_secs(45));
            let r = results.borrow();
            assert_eq!(r.len(), 1, "{}: lookup must be answered", kind.label());
            assert!(r[0].found, "{}: binding must be found", kind.label());
            assert!(
                r[0].latency() < SimDuration::from_secs(10),
                "{}",
                kind.label()
            );
        }
    }
}
