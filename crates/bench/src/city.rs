//! City-scale scenario generator for the parallel-execution benchmarks.
//!
//! Builds a deterministic metropolitan-area MANET out of three
//! ingredient populations:
//!
//! * **Districts** — static neighborhood meshes laid out on a coarse
//!   super-grid. The super-grid pitch (600 m) is far beyond the
//!   parallel runner's conflict radius (2.5 × the 100 m radio range), so
//!   every district is its own conflict component and the sharded
//!   executor can spread districts across worker threads.
//! * **Convoys** — mobile columns (delivery routes, bus lines) of
//!   waypoint-driven nodes sweeping through the map at vehicle speeds.
//!   They cross district boundaries and force grid rebuilds, exercising
//!   the runner's freshness checks.
//! * **Emergency swarm** — one dense fast-beaconing cluster (an incident
//!   response team) that concentrates traffic and produces a single hot
//!   component, so load balancing is never uniform.
//!
//! Every node runs [`CityBeacon`]: a timer-driven broadcast beacon whose
//! phase is drawn from the node's own RNG stream. Timer-driven (rather
//! than injected from the harness) traffic keeps long simulated
//! stretches inside a single `run_until_threads` call, which is the
//! regime the parallel runner optimizes.

use siphoc_simnet::mobility::{Area, Mobility, WaypointParams};
use siphoc_simnet::prelude::*;

/// Broadcast port the beacons use.
pub const CITY_PORT: u16 = 9950;

/// Super-grid pitch between district origins, metres. Must exceed the
/// sharding conflict radius (2.5 × radio range) so districts stay
/// independent components.
pub const DISTRICT_PITCH: f64 = 600.0;

/// Intra-district node pitch, metres (connected mesh at 100 m range).
const NODE_PITCH: f64 = 70.0;

/// Shape of a generated city.
#[derive(Debug, Clone, Copy)]
pub struct CityParams {
    /// Total node budget; the generator splits it ~80% districts,
    /// ~15% convoys, ~5% emergency swarm.
    pub nodes: usize,
    /// Nodes per district mesh.
    pub district_size: usize,
    /// Beacon period for ordinary nodes.
    pub beacon_every: SimDuration,
    /// Beacon period for the emergency swarm (denser traffic).
    pub swarm_beacon_every: SimDuration,
    /// Beacon payload size in bytes.
    pub payload: usize,
}

impl CityParams {
    /// Standard parameters for an `n`-node city.
    pub fn with_nodes(n: usize) -> CityParams {
        CityParams {
            nodes: n,
            district_size: 25,
            beacon_every: SimDuration::from_millis(500),
            swarm_beacon_every: SimDuration::from_millis(50),
            payload: 64,
        }
    }
}

/// Timer-driven broadcast beacon: binds its port, arms a timer with a
/// random phase within the first period (from the node's own RNG stream,
/// so placement and phase are reproducible per seed), and re-arms on
/// every fire. Received beacons take the full dispatch path and are
/// discarded.
///
/// The payload is a shared [`Payload`] template — typically one
/// allocation per beacon class for the whole city — so each fire clones
/// a refcount instead of materializing a fresh buffer per node per
/// send (at 100 k nodes that is hundreds of thousands of identical
/// allocations per simulated second).
#[derive(Debug)]
pub struct CityBeacon {
    every: SimDuration,
    payload: Payload,
}

impl CityBeacon {
    /// A beacon firing every `every`, broadcasting `payload`.
    pub fn new(every: SimDuration, payload: impl Into<Payload>) -> CityBeacon {
        CityBeacon {
            every,
            payload: payload.into(),
        }
    }
}

impl Process for CityBeacon {
    fn name(&self) -> &'static str {
        "city-beacon"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(CITY_PORT);
        let period = self.every.as_micros().max(1);
        let phase = ctx.rng().range_u64(0, period);
        ctx.set_timer(SimDuration::from_micros(phase), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let src = SocketAddr::new(ctx.addr(), CITY_PORT);
        let dst = SocketAddr::new(Addr::BROADCAST, CITY_PORT);
        ctx.send(Datagram::new(src, dst, self.payload.clone()));
        ctx.set_timer(self.every, 0);
    }

    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dgram: &Datagram) {}
}

/// Builds the city into `world` and returns the node ids, grouped as
/// `(district_nodes, convoy_nodes, swarm_nodes)`.
///
/// Deterministic per `(world seed, params)`: all placement jitter comes
/// from the world-seed-derived stream `8787`, and beacon phases come
/// from each node's own stream.
pub fn build_city(
    world: &mut World,
    params: CityParams,
) -> (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
    let mut rng = SimRng::from_seed_and_stream(world.config().seed, 8787);
    // One payload template per beacon class; every node's every fire
    // clones the refcount, never the bytes.
    let beacon_payload = Payload::from(vec![0xC1u8; params.payload]);
    let swarm_payload = Payload::from(vec![0xC1u8; params.payload]);
    let swarm_n = (params.nodes / 20).clamp(4, 60);
    let convoy_n = (params.nodes * 15 / 100).max(4);
    let district_n = params.nodes.saturating_sub(swarm_n + convoy_n);

    // Districts on the super-grid, row-major.
    let districts = district_n.div_ceil(params.district_size.max(1));
    let super_cols = (districts as f64).sqrt().ceil().max(1.0) as usize;
    let d_cols = (params.district_size as f64).sqrt().ceil().max(1.0) as usize;
    let mut district_ids = Vec::with_capacity(district_n);
    for i in 0..district_n {
        let d = i / params.district_size;
        let k = i % params.district_size;
        let ox = (d % super_cols) as f64 * DISTRICT_PITCH;
        let oy = (d / super_cols) as f64 * DISTRICT_PITCH;
        let x = ox + (k % d_cols) as f64 * NODE_PITCH + rng.range_f64(-15.0, 15.0);
        let y = oy + (k / d_cols) as f64 * NODE_PITCH + rng.range_f64(-15.0, 15.0);
        let id = world.add_node(NodeConfig::manet(x, y));
        world.spawn(
            id,
            Box::new(CityBeacon::new(params.beacon_every, beacon_payload.clone())),
        );
        district_ids.push(id);
    }

    // Convoys sweep the whole map at vehicle speeds.
    let side = super_cols as f64 * DISTRICT_PITCH;
    let area = Area::new(side.max(DISTRICT_PITCH), side.max(DISTRICT_PITCH));
    let wp = WaypointParams::new(8.0, 15.0, SimDuration::from_secs(2));
    let mut convoy_ids = Vec::with_capacity(convoy_n);
    for _ in 0..convoy_n {
        let start = area.sample(&mut rng);
        let id = world.add_node(NodeConfig::manet(start.0, start.1));
        world.set_mobility(
            id,
            Mobility::random_waypoint(start, wp, area, SimTime::ZERO, &mut rng),
        );
        world.spawn(
            id,
            Box::new(CityBeacon::new(params.beacon_every, beacon_payload.clone())),
        );
        convoy_ids.push(id);
    }

    // Emergency swarm: one dense cluster in the map's first district
    // gap, beaconing fast.
    let (sx, sy) = (DISTRICT_PITCH * 0.5, DISTRICT_PITCH * 0.5);
    let swarm_cols = (swarm_n as f64).sqrt().ceil().max(1.0) as usize;
    let mut swarm_ids = Vec::with_capacity(swarm_n);
    for i in 0..swarm_n {
        let x = sx + (i % swarm_cols) as f64 * 12.0 + rng.range_f64(-3.0, 3.0);
        let y = sy + (i / swarm_cols) as f64 * 12.0 + rng.range_f64(-3.0, 3.0);
        let id = world.add_node(NodeConfig::manet(x, y));
        world.spawn(
            id,
            Box::new(CityBeacon::new(
                params.swarm_beacon_every,
                swarm_payload.clone(),
            )),
        );
        swarm_ids.push(id);
    }

    (district_ids, convoy_ids, swarm_ids)
}
