//! Criterion microbenchmarks of the hot paths: SIP wire codec, SLP
//! records, routing-table operations and whole-world event throughput.
//! These measure implementation performance (not paper figures — those
//! live in the `exp_*` binaries).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use siphoc_bench::topology::{ideal_world, siphoc_chain};
use siphoc_core::nodesetup::RoutingProtocol;
use siphoc_simnet::net::Addr;
use siphoc_simnet::prelude::*;
use siphoc_simnet::route::{Route, RoutingTable};
use siphoc_sip::msg::SipMessage;
use siphoc_slp::service::ServiceEntry;

fn sample_invite_text() -> String {
    let mut m = SipMessage::request(
        siphoc_sip::msg::Method::Invite,
        "sip:bob@voicehoc.ch".parse().unwrap(),
    );
    m.headers_mut()
        .push("Via", "SIP/2.0/UDP 10.0.0.1:5070;branch=z9hG4bK776asdhds");
    m.headers_mut().push("Max-Forwards", 70);
    m.headers_mut()
        .push("From", "\"Alice\" <sip:alice@voicehoc.ch>;tag=1928301774");
    m.headers_mut().push("To", "<sip:bob@voicehoc.ch>");
    m.headers_mut().push("Call-ID", "a84b4c76e66710@10.0.0.1");
    m.headers_mut().push("CSeq", "314159 INVITE");
    m.headers_mut().push("Contact", "<sip:alice@10.0.0.1:5070>");
    m.set_body(
        "v=0\r\no=alice 2890844526 2890844526 IN IP4 10.0.0.1\r\ns=-\r\nc=IN IP4 10.0.0.1\r\nt=0 0\r\nm=audio 8000 RTP/AVP 0\r\n",
        Some("application/sdp"),
    );
    m.to_wire()
}

fn bench_sip_codec(c: &mut Criterion) {
    let wire = sample_invite_text();
    c.bench_function("sip_parse_invite", |b| {
        b.iter(|| SipMessage::parse(black_box(&wire)).unwrap())
    });
    let msg = SipMessage::parse(&wire).unwrap();
    c.bench_function("sip_serialize_invite", |b| {
        b.iter(|| black_box(&msg).to_wire())
    });
}

fn bench_slp_codec(c: &mut Criterion) {
    let entry = ServiceEntry::sip_binding(
        "alice@voicehoc.ch",
        "10.0.0.1:5060".parse().unwrap(),
        Addr::manet(0),
        42,
        120,
    );
    let wire = entry.to_wire();
    c.bench_function("slp_entry_parse", |b| {
        b.iter(|| {
            let text = std::str::from_utf8(black_box(&wire)).unwrap();
            text.parse::<ServiceEntry>().unwrap()
        })
    });
}

fn bench_routing_table(c: &mut Criterion) {
    let mut table = RoutingTable::new();
    for i in 0..200u32 {
        table.insert(
            Addr::manet(i),
            Route {
                next_hop: Addr::manet(i % 10),
                hops: (i % 8) as u8 + 1,
                expires: SimTime::MAX,
                seq: i,
            },
        );
    }
    c.bench_function("route_lookup_200", |b| {
        b.iter(|| table.lookup(black_box(Addr::manet(137)), SimTime::ZERO))
    });
}

fn bench_world_throughput(c: &mut Criterion) {
    c.bench_function("simulate_10_node_chain_10s", |b| {
        b.iter(|| {
            let mut w = ideal_world(77);
            let _ = siphoc_chain(&mut w, 10, &RoutingProtocol::aodv(), &[]);
            w.run_for(SimDuration::from_secs(10));
            black_box(w.now())
        })
    });
}

criterion_group!(
    benches,
    bench_sip_codec,
    bench_slp_codec,
    bench_routing_table,
    bench_world_throughput
);
criterion_main!(benches);
