//! A static DNS directory.
//!
//! The simulator replaces DNS resolution with a directory compiled into
//! each component at construction time. This is the documented
//! substitution for "the SIP proxy running on the domain they assign the
//! SIP addresses from" (paper §3.2): a domain resolves to the address of
//! its provider's SIP proxy — or deliberately to nothing, which is how the
//! polyphone.ethz.ch interoperability failure is reproduced (the provider
//! requires a special outbound proxy that SIPHoc has overwritten, so the
//! domain alone does not lead to a usable next hop).

use std::collections::BTreeMap;

use siphoc_simnet::net::Addr;

/// Domain → SIP proxy address directory.
#[derive(Debug, Clone, Default)]
pub struct DnsDirectory {
    records: BTreeMap<String, Addr>,
}

impl DnsDirectory {
    /// Creates an empty directory.
    pub fn new() -> DnsDirectory {
        DnsDirectory::default()
    }

    /// Adds a record (builder style).
    pub fn with_record(mut self, domain: &str, addr: Addr) -> DnsDirectory {
        self.records.insert(domain.to_lowercase(), addr);
        self
    }

    /// Adds a record in place.
    pub fn insert(&mut self, domain: &str, addr: Addr) {
        self.records.insert(domain.to_lowercase(), addr);
    }

    /// Resolves a domain.
    pub fn resolve(&self, domain: &str) -> Option<Addr> {
        self.records.get(&domain.to_lowercase()).copied()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the directory has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_is_case_insensitive() {
        let dns = DnsDirectory::new().with_record("VoiceHoc.CH", Addr::new(82, 1, 1, 1));
        assert_eq!(dns.resolve("voicehoc.ch"), Some(Addr::new(82, 1, 1, 1)));
        assert_eq!(dns.resolve("VOICEHOC.CH"), Some(Addr::new(82, 1, 1, 1)));
        assert_eq!(dns.resolve("other.org"), None);
    }
}
