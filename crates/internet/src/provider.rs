//! Simulated Internet SIP providers.
//!
//! A provider is the combination the paper's §3.2 interacts with —
//! registrar plus proxy for one domain, reachable at the address its
//! domain resolves to ("typically, SIP providers have their SIP proxy
//! running on the domain they assign the SIP addresses from"). The
//! reproduction runs three of them, mirroring the paper's test set:
//! `siphoc.ch` and `netvoip.ch` (well-behaved) and `polyphone.ethz.ch`
//! (requires a special outbound proxy, so its domain does not resolve to a
//! usable next hop — the documented interop failure).
//!
//! The provider answers REGISTER statefully (transaction layer, binding
//! table) and forwards everything else statelessly.

use siphoc_simnet::net::{ports, Datagram, SocketAddr};
use siphoc_simnet::process::{Ctx, Process};
use siphoc_simnet::time::SimDuration;

use siphoc_sip::msg::{Method, SipMessage, StatusCode};
use siphoc_sip::proxy::{
    prepare_forward_request, prepare_forward_response, response_target, stateless_response,
    transmit, ForwardDecision,
};
use siphoc_sip::registrar::BindingTable;
use siphoc_sip::txn::{TransactionLayer, TxnConfig, TxnEvent};
use siphoc_sip::uri::SipUri;

use crate::dns::DnsDirectory;

/// Provider configuration.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// The domain this provider owns (e.g. `voicehoc.ch`).
    pub domain: String,
    /// Default registration lifetime.
    pub default_expiry: SimDuration,
    /// Directory used to reach other providers.
    pub dns: DnsDirectory,
}

impl ProviderConfig {
    /// Standard provider for `domain`.
    pub fn new(domain: &str, dns: DnsDirectory) -> ProviderConfig {
        ProviderConfig {
            domain: domain.to_lowercase(),
            default_expiry: SimDuration::from_secs(3600),
            dns,
        }
    }
}

const TXN_TOKEN_BASE: u64 = 0x5e1f_0000_0000_0000;

/// The provider process. Spawn on a wired node.
pub struct SipProviderProcess {
    cfg: ProviderConfig,
    bindings: BindingTable,
    txn: TransactionLayer,
}

impl std::fmt::Debug for SipProviderProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SipProviderProcess")
            .field("domain", &self.cfg.domain)
            .field("bindings", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

impl SipProviderProcess {
    /// Creates a provider.
    pub fn new(cfg: ProviderConfig) -> SipProviderProcess {
        SipProviderProcess {
            cfg,
            bindings: BindingTable::new(),
            txn: TransactionLayer::new(ports::SIP, TXN_TOKEN_BASE, TxnConfig::default()),
        }
    }

    /// Read-only view of the registrations (tests / diagnostics).
    pub fn bindings(&self) -> &BindingTable {
        &self.bindings
    }

    fn is_our_domain(&self, uri: &SipUri) -> bool {
        uri.host.eq_ignore_ascii_case(&self.cfg.domain)
    }

    /// Decides where a request should go next. `None` means it was
    /// answered locally.
    fn route_request(&mut self, ctx: &mut Ctx<'_>, msg: &SipMessage) -> Option<SocketAddr> {
        let SipMessage::Request { uri, method, .. } = msg else {
            return None;
        };
        // Numeric host: direct.
        if let Some(dst) = uri.socket_addr(ports::SIP) {
            return Some(dst);
        }
        if self.is_our_domain(uri) {
            let aor = uri.aor();
            let now = ctx.now();
            match self.bindings.lookup(&aor, now) {
                Some(b) => {
                    let dst = b.contact.socket_addr(ports::SIP);
                    match dst {
                        Some(d) => Some(d),
                        None => {
                            ctx.stats().count("provider.bad_contact", 1);
                            None
                        }
                    }
                }
                None => {
                    if *method != Method::Ack {
                        let resp = stateless_response(msg, StatusCode::NOT_FOUND, ctx);
                        if let Some(t) = response_target(msg) {
                            transmit(ctx, ports::SIP, &resp, t);
                        }
                    }
                    None
                }
            }
        } else {
            match self.cfg.dns.resolve(&uri.host) {
                Some(addr) => Some(SocketAddr::new(addr, ports::SIP)),
                None => {
                    if *method != Method::Ack {
                        let resp = stateless_response(msg, StatusCode::SERVICE_UNAVAILABLE, ctx);
                        if let Some(t) = response_target(msg) {
                            transmit(ctx, ports::SIP, &resp, t);
                        }
                    }
                    ctx.stats().count("provider.unresolvable_domain", 1);
                    None
                }
            }
        }
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage, from: SocketAddr) {
        let method = msg.method().expect("requests have methods");
        let register_for_us = method == Method::Register
            && msg
                .to_header()
                .map(|t| t.uri.host.eq_ignore_ascii_case(&self.cfg.domain))
                .unwrap_or(false);

        if register_for_us {
            // Stateful: absorb retransmissions through a server txn.
            match self.txn.on_datagram(ctx, msg, from) {
                Some(TxnEvent::Request { key, msg, .. }) => {
                    let now = ctx.now();
                    ctx.stats().count("provider.register", 1);
                    let resp = self
                        .bindings
                        .handle_register(&msg, now, self.cfg.default_expiry);
                    self.txn.respond(ctx, &key, resp);
                }
                _ => { /* retransmission replayed internally */ }
            }
            return;
        }

        let Some(dst) = self.route_request(ctx, &msg) else {
            return;
        };
        let sent_by = SocketAddr::new(ctx.addr(), ports::SIP);
        // Rewrite the Request-URI to the registered contact when routing
        // into our own domain, so downstream elements route numerically.
        let mut msg = msg;
        if let SipMessage::Request { uri, .. } = &mut msg {
            if self.is_our_domain(uri) {
                let aor = uri.aor();
                if let Some(b) = self.bindings.lookup(&aor, ctx.now()) {
                    *uri = b.contact.clone();
                }
            }
        }
        match prepare_forward_request(msg, sent_by) {
            ForwardDecision::Forward(fwd) => transmit(ctx, ports::SIP, &fwd, dst),
            ForwardDecision::Reject(code) => {
                ctx.stats().count("provider.reject", 1);
                let _ = code;
            }
        }
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage, from: SocketAddr) {
        // Try our own (registrar) client transactions first — the provider
        // sends none today, but the layer also absorbs strays cleanly.
        let own_via = msg
            .top_via()
            .map(|v| v.sent_by.addr == ctx.addr())
            .unwrap_or(false);
        if !own_via {
            ctx.stats().count("provider.misrouted_response", 1);
            return;
        }
        let _ = from;
        if let Some((fwd, target)) = prepare_forward_response(msg) {
            transmit(ctx, ports::SIP, &fwd, target);
        }
    }
}

impl Process for SipProviderProcess {
    fn name(&self) -> &'static str {
        "sip-provider"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SIP);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
            ctx.stats().count("provider.malformed", dgram.payload.len());
            return;
        };
        if msg.is_request() {
            self.on_request(ctx, msg, dgram.src);
        } else {
            self.on_response(ctx, msg, dgram.src);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.txn.owns_token(token) {
            let _ = self.txn.on_timer(ctx, token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::net::Addr;
    use siphoc_simnet::prelude::*;
    use siphoc_sip::ua::{CallEvent, UaConfig, UserAgent};
    use siphoc_sip::uri::Aor;

    fn internet_world() -> (World, NodeId, Addr) {
        let mut w = World::new(WorldConfig::new(61));
        let provider_addr = Addr::new(82, 1, 1, 1);
        let p = w.add_node(NodeConfig::wired(provider_addr));
        (w, p, provider_addr)
    }

    #[test]
    fn register_and_call_between_two_internet_uas() {
        let (mut w, p, paddr) = internet_world();
        let dns = DnsDirectory::new().with_record("voicehoc.ch", paddr);
        w.spawn(
            p,
            Box::new(SipProviderProcess::new(ProviderConfig::new(
                "voicehoc.ch",
                dns,
            ))),
        );

        let ua1n = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 10)));
        let ua2n = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 11)));
        let alice = Aor::new("alice", "voicehoc.ch");
        let bob = Aor::new("bob", "voicehoc.ch");
        let proxy = SocketAddr::new(paddr, ports::SIP);
        let cfg1 = UaConfig::new(alice, proxy).call_at(
            SimTime::from_secs(2),
            bob.clone(),
            SimDuration::from_secs(5),
        );
        let cfg2 = UaConfig::new(bob, proxy);
        let (ua1, log1) = UserAgent::new(cfg1);
        let (ua2, log2) = UserAgent::new(cfg2);
        w.spawn(ua1n, Box::new(ua1));
        w.spawn(ua2n, Box::new(ua2));
        w.run_for(SimDuration::from_secs(12));

        assert!(log1.borrow().any(|e| matches!(e, CallEvent::Registered)));
        assert!(log2.borrow().any(|e| matches!(e, CallEvent::Registered)));
        assert!(
            log1.borrow()
                .any(|e| matches!(e, CallEvent::Established { .. })),
            "{:?}",
            log1.borrow().events()
        );
        assert!(log2
            .borrow()
            .any(|e| matches!(e, CallEvent::Established { .. })));
        assert!(log1.borrow().any(|e| matches!(
            e,
            CallEvent::Terminated {
                by_remote: false,
                ..
            }
        )));
        assert!(log2.borrow().any(|e| matches!(
            e,
            CallEvent::Terminated {
                by_remote: true,
                ..
            }
        )));
    }

    #[test]
    fn call_to_unregistered_user_gets_404() {
        let (mut w, p, paddr) = internet_world();
        let dns = DnsDirectory::new().with_record("voicehoc.ch", paddr);
        w.spawn(
            p,
            Box::new(SipProviderProcess::new(ProviderConfig::new(
                "voicehoc.ch",
                dns,
            ))),
        );
        let uan = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 10)));
        let proxy = SocketAddr::new(paddr, ports::SIP);
        let cfg = UaConfig::new(Aor::new("alice", "voicehoc.ch"), proxy).call_at(
            SimTime::from_secs(2),
            Aor::new("ghost", "voicehoc.ch"),
            SimDuration::from_secs(5),
        );
        let (ua, log) = UserAgent::new(cfg);
        w.spawn(uan, Box::new(ua));
        w.run_for(SimDuration::from_secs(10));
        assert!(
            log.borrow().any(|e| matches!(
                e,
                CallEvent::Failed {
                    code: Some(404),
                    ..
                }
            )),
            "{:?}",
            log.borrow().events()
        );
    }

    #[test]
    fn cross_domain_call_via_two_providers() {
        let mut w = World::new(WorldConfig::new(62));
        let p1a = Addr::new(82, 1, 1, 1);
        let p2a = Addr::new(82, 2, 2, 2);
        let dns = DnsDirectory::new()
            .with_record("voicehoc.ch", p1a)
            .with_record("netvoip.ch", p2a);
        let p1 = w.add_node(NodeConfig::wired(p1a));
        let p2 = w.add_node(NodeConfig::wired(p2a));
        w.spawn(
            p1,
            Box::new(SipProviderProcess::new(ProviderConfig::new(
                "voicehoc.ch",
                dns.clone(),
            ))),
        );
        w.spawn(
            p2,
            Box::new(SipProviderProcess::new(ProviderConfig::new(
                "netvoip.ch",
                dns,
            ))),
        );

        let ua1n = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 10)));
        let ua2n = w.add_node(NodeConfig::wired(Addr::new(82, 2, 2, 10)));
        let alice = Aor::new("alice", "voicehoc.ch");
        let bob = Aor::new("bob", "netvoip.ch");
        let cfg1 = UaConfig::new(alice, SocketAddr::new(p1a, ports::SIP)).call_at(
            SimTime::from_secs(2),
            bob.clone(),
            SimDuration::from_secs(3),
        );
        let cfg2 = UaConfig::new(bob, SocketAddr::new(p2a, ports::SIP));
        let (ua1, log1) = UserAgent::new(cfg1);
        let (ua2, log2) = UserAgent::new(cfg2);
        w.spawn(ua1n, Box::new(ua1));
        w.spawn(ua2n, Box::new(ua2));
        w.run_for(SimDuration::from_secs(12));
        assert!(
            log1.borrow()
                .any(|e| matches!(e, CallEvent::Established { .. })),
            "{:?}",
            log1.borrow().events()
        );
        assert!(log2
            .borrow()
            .any(|e| matches!(e, CallEvent::Established { .. })));
    }

    #[test]
    fn unresolvable_domain_gets_503() {
        let (mut w, p, paddr) = internet_world();
        // polyphone.ethz.ch is NOT in DNS: requires its own outbound proxy.
        let dns = DnsDirectory::new().with_record("voicehoc.ch", paddr);
        w.spawn(
            p,
            Box::new(SipProviderProcess::new(ProviderConfig::new(
                "voicehoc.ch",
                dns,
            ))),
        );
        let uan = w.add_node(NodeConfig::wired(Addr::new(82, 1, 1, 10)));
        let cfg = UaConfig::new(
            Aor::new("alice", "voicehoc.ch"),
            SocketAddr::new(paddr, ports::SIP),
        )
        .call_at(
            SimTime::from_secs(2),
            Aor::new("carol", "polyphone.ethz.ch"),
            SimDuration::from_secs(3),
        );
        let (ua, log) = UserAgent::new(cfg);
        w.spawn(uan, Box::new(ua));
        w.run_for(SimDuration::from_secs(10));
        assert!(
            log.borrow().any(|e| matches!(
                e,
                CallEvent::Failed {
                    code: Some(503),
                    ..
                }
            )),
            "{:?}",
            log.borrow().events()
        );
    }
}
