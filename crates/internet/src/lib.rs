//! # siphoc-internet
//!
//! The simulated Internet side of the reproduction: a static DNS
//! directory, SIP providers (registrar + stateless proxy per domain —
//! the stand-ins for siphoc.ch, netvoip.ch and polyphone.ethz.ch from
//! paper §3.2), and wired caller endpoints reusing the `siphoc-sip`
//! user agent.

#![warn(missing_docs)]

pub mod dns;
pub mod provider;
pub mod relay;
