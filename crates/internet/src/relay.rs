//! TURN-style media relay for NAT'd gateways.
//!
//! PR 6: a gateway may sit behind NAT on its wired side, in which case it
//! cannot claim backbone-routable lease addresses itself. Following the
//! TURN adaptation pattern (PAPERS.md, arXiv 1002.1178), such a gateway
//! asks a wired **relay** to allocate relayed public addresses on its
//! behalf:
//!
//! * `TALLOC` — gateway asks the relay to allocate (or refresh) a relayed
//!   address for one MANET client; the relay claims the address on the
//!   backbone and answers `TALLOCOK` (the Allocate transaction);
//! * `TPERMIT` — gateway opens a permission so a given remote peer may
//!   send inbound to a relayed address (CreatePermission); datagrams from
//!   peers without a permission are dropped at the relay;
//! * `TRFWD` — outbound client traffic, hairpinned gateway → relay and
//!   re-injected onto the Internet from the relayed source address;
//! * `TRDATA` — inbound traffic captured at a relayed address, wrapped
//!   back to the owning gateway, which tunnels it on to the client.
//!
//! The codec lives here (rather than in `siphoc-core`'s tunnel module)
//! because the relay is Internet-side infrastructure and `siphoc-core`
//! already depends on this crate; core nests [`RelayMsg`] inside its
//! `TunnelMsg` so the gateway keeps a single parse entry point.

use std::collections::{BTreeMap, BTreeSet};

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::process::{Ctx, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

/// Relay-plane wire messages. Same framing discipline as the tunnel:
/// text headers, with encapsulated datagrams binary-safe after the first
/// newline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayMsg {
    /// NAT'd gateway → relay: allocate (or refresh) a relayed public
    /// address on behalf of `client`.
    AllocReq {
        /// The MANET client the relayed address will be leased to.
        client: Addr,
    },
    /// Relay → gateway: the relayed address now allocated for `client`.
    AllocOk {
        /// Echo of the requesting client.
        client: Addr,
        /// The relayed public address, claimed by the relay.
        relayed: Addr,
    },
    /// NAT'd gateway → relay: permit inbound traffic from `peer` to the
    /// relayed address. Without a permission the relay drops inbound
    /// datagrams for the address.
    Permit {
        /// The relayed address being opened.
        relayed: Addr,
        /// The remote peer allowed to send to it.
        peer: Addr,
    },
    /// NAT'd gateway → relay: outbound datagram to re-inject onto the
    /// Internet from its relayed source address.
    RelayFwd {
        /// The datagram, source already rewritten to the relayed address.
        inner: Datagram,
    },
    /// Relay → gateway: inbound datagram that arrived at a relayed
    /// address, to be tunneled on to the leased client.
    RelayData {
        /// The datagram as captured on the backbone.
        inner: Datagram,
    },
}

/// Encapsulates a datagram under a text header tag (`TDATA`/`TRFWD`/…).
pub fn encap(tag: &str, inner: &Datagram) -> Vec<u8> {
    let mut out = format!("{tag} {} {} {}\n", inner.src, inner.dst, inner.ttl).into_bytes();
    out.extend_from_slice(&inner.payload);
    out
}

/// Inverse of [`encap`]: rebuilds the inner datagram from a parsed header.
pub fn decap(
    it: &mut std::str::SplitAsciiWhitespace<'_>,
    bytes: &[u8],
    text_end: usize,
) -> Option<Datagram> {
    let src: SocketAddr = it.next()?.parse().ok()?;
    let dst: SocketAddr = it.next()?.parse().ok()?;
    let ttl: u8 = it.next()?.parse().ok()?;
    let payload = bytes.get(text_end + 1..).unwrap_or_default().to_vec();
    let mut inner = Datagram::new(src, dst, payload);
    inner.ttl = ttl;
    Some(inner)
}

impl RelayMsg {
    /// Serializes the message.
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            RelayMsg::AllocReq { client } => format!("TALLOC {client}").into_bytes(),
            RelayMsg::AllocOk { client, relayed } => {
                format!("TALLOCOK {client} {relayed}").into_bytes()
            }
            RelayMsg::Permit { relayed, peer } => format!("TPERMIT {relayed} {peer}").into_bytes(),
            RelayMsg::RelayFwd { inner } => encap("TRFWD", inner),
            RelayMsg::RelayData { inner } => encap("TRDATA", inner),
        }
    }

    /// Parses a message. Returns `None` for non-relay tags so the caller
    /// can fall through to its own codec.
    pub fn parse(bytes: &[u8]) -> Option<RelayMsg> {
        let text_end = bytes
            .iter()
            .position(|b| *b == b'\n')
            .unwrap_or(bytes.len());
        let head = std::str::from_utf8(&bytes[..text_end]).ok()?;
        let mut it = head.split_ascii_whitespace();
        match it.next()? {
            "TALLOC" => Some(RelayMsg::AllocReq {
                client: it.next()?.parse().ok()?,
            }),
            "TALLOCOK" => Some(RelayMsg::AllocOk {
                client: it.next()?.parse().ok()?,
                relayed: it.next()?.parse().ok()?,
            }),
            "TPERMIT" => Some(RelayMsg::Permit {
                relayed: it.next()?.parse().ok()?,
                peer: it.next()?.parse().ok()?,
            }),
            "TRFWD" => Some(RelayMsg::RelayFwd {
                inner: decap(&mut it, bytes, text_end)?,
            }),
            "TRDATA" => Some(RelayMsg::RelayData {
                inner: decap(&mut it, bytes, text_end)?,
            }),
            _ => None,
        }
    }
}

/// Relay configuration.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// First address of the relayed pool; allocations count up.
    pub pool_base: Addr,
    /// Maximum concurrent allocations.
    pub pool_size: u32,
    /// Allocation lifetime; gateways refresh with repeated `TALLOC`s.
    pub alloc_lifetime: SimDuration,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            pool_base: Addr::new(82, 130, 66, 100),
            pool_size: 64,
            alloc_lifetime: SimDuration::from_secs(120),
        }
    }
}

#[derive(Debug)]
struct Alloc {
    gateway: SocketAddr,
    client: Addr,
    expires: SimTime,
}

const TAG_EXPIRE: u64 = 1;

/// Media ports sit at 8000 and up; everything below is signalling.
fn is_media(d: &Datagram) -> bool {
    d.src.port >= 8000 || d.dst.port >= 8000
}

/// The TURN-style relay process. Spawn on a wired node.
#[derive(Debug)]
pub struct TurnRelay {
    cfg: RelayConfig,
    /// relayed address → allocation.
    allocs: BTreeMap<Addr, Alloc>,
    /// (relayed, permitted peer) pairs.
    permits: BTreeSet<(Addr, Addr)>,
    next_offset: u32,
}

impl TurnRelay {
    /// Creates a relay.
    pub fn new(cfg: RelayConfig) -> TurnRelay {
        TurnRelay {
            cfg,
            allocs: BTreeMap::new(),
            permits: BTreeSet::new(),
            next_offset: 0,
        }
    }

    /// Current number of live allocations.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    fn allocate(&mut self, gateway: SocketAddr, client: Addr, now: SimTime) -> Option<Addr> {
        if let Some((relayed, a)) = self
            .allocs
            .iter_mut()
            .find(|(_, a)| a.gateway == gateway && a.client == client)
        {
            a.expires = now + self.cfg.alloc_lifetime;
            return Some(*relayed);
        }
        if self.allocs.len() as u32 >= self.cfg.pool_size {
            return None;
        }
        for i in 0..self.cfg.pool_size {
            let candidate =
                Addr(self.cfg.pool_base.0 + ((self.next_offset + i) % self.cfg.pool_size));
            if !self.allocs.contains_key(&candidate) {
                self.next_offset = (self.next_offset + i + 1) % self.cfg.pool_size;
                self.allocs.insert(
                    candidate,
                    Alloc {
                        gateway,
                        client,
                        expires: now + self.cfg.alloc_lifetime,
                    },
                );
                return Some(candidate);
            }
        }
        None
    }
}

impl Process for TurnRelay {
    fn name(&self) -> &'static str {
        "turn-relay"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::TUNNEL);
        ctx.set_timer(self.cfg.alloc_lifetime, TAG_EXPIRE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        // Backbone traffic captured via a relayed address?
        if dgram.dst.addr != ctx.addr() && dgram.dst.addr.is_public() {
            let Some(alloc) = self.allocs.get(&dgram.dst.addr) else {
                ctx.stats().count("relay.unknown_drop", dgram.wire_len());
                return;
            };
            if !self.permits.contains(&(dgram.dst.addr, dgram.src.addr)) {
                ctx.stats().count("relay.no_permit_drop", dgram.wire_len());
                return;
            }
            ctx.stats().count("relay.to_gateway", dgram.wire_len());
            if is_media(dgram) {
                ctx.stats().count("media.relayed", 1);
                ctx.obs().counter_add("media.relayed", 1);
            }
            let msg = RelayMsg::RelayData {
                inner: dgram.clone(),
            };
            ctx.send_to(alloc.gateway, ports::TUNNEL, msg.to_wire());
            return;
        }
        let Some(msg) = RelayMsg::parse(&dgram.payload) else {
            ctx.stats().count("relay.malformed", dgram.payload.len());
            return;
        };
        match msg {
            RelayMsg::AllocReq { client } => {
                let now = ctx.now();
                match self.allocate(dgram.src, client, now) {
                    Some(relayed) => {
                        ctx.claim_public_addr(relayed);
                        ctx.stats().count("relay.alloc", 1);
                        let ok = RelayMsg::AllocOk { client, relayed };
                        ctx.send_to(dgram.src, ports::TUNNEL, ok.to_wire());
                    }
                    None => {
                        ctx.stats().count("relay.pool_exhausted", 1);
                    }
                }
            }
            RelayMsg::Permit { relayed, peer } => {
                // Only the owning gateway may open permissions.
                match self.allocs.get(&relayed) {
                    Some(a) if a.gateway == dgram.src => {
                        ctx.stats().count("relay.permit", 1);
                        self.permits.insert((relayed, peer));
                    }
                    _ => {
                        ctx.stats().count("relay.bad_permit", 1);
                    }
                }
            }
            RelayMsg::RelayFwd { inner } => {
                // Only forward from addresses the sender actually owns.
                match self.allocs.get(&inner.src.addr) {
                    Some(a) if a.gateway == dgram.src => {
                        ctx.stats().count("relay.fwd", inner.wire_len());
                        if is_media(&inner) {
                            ctx.stats().count("media.relayed", 1);
                            ctx.obs().counter_add("media.relayed", 1);
                        }
                        ctx.reinject(inner);
                    }
                    _ => {
                        ctx.stats().count("relay.bad_fwd", 1);
                    }
                }
            }
            RelayMsg::AllocOk { .. } | RelayMsg::RelayData { .. } => {
                ctx.stats().count("relay.unexpected_msg", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TAG_EXPIRE {
            return;
        }
        let now = ctx.now();
        let expired: Vec<Addr> = self
            .allocs
            .iter()
            .filter(|(_, a)| a.expires <= now)
            .map(|(r, _)| *r)
            .collect();
        for relayed in expired {
            self.allocs.remove(&relayed);
            self.permits.retain(|(r, _)| *r != relayed);
            ctx.release_public_addr(relayed);
            ctx.stats().count("relay.alloc_expired", 1);
        }
        ctx.set_timer(self.cfg.alloc_lifetime, TAG_EXPIRE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_wire_round_trips() {
        let inner = Datagram::new(
            "82.130.66.100:8000".parse().unwrap(),
            "82.1.1.50:8000".parse().unwrap(),
            vec![0x80, 0x00, 0xff, b'\n', 0x01],
        );
        let msgs = vec![
            RelayMsg::AllocReq {
                client: Addr::manet(3),
            },
            RelayMsg::AllocOk {
                client: Addr::manet(3),
                relayed: Addr::new(82, 130, 66, 101),
            },
            RelayMsg::Permit {
                relayed: Addr::new(82, 130, 66, 101),
                peer: Addr::new(82, 1, 1, 50),
            },
            RelayMsg::RelayFwd {
                inner: inner.clone(),
            },
            RelayMsg::RelayData { inner },
        ];
        for m in msgs {
            assert_eq!(RelayMsg::parse(&m.to_wire()), Some(m));
        }
        assert_eq!(
            RelayMsg::parse(b"TCONNECT"),
            None,
            "tunnel tags fall through"
        );
        assert_eq!(RelayMsg::parse(b"TPERMIT 82.130.66.101"), None);
    }

    #[test]
    fn allocation_is_stable_per_client_and_bounded() {
        let mut r = TurnRelay::new(RelayConfig {
            pool_size: 2,
            ..RelayConfig::default()
        });
        let gw: SocketAddr = "82.130.64.1:4271".parse().unwrap();
        let now = SimTime::ZERO;
        let a = r.allocate(gw, Addr::manet(1), now).unwrap();
        let a2 = r.allocate(gw, Addr::manet(1), now).unwrap();
        assert_eq!(a, a2, "refresh keeps the allocation");
        let b = r.allocate(gw, Addr::manet(2), now).unwrap();
        assert_ne!(a, b);
        assert!(r.allocate(gw, Addr::manet(3), now).is_none(), "exhausted");
        assert_eq!(r.alloc_count(), 2);
    }

    #[test]
    fn separate_gateways_get_separate_allocations_for_same_client() {
        let mut r = TurnRelay::new(RelayConfig::default());
        let gw1: SocketAddr = "82.130.64.1:4271".parse().unwrap();
        let gw2: SocketAddr = "82.130.64.2:4271".parse().unwrap();
        let now = SimTime::ZERO;
        let a = r.allocate(gw1, Addr::manet(1), now).unwrap();
        let b = r.allocate(gw2, Addr::manet(1), now).unwrap();
        assert_ne!(a, b);
    }
}
