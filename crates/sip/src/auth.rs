//! Challenge-based REGISTER authentication without a PKI.
//!
//! SIPHoc's registrar runs inside an ad hoc network with no certificate
//! authority in reach, so classic Digest-with-shared-secret or TLS-with-CA
//! schemes are off the table. Instead each node carries a *self-certifying
//! identity* ([`siphoc_simnet::ident`]): its identity is the hash of its
//! public key, so whoever presented a key once is the only principal who
//! can ever speak for that identity again. The registrar challenges a
//! REGISTER with a nonce, the UA signs `(nonce, aor, contact)` with its
//! key, and the registrar pins the first identity seen per AOR —
//! trust-on-first-use, exactly like the SLP advert pins.
//!
//! Wire format (one header line each, whitespace-delimited hex fields):
//!
//! ```text
//! WWW-Authenticate: ID nonce=00000000deadbeef
//! Authorization: ID pk=0123456789abcdef nonce=00000000deadbeef sig=fedcba9876543210
//! ```
//!
//! The scheme token `ID` marks this as the identity scheme (vs RFC 2617
//! `Digest`). Everything is deterministic: nonces are derived by the
//! registrar from its own address and a counter, never from an RNG, so
//! enabling auth perturbs no random stream in the simulation.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use siphoc_simnet::ident::{self, KeyPair};

use crate::msg::SipMessage;

/// Header carrying the registrar's challenge on a 401 response.
pub const WWW_AUTHENTICATE: &str = "WWW-Authenticate";

/// Header carrying the UA's signed credential on a retried REGISTER.
pub const AUTHORIZATION: &str = "Authorization";

/// Scheme token distinguishing self-certifying identity auth.
pub const SCHEME: &str = "ID";

/// A registrar challenge: sign this nonce to prove key possession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Single-use value bound into the credential signature.
    pub nonce: u64,
}

impl fmt::Display for Challenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{SCHEME} nonce={:016x}", self.nonce)
    }
}

impl FromStr for Challenge {
    type Err = ParseAuthError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix(SCHEME)
            .ok_or(ParseAuthError("unknown auth scheme"))?;
        let nonce = parse_field(rest.trim(), "nonce")?;
        Ok(Challenge { nonce })
    }
}

/// A UA's answer to a [`Challenge`]: public key, echoed nonce, and a
/// signature over `(nonce, aor, contact)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credential {
    /// The registrant's public key.
    pub pk: u64,
    /// The challenge nonce being answered.
    pub nonce: u64,
    /// Signature over [`signing_bytes`].
    pub sig: u64,
}

impl Credential {
    /// Signs a challenge for the given AOR binding.
    pub fn answer(kp: &KeyPair, nonce: u64, aor: &str, contact: &str) -> Credential {
        Credential {
            pk: kp.public(),
            nonce,
            sig: kp.sign(&signing_bytes(nonce, aor, contact)),
        }
    }

    /// Verifies the signature against the binding it claims to cover.
    /// A `true` result proves possession of the key behind `pk`; the
    /// caller still decides whether that identity may own the AOR.
    pub fn verify(&self, aor: &str, contact: &str) -> bool {
        ident::verify(self.pk, &signing_bytes(self.nonce, aor, contact), self.sig)
    }

    /// The self-certifying identity of the signer (hash of `pk`).
    pub fn identity(&self) -> u64 {
        ident::identity_of(self.pk)
    }
}

impl fmt::Display for Credential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{SCHEME} pk={:016x} nonce={:016x} sig={:016x}",
            self.pk, self.nonce, self.sig
        )
    }
}

impl FromStr for Credential {
    type Err = ParseAuthError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix(SCHEME)
            .ok_or(ParseAuthError("unknown auth scheme"))?;
        let mut it = rest.split_whitespace();
        let pk = parse_field(it.next().unwrap_or(""), "pk")?;
        let nonce = parse_field(it.next().unwrap_or(""), "nonce")?;
        let sig = parse_field(it.next().unwrap_or(""), "sig")?;
        if it.next().is_some() {
            return Err(ParseAuthError("trailing credential fields"));
        }
        Ok(Credential { pk, nonce, sig })
    }
}

/// The exact bytes a REGISTER credential signs. Binding the contact (not
/// just the nonce) means a snooped credential cannot be replayed to point
/// the AOR at an attacker's address even within the nonce window.
pub fn signing_bytes(nonce: u64, aor: &str, contact: &str) -> Vec<u8> {
    format!("REGISTER {nonce:016x} {aor} {contact}").into_bytes()
}

/// Derives a deterministic challenge nonce. Mixing the registrar address,
/// AOR and a per-registrar counter gives per-challenge-unique values
/// without touching any simulation RNG stream (auth on/off must not
/// perturb random draws anywhere else).
pub fn derive_nonce(registrar_salt: u64, aor: &str, counter: u64) -> u64 {
    ident::h64(format!("nonce {registrar_salt:016x} {counter} {aor}").as_bytes())
}

fn parse_field(token: &str, name: &'static str) -> Result<u64, ParseAuthError> {
    let val = token
        .strip_prefix(name)
        .and_then(|r| r.strip_prefix('='))
        .ok_or(ParseAuthError("missing auth field"))?;
    u64::from_str_radix(val, 16).map_err(|_| ParseAuthError("bad auth field value"))
}

/// What the registrar should do with a REGISTER under identity auth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterAuthOutcome {
    /// Credential verified and the AOR pin matches (or was just
    /// recorded): bind the contact.
    Accept {
        /// The registrant's self-certifying identity.
        identity: u64,
    },
    /// No (or stale-nonce) credential: answer 401 with this nonce in a
    /// `WWW-Authenticate: ID` challenge.
    Challenge {
        /// Nonce to embed in the challenge.
        nonce: u64,
    },
    /// Bad signature or an identity that contradicts the AOR's pin:
    /// answer 403 and bind nothing.
    Reject,
}

/// Registrar-side REGISTER authentication state: issued nonces and
/// trust-on-first-use AOR→identity pins.
///
/// The first identity that successfully authenticates for an AOR owns it
/// for the registrar's lifetime; a later REGISTER for the same AOR under
/// a different key is rejected even with a valid signature. This is the
/// same TOFU policy the SLP cache applies to advert origins.
#[derive(Debug, Clone)]
pub struct RegisterAuth {
    salt: u64,
    counter: u64,
    /// AOR → last nonce issued to it (credentials must echo it).
    nonces: BTreeMap<String, u64>,
    /// AOR → pinned identity.
    pins: BTreeMap<String, u64>,
}

impl RegisterAuth {
    /// Creates the guard. `salt` (typically the registrar's address
    /// bits) makes nonces registrar-unique without consuming RNG.
    pub fn new(salt: u64) -> RegisterAuth {
        RegisterAuth {
            salt,
            counter: 0,
            nonces: BTreeMap::new(),
            pins: BTreeMap::new(),
        }
    }

    /// The identity pinned for `aor`, if any has authenticated yet.
    pub fn pinned_identity(&self, aor: &str) -> Option<u64> {
        self.pins.get(aor).copied()
    }

    /// Judges a REGISTER request. Mutates challenge/pin state, so call
    /// exactly once per incoming REGISTER.
    pub fn check(&mut self, req: &SipMessage) -> RegisterAuthOutcome {
        let aor = match req.to_header() {
            Some(to) => to.uri.aor().to_string(),
            None => return RegisterAuthOutcome::Reject,
        };
        let Some(contact) = req.headers().get("Contact") else {
            return RegisterAuthOutcome::Reject;
        };
        let cred = req
            .headers()
            .get(AUTHORIZATION)
            .and_then(|v| v.parse::<Credential>().ok());
        let Some(cred) = cred else {
            return RegisterAuthOutcome::Challenge {
                nonce: self.issue_nonce(&aor),
            };
        };
        // A credential must echo the nonce this registrar last issued
        // for the AOR; anything else (stale refresh after a registrar
        // restart, replayed sniffed header) gets a fresh challenge.
        if self.nonces.get(&aor) != Some(&cred.nonce) {
            return RegisterAuthOutcome::Challenge {
                nonce: self.issue_nonce(&aor),
            };
        }
        if !cred.verify(&aor, contact) {
            return RegisterAuthOutcome::Reject;
        }
        let identity = cred.identity();
        match self.pins.get(&aor) {
            Some(pinned) if *pinned != identity => RegisterAuthOutcome::Reject,
            _ => {
                self.pins.insert(aor, identity);
                RegisterAuthOutcome::Accept { identity }
            }
        }
    }

    fn issue_nonce(&mut self, aor: &str) -> u64 {
        let nonce = derive_nonce(self.salt, aor, self.counter);
        self.counter += 1;
        self.nonces.insert(aor.to_owned(), nonce);
        nonce
    }
}

/// Error for malformed auth header values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseAuthError(&'static str);

impl fmt::Display for ParseAuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid auth header: {}", self.0)
    }
}

impl std::error::Error for ParseAuthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn challenge_round_trips() {
        let c = Challenge {
            nonce: 0xdead_beef_0042_1234,
        };
        let shown = c.to_string();
        assert_eq!(shown, "ID nonce=deadbeef00421234");
        assert_eq!(shown.parse::<Challenge>().unwrap(), c);
    }

    #[test]
    fn credential_round_trips_and_verifies() {
        let kp = KeyPair::from_secret(77);
        let cred = Credential::answer(&kp, 42, "sip:alice@voicehoc.ch", "<sip:alice@10.0.0.1>");
        let shown = cred.to_string();
        let parsed: Credential = shown.parse().unwrap();
        assert_eq!(parsed, cred);
        assert!(parsed.verify("sip:alice@voicehoc.ch", "<sip:alice@10.0.0.1>"));
        assert_eq!(parsed.identity(), kp.identity());
    }

    #[test]
    fn credential_binds_aor_and_contact() {
        let kp = KeyPair::from_secret(77);
        let cred = Credential::answer(&kp, 42, "sip:alice@voicehoc.ch", "<sip:alice@10.0.0.1>");
        // Replaying against a different AOR or contact fails.
        assert!(!cred.verify("sip:bob@voicehoc.ch", "<sip:alice@10.0.0.1>"));
        assert!(!cred.verify("sip:alice@voicehoc.ch", "<sip:mallory@10.9.9.9>"));
        // Wrong nonce fails too.
        let stale = Credential { nonce: 43, ..cred };
        assert!(!stale.verify("sip:alice@voicehoc.ch", "<sip:alice@10.0.0.1>"));
    }

    #[test]
    fn malformed_headers_rejected() {
        for bad in [
            "Digest nonce=00",
            "ID",
            "ID nonce=xyz",
            "ID pk=11 nonce=22",                 // credential missing sig
            "ID pk=11 nonce=22 sig=33 extra=44", // trailing field
            "ID sig=33 nonce=22 pk=11",          // wrong field order
        ] {
            assert!(
                bad.parse::<Credential>().is_err(),
                "accepted credential {bad:?}"
            );
        }
        assert!("ID nonce=".parse::<Challenge>().is_err());
        assert!("ID nonce=00421234 junk".parse::<Challenge>().is_err());
    }

    fn register_req(aor: &str, contact: &str, auth_hdr: Option<String>) -> SipMessage {
        use crate::msg::{Headers, Method};
        let uri = format!("sip:{}", aor.split('@').nth(1).unwrap())
            .parse()
            .unwrap();
        let mut m = SipMessage::request(Method::Register, uri);
        let h: &mut Headers = m.headers_mut();
        h.push("Via", "SIP/2.0/UDP 10.0.0.1:5070;branch=z9hG4bKa");
        h.push("From", format!("<sip:{aor}>;tag=t1"));
        h.push("To", format!("<sip:{aor}>"));
        h.push("Call-ID", "reg-1");
        h.push("CSeq", "1 REGISTER");
        h.push("Contact", contact.to_owned());
        if let Some(a) = auth_hdr {
            h.push(AUTHORIZATION, a);
        }
        m
    }

    #[test]
    fn register_auth_challenge_then_accept_pins_identity() {
        let mut guard = RegisterAuth::new(7);
        let aor = "alice@voicehoc.ch";
        let contact = "<sip:alice@10.0.0.1:5070>";
        let RegisterAuthOutcome::Challenge { nonce } =
            guard.check(&register_req(aor, contact, None))
        else {
            panic!("expected challenge");
        };
        let kp = KeyPair::from_secret(5);
        let cred = Credential::answer(&kp, nonce, aor, contact);
        let out = guard.check(&register_req(aor, contact, Some(cred.to_string())));
        assert_eq!(
            out,
            RegisterAuthOutcome::Accept {
                identity: kp.identity()
            }
        );
        assert_eq!(guard.pinned_identity(aor), Some(kp.identity()));
    }

    #[test]
    fn register_auth_rejects_hijack_under_pinned_aor() {
        let mut guard = RegisterAuth::new(7);
        let aor = "alice@voicehoc.ch";
        let contact = "<sip:alice@10.0.0.1:5070>";
        let victim = KeyPair::from_secret(5);
        let RegisterAuthOutcome::Challenge { nonce } =
            guard.check(&register_req(aor, contact, None))
        else {
            panic!("expected challenge");
        };
        let cred = Credential::answer(&victim, nonce, aor, contact);
        guard.check(&register_req(aor, contact, Some(cred.to_string())));

        // Attacker with a *valid* key of their own tries to re-bind the
        // AOR to their address. The signature verifies, the pin doesn't.
        let mallory = KeyPair::from_secret(6);
        let evil_contact = "<sip:alice@10.9.9.9:5070>";
        let RegisterAuthOutcome::Challenge { nonce: n2 } =
            guard.check(&register_req(aor, evil_contact, None))
        else {
            panic!("expected challenge");
        };
        let evil = Credential::answer(&mallory, n2, aor, evil_contact);
        assert_eq!(
            guard.check(&register_req(aor, evil_contact, Some(evil.to_string()))),
            RegisterAuthOutcome::Reject
        );
        // The rightful owner still refreshes fine under a new nonce.
        let RegisterAuthOutcome::Challenge { nonce: n3 } =
            guard.check(&register_req(aor, contact, None))
        else {
            panic!("expected challenge");
        };
        let refresh = Credential::answer(&victim, n3, aor, contact);
        assert!(matches!(
            guard.check(&register_req(aor, contact, Some(refresh.to_string()))),
            RegisterAuthOutcome::Accept { .. }
        ));
    }

    #[test]
    fn register_auth_rechallenges_stale_nonce_and_rejects_forgery() {
        let mut guard = RegisterAuth::new(7);
        let aor = "alice@voicehoc.ch";
        let contact = "<sip:alice@10.0.0.1:5070>";
        let kp = KeyPair::from_secret(5);
        // Credential with a nonce the registrar never issued: re-challenge.
        let stale = Credential::answer(&kp, 0xbad, aor, contact);
        assert!(matches!(
            guard.check(&register_req(aor, contact, Some(stale.to_string()))),
            RegisterAuthOutcome::Challenge { .. }
        ));
        // Correct nonce, garbage signature: hard reject.
        let RegisterAuthOutcome::Challenge { nonce } =
            guard.check(&register_req(aor, contact, None))
        else {
            panic!("expected challenge");
        };
        let forged = Credential {
            pk: KeyPair::from_secret(6).public(),
            nonce,
            sig: 0x1234,
        };
        assert_eq!(
            guard.check(&register_req(aor, contact, Some(forged.to_string()))),
            RegisterAuthOutcome::Reject
        );
    }

    #[test]
    fn nonces_differ_by_counter_and_aor() {
        let a = derive_nonce(9, "sip:alice@x", 0);
        let b = derive_nonce(9, "sip:alice@x", 1);
        let c = derive_nonce(9, "sip:bob@x", 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_nonce(9, "sip:alice@x", 0));
    }
}
