//! Registration bindings (RFC 3261 §10).
//!
//! A [`BindingTable`] maps an address-of-record to its current contacts
//! with expiry. Three components reuse it: the SIPHoc proxy (local user
//! registrations it then advertises through MANET SLP), the simulated
//! Internet SIP providers, and the broadcast-registration baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use siphoc_simnet::fasthash::FastMap;
use siphoc_simnet::time::{SimDuration, SimTime};

use crate::msg::{Method, SipMessage, StatusCode};
use crate::uri::{Aor, SipUri};

/// One registered contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The contact URI the AOR resolves to.
    pub contact: SipUri,
    /// When the binding lapses.
    pub expires: SimTime,
}

/// The registrar's binding store.
///
/// # Examples
///
/// ```
/// use siphoc_sip::registrar::BindingTable;
/// use siphoc_sip::uri::Aor;
/// use siphoc_simnet::time::{SimDuration, SimTime};
///
/// let mut table = BindingTable::new();
/// let aor = Aor::new("alice", "voicehoc.ch");
/// table.bind(aor.clone(), "sip:alice@10.0.0.1:5070".parse().unwrap(),
///            SimTime::ZERO + SimDuration::from_secs(3600));
/// assert!(table.lookup(&aor, SimTime::ZERO).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BindingTable {
    /// Contact lists, hash-indexed: the lookup on every forwarded INVITE
    /// is O(1) instead of a BTreeMap walk.
    bindings: FastMap<Aor, Vec<Binding>>,
    /// AORs in sorted order — preserves the old BTreeMap iteration order
    /// that SLP readvertisement and `Display` depend on.
    order: Vec<Aor>,
    /// Expiry wheel: a lazy min-heap of `(deadline, aor)`. Refreshing a
    /// binding pushes a new entry rather than re-keying the old one;
    /// stale entries are skipped on pop because [`sweep`](Self::sweep)
    /// re-checks the live contact list.
    expiry: BinaryHeap<Reverse<(SimTime, Aor)>>,
    /// User part → its AORs (sorted), so "first AOR with this user" — the
    /// proxy's local-delivery lookup — is O(1) instead of a table scan.
    by_user: FastMap<String, Vec<Aor>>,
    /// Total contact bindings across all AORs (the `sip.bindings` gauge).
    contacts: usize,
}

impl BindingTable {
    /// Creates an empty table.
    pub fn new() -> BindingTable {
        BindingTable::default()
    }

    /// Adds or refreshes a binding.
    pub fn bind(&mut self, aor: Aor, contact: SipUri, expires: SimTime) {
        if !self.bindings.contains_key(&aor) {
            if let Err(i) = self.order.binary_search(&aor) {
                self.order.insert(i, aor.clone());
            }
            let users = self.by_user.entry(aor.user.clone()).or_default();
            if let Err(i) = users.binary_search(&aor) {
                users.insert(i, aor.clone());
            }
            self.bindings.insert(aor.clone(), Vec::new());
        }
        self.expiry.push(Reverse((expires, aor.clone())));
        let list = self.bindings.get_mut(&aor).expect("just inserted");
        match list.iter_mut().find(|b| b.contact == contact) {
            Some(b) => b.expires = expires,
            None => {
                list.push(Binding { contact, expires });
                self.contacts += 1;
            }
        }
    }

    /// Drops an AOR from every index (its contact list is already empty
    /// or about to be discarded).
    fn forget(&mut self, aor: &Aor) {
        self.bindings.remove(aor);
        if let Ok(i) = self.order.binary_search(aor) {
            self.order.remove(i);
        }
        if let Some(users) = self.by_user.get_mut(&aor.user) {
            users.retain(|a| a != aor);
            if users.is_empty() {
                self.by_user.remove(&aor.user);
            }
        }
    }

    /// Removes a specific contact binding.
    pub fn unbind(&mut self, aor: &Aor, contact: &SipUri) {
        if let Some(list) = self.bindings.get_mut(aor) {
            let before = list.len();
            list.retain(|b| &b.contact != contact);
            self.contacts -= before - list.len();
            if list.is_empty() {
                self.forget(aor);
            }
        }
    }

    /// Removes every binding for an AOR.
    pub fn unbind_all(&mut self, aor: &Aor) {
        if let Some(list) = self.bindings.get(aor) {
            self.contacts -= list.len();
            self.forget(aor);
        }
    }

    /// The freshest unexpired contact for `aor`.
    pub fn lookup(&self, aor: &Aor, now: SimTime) -> Option<&Binding> {
        self.bindings
            .get(aor)?
            .iter()
            .filter(|b| b.expires > now)
            .max_by_key(|b| b.expires)
    }

    /// All unexpired contacts for `aor`, in registration order.
    pub fn lookup_all<'a>(
        &'a self,
        aor: &Aor,
        now: SimTime,
    ) -> impl Iterator<Item = &'a Binding> + 'a {
        self.bindings
            .get(aor)
            .into_iter()
            .flat_map(move |list| list.iter().filter(move |b| b.expires > now))
    }

    /// The first AOR (in table order) whose user part is `user` — the
    /// proxy's local-delivery lookup.
    pub fn lookup_by_user(&self, user: &str) -> Option<&Aor> {
        self.by_user.get(user).and_then(|v| v.first())
    }

    /// Eagerly drops every binding whose deadline has passed, driven by
    /// the expiry wheel: cost is proportional to the number of due (or
    /// stale) wheel entries, never to the table size. Returns how many
    /// contact bindings were dropped.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        while let Some(Reverse((deadline, _))) = self.expiry.peek() {
            if *deadline > now {
                break;
            }
            let Some(Reverse((_, aor))) = self.expiry.pop() else {
                break;
            };
            // Re-check against the live list: a refresh leaves this wheel
            // entry stale, and the refreshed deadline has its own entry.
            let Some(list) = self.bindings.get_mut(&aor) else {
                continue;
            };
            let before = list.len();
            list.retain(|b| b.expires > now);
            removed += before - list.len();
            if list.is_empty() {
                self.forget(&aor);
            }
        }
        self.contacts -= removed;
        removed
    }

    /// Drops expired bindings. Every binding has a wheel entry at its
    /// exact deadline, so this is the eager sweep under the old name.
    pub fn purge(&mut self, now: SimTime) {
        self.sweep(now);
    }

    /// Number of AORs with at least one binding (expired included until
    /// swept).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Total contact bindings across all AORs (expired included until
    /// swept) — the `sip.bindings` gauge.
    pub fn bindings_len(&self) -> usize {
        self.contacts
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates over `(aor, bindings)` in AOR order.
    pub fn iter(&self) -> impl Iterator<Item = (&Aor, &[Binding])> {
        self.order.iter().map(|a| (a, self.bindings[a].as_slice()))
    }

    /// Processes a REGISTER request against this table, returning the
    /// response to send. `default_expiry` applies when the request does not
    /// carry one.
    ///
    /// Handles refresh, de-registration (`Expires: 0`) and malformed
    /// requests (missing To/Contact → 500, wrong method → 500).
    pub fn handle_register(
        &mut self,
        req: &SipMessage,
        now: SimTime,
        default_expiry: SimDuration,
    ) -> SipMessage {
        if req.method() != Some(Method::Register) {
            return SipMessage::response_to(req, StatusCode::SERVER_ERROR);
        }
        let Some(to) = req.to_header() else {
            return SipMessage::response_to(req, StatusCode::SERVER_ERROR);
        };
        let Some(contact) = req.contact() else {
            return SipMessage::response_to(req, StatusCode::SERVER_ERROR);
        };
        let aor = to.uri.aor();
        let expires_secs = contact
            .expires_param()
            .or_else(|| req.expires())
            .unwrap_or(default_expiry.as_micros() as u32 / 1_000_000);
        if expires_secs == 0 {
            self.unbind(&aor, &contact.uri);
        } else {
            self.bind(
                aor,
                contact.uri.clone(),
                now + SimDuration::from_secs(expires_secs as u64),
            );
        }
        let mut resp = SipMessage::response_to(req, StatusCode::OK);
        resp.headers_mut().push("Contact", &contact);
        resp.headers_mut().push("Expires", expires_secs);
        resp
    }
}

impl std::fmt::Display for BindingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(no registrations)");
        }
        for (aor, list) in self.iter() {
            for b in list {
                writeln!(f, "{aor} -> {} (expires {})", b.contact, b.expires)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Headers;

    fn register_req(aor: &str, contact: &str, expires: Option<u32>) -> SipMessage {
        let uri: SipUri = format!("sip:{}", aor.split('@').nth(1).unwrap())
            .parse()
            .unwrap();
        let mut m = SipMessage::request(Method::Register, uri);
        let h: &mut Headers = m.headers_mut();
        h.push("Via", "SIP/2.0/UDP 10.0.0.1:5070;branch=z9hG4bK1");
        h.push("From", format!("<sip:{aor}>;tag=t1"));
        h.push("To", format!("<sip:{aor}>"));
        h.push("Call-ID", "reg-1");
        h.push("CSeq", "1 REGISTER");
        h.push("Contact", format!("<{contact}>"));
        if let Some(e) = expires {
            h.push("Expires", e);
        }
        m
    }

    #[test]
    fn register_binds_and_expires() {
        let mut t = BindingTable::new();
        let req = register_req("alice@voicehoc.ch", "sip:alice@10.0.0.1:5070", Some(60));
        let resp = t.handle_register(&req, SimTime::ZERO, SimDuration::from_secs(3600));
        assert_eq!(resp.status(), Some(StatusCode::OK));
        let aor = Aor::new("alice", "voicehoc.ch");
        assert!(t.lookup(&aor, SimTime::from_secs(59)).is_some());
        assert!(t.lookup(&aor, SimTime::from_secs(61)).is_none());
    }

    #[test]
    fn reregistration_refreshes_not_duplicates() {
        let mut t = BindingTable::new();
        let req = register_req("alice@voicehoc.ch", "sip:alice@10.0.0.1:5070", Some(60));
        t.handle_register(&req, SimTime::ZERO, SimDuration::from_secs(3600));
        t.handle_register(&req, SimTime::from_secs(30), SimDuration::from_secs(3600));
        let aor = Aor::new("alice", "voicehoc.ch");
        assert_eq!(t.lookup_all(&aor, SimTime::from_secs(80)).count(), 1);
        assert!(t.lookup(&aor, SimTime::from_secs(89)).is_some());
    }

    #[test]
    fn expires_zero_unbinds() {
        let mut t = BindingTable::new();
        t.handle_register(
            &register_req("alice@voicehoc.ch", "sip:alice@10.0.0.1:5070", Some(60)),
            SimTime::ZERO,
            SimDuration::from_secs(3600),
        );
        t.handle_register(
            &register_req("alice@voicehoc.ch", "sip:alice@10.0.0.1:5070", Some(0)),
            SimTime::from_secs(1),
            SimDuration::from_secs(3600),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn multiple_contacts_freshest_wins() {
        let mut t = BindingTable::new();
        let aor = Aor::new("bob", "voicehoc.ch");
        t.bind(
            aor.clone(),
            "sip:bob@10.0.0.2:5070".parse().unwrap(),
            SimTime::from_secs(100),
        );
        t.bind(
            aor.clone(),
            "sip:bob@10.0.0.3:5070".parse().unwrap(),
            SimTime::from_secs(200),
        );
        let b = t.lookup(&aor, SimTime::ZERO).unwrap();
        assert_eq!(b.contact.to_string(), "sip:bob@10.0.0.3:5070");
        assert_eq!(t.lookup_all(&aor, SimTime::ZERO).count(), 2);
    }

    #[test]
    fn purge_drops_expired() {
        let mut t = BindingTable::new();
        let aor = Aor::new("bob", "voicehoc.ch");
        t.bind(
            aor.clone(),
            "sip:bob@10.0.0.2:5070".parse().unwrap(),
            SimTime::from_secs(10),
        );
        t.purge(SimTime::from_secs(11));
        assert!(t.is_empty());
    }

    #[test]
    fn malformed_register_rejected() {
        let mut t = BindingTable::new();
        let mut req = register_req("alice@voicehoc.ch", "sip:alice@10.0.0.1:5070", None);
        req.headers_mut().remove("Contact");
        let resp = t.handle_register(&req, SimTime::ZERO, SimDuration::from_secs(3600));
        assert_eq!(resp.status(), Some(StatusCode::SERVER_ERROR));
        assert!(t.is_empty());
    }
}
