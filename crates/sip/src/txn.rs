//! SIP transaction layer (RFC 3261 §17 subset, UDP only).
//!
//! User agents and registrars embed a [`TransactionLayer`] to get reliable
//! request/response exchanges over the lossy MANET: client transactions
//! retransmit with T1 exponential backoff until a response or timeout;
//! server transactions absorb retransmitted requests by replaying their
//! last response, and retransmit final INVITE responses until acknowledged.
//!
//! Deviations from the RFC, chosen for simplicity and documented here:
//!
//! * the ACK for a 2xx reuses the INVITE's branch, so it matches the
//!   server transaction directly (stateless proxies on the path derive
//!   their branch deterministically from the incoming branch, preserving
//!   the match end-to-end);
//! * 2xx responses to INVITE are retransmitted by the server *transaction*
//!   rather than the TU;
//! * client transactions linger in `Completed` until their overall timer
//!   fires, re-surfacing retransmitted finals so the TU can re-ACK.

use std::collections::BTreeMap;
use std::sync::Arc;

use siphoc_simnet::fasthash::FastMap;
use siphoc_simnet::net::SocketAddr;
use siphoc_simnet::process::Ctx;
use siphoc_simnet::time::{SimDuration, SimTime};

use crate::headers::{Via, BRANCH_COOKIE};
use crate::msg::{Method, SipMessage};

/// Transaction timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    /// RTT estimate; base retransmission interval (RFC `T1`, 500 ms).
    pub t1: SimDuration,
    /// Retransmission interval cap (RFC `T2`, 4 s).
    pub t2: SimDuration,
    /// Overall transaction lifetime in units of T1 (RFC uses 64).
    pub timeout_t1_multiple: u64,
    /// Coalesce transaction deadlines onto a shared timer wheel with
    /// 100 ms ticks: 10k concurrent transactions occupy a handful of
    /// event-heap slots instead of one each. Off by default — the wheel
    /// quantizes deadlines, which shifts timer event timing, so enabling
    /// it changes deterministic traces (the load harness opts in; normal
    /// deployments keep RFC-exact timing).
    pub timer_wheel: bool,
}

impl Default for TxnConfig {
    fn default() -> TxnConfig {
        TxnConfig {
            t1: SimDuration::from_millis(500),
            t2: SimDuration::from_secs(4),
            timeout_t1_multiple: 64,
            timer_wheel: false,
        }
    }
}

/// Events the transaction layer surfaces to its transaction user.
/// Branch and key identifiers are shared `Arc<str>`s — the TU stores them
/// in its dialogs without copying the string.
#[derive(Debug)]
pub enum TxnEvent {
    /// A response matched a client transaction (provisional, final, or a
    /// re-surfaced retransmitted final).
    Response {
        /// Branch of the matching client transaction.
        branch: Arc<str>,
        /// The response.
        msg: SipMessage,
    },
    /// A new request arrived; answer it with
    /// [`TransactionLayer::respond`] using `key`.
    Request {
        /// Server-transaction key for responding.
        key: Arc<str>,
        /// The request.
        msg: SipMessage,
        /// Transport-level source.
        from: SocketAddr,
    },
    /// An ACK confirmed a final response (2xx ACKs are surfaced so the TU
    /// can complete its dialog; non-2xx ACKs are absorbed internally).
    Ack {
        /// The ACK request.
        msg: SipMessage,
    },
    /// A client transaction exhausted its retransmissions.
    Timeout {
        /// Branch of the timed-out transaction.
        branch: Arc<str>,
        /// The original request.
        msg: SipMessage,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Trying,
    Completed,
}

struct ClientTxn {
    branch: Arc<str>,
    msg: SipMessage,
    dst: SocketAddr,
    state: ClientState,
    interval: SimDuration,
    invite: bool,
    /// When the first flight left, for the `sip.txn_rtt_us` histogram.
    started_us: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Proceeding,
    Completed,
    Confirmed,
}

struct ServerTxn {
    id: u64,
    last_response: Option<SipMessage>,
    response_target: SocketAddr,
    state: ServerState,
    interval: SimDuration,
    invite: bool,
}

const KIND_RETRANS: u64 = 0;
const KIND_TIMEOUT: u64 = 1;
const KIND_SRV_RETRANS: u64 = 2;
const KIND_SRV_CLEANUP: u64 = 3;

/// Shared-wheel timer token: low 32 bits all set — an id/kind token can
/// never look like it (ids are 30-bit).
const WHEEL_TOKEN_SUFFIX: u64 = 0xffff_ffff;
/// Wheel granularity. Deadlines are quantized *up* to the next tick, so
/// every transaction in the same 100 ms window shares one heap timer.
const WHEEL_TICK_US: u64 = 100_000;

/// The transaction layer. Embed one per SIP element (UA, registrar).
pub struct TransactionLayer {
    cfg: TxnConfig,
    local_port: u16,
    token_base: u64,
    next_id: u64,
    clients: FastMap<Arc<str>, ClientTxn>,
    /// Timer-token id → branch, so timer dispatch is O(1) instead of a
    /// scan over every live transaction.
    client_by_id: FastMap<u64, Arc<str>>,
    servers: FastMap<Arc<str>, ServerTxn>,
    server_by_id: FastMap<u64, Arc<str>>,
    /// Shared timer wheel (only populated with `cfg.timer_wheel`):
    /// quantized deadline → the `(id, kind)` entries due at it. One ctx
    /// timer is armed per bucket, not per transaction.
    wheel: BTreeMap<SimTime, Vec<(u64, u8)>>,
    /// Reusable render buffer: every outgoing message is serialized here
    /// exactly once, so steady-state transmit allocates only the datagram
    /// payload itself.
    scratch: String,
}

impl std::fmt::Debug for TransactionLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionLayer")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

fn server_key(branch: &str, method: Method) -> String {
    // ACK matches its INVITE transaction.
    let m = match method {
        Method::Ack => Method::Invite,
        other => other,
    };
    let m = m.as_str();
    let mut key = String::with_capacity(branch.len() + 1 + m.len());
    key.push_str(branch);
    key.push('|');
    key.push_str(m);
    key
}

impl TransactionLayer {
    /// Creates a layer sending from `local_port`. Timer tokens the layer
    /// arms all satisfy [`TransactionLayer::owns_token`] with respect to
    /// `token_base`; the owning process must route those tokens to
    /// [`TransactionLayer::on_timer`]. Pick a base whose low 32 bits are
    /// zero and which does not collide with the owner's own tokens.
    pub fn new(local_port: u16, token_base: u64, cfg: TxnConfig) -> TransactionLayer {
        TransactionLayer {
            cfg,
            local_port,
            token_base,
            next_id: 0,
            clients: FastMap::default(),
            client_by_id: FastMap::default(),
            servers: FastMap::default(),
            server_by_id: FastMap::default(),
            wheel: BTreeMap::new(),
            scratch: String::new(),
        }
    }

    /// Whether `token` belongs to this layer.
    pub fn owns_token(&self, token: u64) -> bool {
        token & !0xffff_ffff == self.token_base
    }

    /// Number of live client transactions.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Live transactions in either role — the `sip.txn_active` gauge.
    pub fn active_count(&self) -> usize {
        self.clients.len() + self.servers.len()
    }

    /// Generates a fresh RFC 3261 branch value.
    pub fn new_branch(&mut self, ctx: &mut Ctx<'_>) -> String {
        format!("{BRANCH_COOKIE}{:016x}", ctx.rng().next_u64())
    }

    fn token(&self, id: u64, kind: u64) -> u64 {
        self.token_base | (id << 2) | kind
    }

    /// Arms a transaction deadline: a dedicated ctx timer normally, or a
    /// shared-wheel bucket when `cfg.timer_wheel` is set. A bucket arms
    /// one ctx timer the first time it is created; later transactions
    /// landing in the same 100 ms window ride along for free.
    fn arm(&mut self, ctx: &mut Ctx<'_>, delay: SimDuration, id: u64, kind: u64) {
        if !self.cfg.timer_wheel {
            ctx.set_timer(delay, self.token(id, kind));
            return;
        }
        let deadline = (ctx.now() + delay).as_micros();
        let slot = SimTime::from_micros(deadline.div_ceil(WHEEL_TICK_US) * WHEEL_TICK_US);
        let vacant = !self.wheel.contains_key(&slot);
        self.wheel.entry(slot).or_default().push((id, kind as u8));
        if vacant {
            ctx.set_timer(slot - ctx.now(), self.token_base | WHEEL_TOKEN_SUFFIX);
        }
    }

    /// Sends `self.scratch` (already rendered) and counts it, optionally
    /// under an extra counter first (retransmit/replay bookkeeping).
    fn send_scratch(&mut self, ctx: &mut Ctx<'_>, dst: SocketAddr, extra: Option<&'static str>) {
        if let Some(name) = extra {
            ctx.stats().count(name, self.scratch.len());
        }
        ctx.stats().count("sip.txn_tx", self.scratch.len());
        ctx.send_to(dst, self.local_port, self.scratch.as_bytes().to_vec());
    }

    fn transmit(&mut self, ctx: &mut Ctx<'_>, msg: &SipMessage, dst: SocketAddr) {
        let mut scratch = std::mem::take(&mut self.scratch);
        msg.render_into(&mut scratch);
        self.scratch = scratch;
        self.send_scratch(ctx, dst, None);
    }

    /// Starts a client transaction: stamps a new Via (sent from this node
    /// and port), transmits, and arms retransmission and timeout timers.
    /// Returns the branch identifying the transaction.
    pub fn send_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        mut msg: SipMessage,
        dst: SocketAddr,
    ) -> Arc<str> {
        let branch = self.new_branch(ctx);
        let via = Via::new(SocketAddr::new(ctx.addr(), self.local_port), &branch);
        msg.headers_mut().push_front("Via", via);
        let branch: Arc<str> = branch.into();
        self.send_request_with_branch(ctx, msg, dst, branch.clone());
        branch
    }

    /// Starts a client transaction for a message that already carries its
    /// top Via with `branch` (used when the caller controls Via contents,
    /// e.g. to reuse the INVITE branch on a 2xx ACK).
    pub fn send_request_with_branch(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        dst: SocketAddr,
        branch: Arc<str>,
    ) {
        let invite = msg.method() == Some(Method::Invite);
        let is_ack = msg.method() == Some(Method::Ack);
        self.transmit(ctx, &msg, dst);
        if is_ack {
            return; // ACK is fire-and-forget at the transaction layer.
        }
        let id = self.next_id;
        self.next_id += 1;
        let txn = ClientTxn {
            branch: branch.clone(),
            msg,
            dst,
            state: ClientState::Trying,
            interval: self.cfg.t1,
            invite,
            started_us: ctx.now_us(),
        };
        self.arm(ctx, self.cfg.t1, id, KIND_RETRANS);
        self.arm(
            ctx,
            self.cfg.t1 * self.cfg.timeout_t1_multiple,
            id,
            KIND_TIMEOUT,
        );
        self.client_by_id.insert(id, branch.clone());
        self.clients.insert(branch, txn);
    }

    /// Sends a response for the server transaction `key`; final responses
    /// to INVITE are retransmitted until acknowledged.
    pub fn respond(&mut self, ctx: &mut Ctx<'_>, key: &str, resp: SipMessage) {
        let Some(txn) = self.servers.get_mut(key) else {
            return;
        };
        let target = txn.response_target;
        let is_final = resp.status().map(|s| s.is_final()).unwrap_or(false);
        let (id, invite) = (txn.id, txn.invite);
        if is_final {
            txn.state = ServerState::Completed;
        }
        // Render once into the scratch buffer, then store the response
        // without cloning it.
        let mut scratch = std::mem::take(&mut self.scratch);
        resp.render_into(&mut scratch);
        self.scratch = scratch;
        self.servers
            .get_mut(key)
            .expect("looked up above")
            .last_response = Some(resp);
        if is_final {
            if invite {
                self.arm(ctx, self.cfg.t1, id, KIND_SRV_RETRANS);
            }
            self.arm(
                ctx,
                self.cfg.t1 * self.cfg.timeout_t1_multiple,
                id,
                KIND_SRV_CLEANUP,
            );
        }
        self.send_scratch(ctx, target, None);
    }

    /// Handles a SIP message arriving on the layer's port. Returns the
    /// event the TU must process, if any.
    pub fn on_datagram(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        from: SocketAddr,
    ) -> Option<TxnEvent> {
        if msg.is_request() {
            self.on_request(ctx, msg, from)
        } else {
            self.on_response(ctx, msg)
        }
    }

    fn on_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        from: SocketAddr,
    ) -> Option<TxnEvent> {
        let method = msg.method()?;
        let via = msg.top_via()?;
        let key = server_key(&via.branch, method);

        if method == Method::Ack {
            match self.servers.get_mut(key.as_str()) {
                Some(txn) => {
                    let final_was_2xx = txn
                        .last_response
                        .as_ref()
                        .and_then(SipMessage::status)
                        .map(|s| s.is_success())
                        .unwrap_or(false);
                    let first_ack = txn.state != ServerState::Confirmed;
                    txn.state = ServerState::Confirmed;
                    if final_was_2xx && first_ack {
                        return Some(TxnEvent::Ack { msg });
                    }
                    return None;
                }
                // ACK without a matching transaction: hand to the TU.
                None => return Some(TxnEvent::Ack { msg }),
            }
        }

        if self.servers.contains_key(key.as_str()) {
            // Retransmitted request: replay the last response, rendered
            // straight from the stored message — no clone.
            let mut scratch = std::mem::take(&mut self.scratch);
            let txn = &self.servers[key.as_str()];
            let target = txn.response_target;
            let has_resp = match &txn.last_response {
                Some(resp) => {
                    resp.render_into(&mut scratch);
                    true
                }
                None => false,
            };
            self.scratch = scratch;
            if has_resp {
                self.send_scratch(ctx, target, Some("sip.txn_replay"));
            }
            return None;
        }

        let id = self.next_id;
        self.next_id += 1;
        let key: Arc<str> = key.into();
        let txn = ServerTxn {
            id,
            last_response: None,
            response_target: via.response_target(),
            state: ServerState::Proceeding,
            interval: self.cfg.t1,
            invite: method == Method::Invite,
        };
        self.server_by_id.insert(id, key.clone());
        self.servers.insert(key.clone(), txn);
        Some(TxnEvent::Request { key, msg, from })
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage) -> Option<TxnEvent> {
        let via = msg.top_via()?;
        let txn = self.clients.get_mut(via.branch.as_str())?;
        // CSeq method must match the request's.
        if msg.cseq().map(|c| c.method) != txn.msg.cseq().map(|c| c.method) {
            return None;
        }
        let final_resp = msg.status().map(|s| s.is_final()).unwrap_or(false);
        if final_resp && txn.state == ClientState::Trying {
            txn.state = ClientState::Completed;
            let rtt = ctx.now_us().saturating_sub(txn.started_us);
            ctx.obs().hist_record("sip.txn_rtt_us", rtt);
        }
        let branch = txn.branch.clone();
        Some(TxnEvent::Response { branch, msg })
    }

    /// Handles one of the layer's timer tokens. A shared-wheel token may
    /// resolve several coalesced deadlines at once, so the result is a
    /// list; an empty list performs no allocation.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> Vec<TxnEvent> {
        debug_assert!(self.owns_token(token));
        if token & WHEEL_TOKEN_SUFFIX == WHEEL_TOKEN_SUFFIX {
            return self.on_wheel(ctx);
        }
        let kind = token & 0b11;
        let id = (token & 0xffff_ffff) >> 2;
        match self.fire(ctx, id, kind) {
            Some(ev) => vec![ev],
            None => Vec::new(),
        }
    }

    /// Drains every due wheel bucket. Entries whose transaction is gone
    /// (timed out, cleaned up) miss the id map and are skipped — the
    /// wheel never needs explicit cancellation.
    fn on_wheel(&mut self, ctx: &mut Ctx<'_>) -> Vec<TxnEvent> {
        let now = ctx.now();
        let mut events = Vec::new();
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() > now {
                break;
            }
            let due = entry.remove();
            for (id, kind) in due {
                if let Some(ev) = self.fire(ctx, id, kind as u64) {
                    events.push(ev);
                }
            }
        }
        events
    }

    /// Resolves one `(id, kind)` deadline. O(1): the id maps point
    /// straight at the transaction, no scan.
    fn fire(&mut self, ctx: &mut Ctx<'_>, id: u64, kind: u64) -> Option<TxnEvent> {
        match kind {
            KIND_RETRANS => {
                let branch = self.client_by_id.get(&id)?.clone();
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut send = None;
                if let Some(txn) = self.clients.get_mut(&branch) {
                    if txn.state == ClientState::Trying {
                        txn.interval = if txn.invite {
                            txn.interval * 2
                        } else {
                            (txn.interval * 2).min_dur(self.cfg.t2)
                        };
                        txn.msg.render_into(&mut scratch);
                        send = Some((txn.dst, txn.interval));
                    }
                }
                self.scratch = scratch;
                if let Some((dst, next)) = send {
                    self.send_scratch(ctx, dst, Some("sip.txn_retx"));
                    self.arm(ctx, next, id, KIND_RETRANS);
                }
                None
            }
            KIND_TIMEOUT => {
                let branch = self.client_by_id.remove(&id)?;
                let txn = self.clients.remove(&branch)?;
                if txn.state == ClientState::Trying {
                    Some(TxnEvent::Timeout {
                        branch,
                        msg: txn.msg,
                    })
                } else {
                    None
                }
            }
            KIND_SRV_RETRANS => {
                let key = self.server_by_id.get(&id)?.clone();
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut send = None;
                if let Some(txn) = self.servers.get_mut(&key) {
                    if txn.state == ServerState::Completed {
                        if let Some(resp) = &txn.last_response {
                            resp.render_into(&mut scratch);
                            txn.interval = (txn.interval * 2).min_dur(self.cfg.t2);
                            send = Some((txn.response_target, txn.interval));
                        }
                    }
                }
                self.scratch = scratch;
                if let Some((target, next)) = send {
                    self.send_scratch(ctx, target, Some("sip.txn_retx"));
                    self.arm(ctx, next, id, KIND_SRV_RETRANS);
                }
                None
            }
            KIND_SRV_CLEANUP => {
                let key = self.server_by_id.remove(&id)?;
                self.servers.remove(&key);
                None
            }
            _ => None,
        }
    }
}

trait MinDur {
    fn min_dur(self, other: SimDuration) -> SimDuration;
}

impl MinDur for SimDuration {
    fn min_dur(self, other: SimDuration) -> SimDuration {
        if self < other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::StatusCode;
    use crate::uri::SipUri;
    use siphoc_simnet::net::Datagram;
    use siphoc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Minimal transaction user: a client that fires one OPTIONS request,
    /// and a server that answers after an optional delay.
    struct TxnPeer {
        layer: TransactionLayer,
        port: u16,
        send_to: Option<SocketAddr>,
        answer: bool,
        log: Rc<RefCell<Vec<String>>>,
    }

    impl TxnPeer {
        fn new(
            port: u16,
            send_to: Option<SocketAddr>,
            answer: bool,
        ) -> (TxnPeer, Rc<RefCell<Vec<String>>>) {
            let log = Rc::new(RefCell::new(Vec::new()));
            (
                TxnPeer {
                    layer: TransactionLayer::new(port, 0x1_0000_0000, TxnConfig::default()),
                    port,
                    send_to,
                    answer,
                    log: log.clone(),
                },
                log,
            )
        }

        fn options(&self, ctx: &mut Ctx<'_>) -> SipMessage {
            let uri: SipUri = "sip:peer@10.0.0.2".parse().unwrap();
            let mut m = SipMessage::request(Method::Options, uri);
            m.headers_mut().push("From", "<sip:me@10.0.0.1>;tag=a");
            m.headers_mut().push("To", "<sip:peer@10.0.0.2>");
            m.headers_mut()
                .push("Call-ID", format!("cid-{}", ctx.rng().next_u64()));
            m.headers_mut().push("CSeq", "1 OPTIONS");
            m.headers_mut().push("Max-Forwards", 70);
            m
        }
    }

    impl Process for TxnPeer {
        fn name(&self) -> &'static str {
            "txn-peer"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(self.port);
            if let Some(dst) = self.send_to {
                let msg = self.options(ctx);
                self.layer.send_request(ctx, msg, dst);
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
            let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
                return;
            };
            match self.layer.on_datagram(ctx, msg, dgram.src) {
                Some(TxnEvent::Request { key, msg, .. }) => {
                    self.log.borrow_mut().push("request".into());
                    if self.answer {
                        let resp = SipMessage::response_to(&msg, StatusCode::OK);
                        self.layer.respond(ctx, &key, resp);
                    }
                }
                Some(TxnEvent::Response { msg, .. }) => {
                    self.log
                        .borrow_mut()
                        .push(format!("response {}", msg.status().unwrap().0));
                }
                Some(TxnEvent::Timeout { .. }) => self.log.borrow_mut().push("timeout".into()),
                Some(TxnEvent::Ack { .. }) => self.log.borrow_mut().push("ack".into()),
                None => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if self.layer.owns_token(token) {
                for ev in self.layer.on_timer(ctx, token) {
                    if matches!(ev, TxnEvent::Timeout { .. }) {
                        self.log.borrow_mut().push("timeout".into());
                    }
                }
            }
        }
    }

    fn two_nodes(loss: LossModel) -> (World, NodeId, NodeId) {
        let radio = RadioConfig {
            loss,
            ..RadioConfig::ideal()
        };
        let mut w = World::new(WorldConfig::new(11).with_radio(radio));
        let a = w.add_node(NodeConfig::manet(0.0, 0.0));
        let b = w.add_node(NodeConfig::manet(50.0, 0.0));
        // Static neighbor routes; the txn tests are not about routing.
        let (aa, ba) = (w.node(a).addr(), w.node(b).addr());
        w.install_route(
            a,
            ba,
            Route {
                next_hop: ba,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );
        w.install_route(
            b,
            aa,
            Route {
                next_hop: aa,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );
        (w, a, b)
    }

    #[test]
    fn request_response_over_clean_link() {
        let (mut w, a, b) = two_nodes(LossModel::IDEAL);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, slog) = TxnPeer::new(5080, None, true);
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(2));
        assert_eq!(slog.borrow().as_slice(), ["request"]);
        assert_eq!(clog.borrow().as_slice(), ["response 200"]);
    }

    #[test]
    fn retransmission_recovers_from_heavy_loss() {
        // 60% loss per frame: the first attempts will almost surely fail,
        // retransmission must push it through eventually.
        let loss = LossModel {
            base: 0.6,
            clear_fraction: 1.0,
            edge_loss: 0.0,
        };
        let (mut w, a, b) = two_nodes(loss);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, slog) = TxnPeer::new(5080, None, true);
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(40));
        assert!(
            slog.borrow().contains(&"request".to_string()),
            "request never arrived"
        );
        assert!(
            clog.borrow().iter().any(|e| e == "response 200"),
            "response never arrived: {:?}",
            clog.borrow()
        );
        // Server saw exactly ONE logical request despite retransmissions.
        assert_eq!(slog.borrow().iter().filter(|e| *e == "request").count(), 1);
    }

    #[test]
    fn unanswered_request_times_out() {
        let (mut w, a, b) = two_nodes(LossModel::IDEAL);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, _slog) = TxnPeer::new(5080, None, false); // never answers
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(40));
        assert!(clog.borrow().contains(&"timeout".to_string()));
    }
}
