//! SIP transaction layer (RFC 3261 §17 subset, UDP only).
//!
//! User agents and registrars embed a [`TransactionLayer`] to get reliable
//! request/response exchanges over the lossy MANET: client transactions
//! retransmit with T1 exponential backoff until a response or timeout;
//! server transactions absorb retransmitted requests by replaying their
//! last response, and retransmit final INVITE responses until acknowledged.
//!
//! Deviations from the RFC, chosen for simplicity and documented here:
//!
//! * the ACK for a 2xx reuses the INVITE's branch, so it matches the
//!   server transaction directly (stateless proxies on the path derive
//!   their branch deterministically from the incoming branch, preserving
//!   the match end-to-end);
//! * 2xx responses to INVITE are retransmitted by the server *transaction*
//!   rather than the TU;
//! * client transactions linger in `Completed` until their overall timer
//!   fires, re-surfacing retransmitted finals so the TU can re-ACK.

use std::collections::BTreeMap;

use siphoc_simnet::net::SocketAddr;
use siphoc_simnet::process::Ctx;
use siphoc_simnet::time::SimDuration;

use crate::headers::{Via, BRANCH_COOKIE};
use crate::msg::{Method, SipMessage};

/// Transaction timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TxnConfig {
    /// RTT estimate; base retransmission interval (RFC `T1`, 500 ms).
    pub t1: SimDuration,
    /// Retransmission interval cap (RFC `T2`, 4 s).
    pub t2: SimDuration,
    /// Overall transaction lifetime in units of T1 (RFC uses 64).
    pub timeout_t1_multiple: u64,
}

impl Default for TxnConfig {
    fn default() -> TxnConfig {
        TxnConfig {
            t1: SimDuration::from_millis(500),
            t2: SimDuration::from_secs(4),
            timeout_t1_multiple: 64,
        }
    }
}

/// Events the transaction layer surfaces to its transaction user.
#[derive(Debug)]
pub enum TxnEvent {
    /// A response matched a client transaction (provisional, final, or a
    /// re-surfaced retransmitted final).
    Response {
        /// Branch of the matching client transaction.
        branch: String,
        /// The response.
        msg: SipMessage,
    },
    /// A new request arrived; answer it with
    /// [`TransactionLayer::respond`] using `key`.
    Request {
        /// Server-transaction key for responding.
        key: String,
        /// The request.
        msg: SipMessage,
        /// Transport-level source.
        from: SocketAddr,
    },
    /// An ACK confirmed a final response (2xx ACKs are surfaced so the TU
    /// can complete its dialog; non-2xx ACKs are absorbed internally).
    Ack {
        /// The ACK request.
        msg: SipMessage,
    },
    /// A client transaction exhausted its retransmissions.
    Timeout {
        /// Branch of the timed-out transaction.
        branch: String,
        /// The original request.
        msg: SipMessage,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Trying,
    Completed,
}

struct ClientTxn {
    id: u64,
    branch: String,
    msg: SipMessage,
    dst: SocketAddr,
    state: ClientState,
    interval: SimDuration,
    invite: bool,
    /// When the first flight left, for the `sip.txn_rtt_us` histogram.
    started_us: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    Proceeding,
    Completed,
    Confirmed,
}

struct ServerTxn {
    id: u64,
    key: String,
    last_response: Option<SipMessage>,
    response_target: SocketAddr,
    state: ServerState,
    interval: SimDuration,
    invite: bool,
}

const KIND_RETRANS: u64 = 0;
const KIND_TIMEOUT: u64 = 1;
const KIND_SRV_RETRANS: u64 = 2;
const KIND_SRV_CLEANUP: u64 = 3;

/// The transaction layer. Embed one per SIP element (UA, registrar).
pub struct TransactionLayer {
    cfg: TxnConfig,
    local_port: u16,
    token_base: u64,
    next_id: u64,
    clients: BTreeMap<String, ClientTxn>,
    servers: BTreeMap<String, ServerTxn>,
}

impl std::fmt::Debug for TransactionLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransactionLayer")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .finish_non_exhaustive()
    }
}

fn server_key(branch: &str, method: Method) -> String {
    // ACK matches its INVITE transaction.
    let m = match method {
        Method::Ack => Method::Invite,
        other => other,
    };
    format!("{branch}|{m}")
}

impl TransactionLayer {
    /// Creates a layer sending from `local_port`. Timer tokens the layer
    /// arms all satisfy [`TransactionLayer::owns_token`] with respect to
    /// `token_base`; the owning process must route those tokens to
    /// [`TransactionLayer::on_timer`]. Pick a base whose low 32 bits are
    /// zero and which does not collide with the owner's own tokens.
    pub fn new(local_port: u16, token_base: u64, cfg: TxnConfig) -> TransactionLayer {
        TransactionLayer {
            cfg,
            local_port,
            token_base,
            next_id: 0,
            clients: BTreeMap::new(),
            servers: BTreeMap::new(),
        }
    }

    /// Whether `token` belongs to this layer.
    pub fn owns_token(&self, token: u64) -> bool {
        token & !0xffff_ffff == self.token_base
    }

    /// Number of live client transactions.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Generates a fresh RFC 3261 branch value.
    pub fn new_branch(&mut self, ctx: &mut Ctx<'_>) -> String {
        format!("{BRANCH_COOKIE}{:016x}", ctx.rng().next_u64())
    }

    fn token(&self, id: u64, kind: u64) -> u64 {
        self.token_base | (id << 2) | kind
    }

    fn transmit(&self, ctx: &mut Ctx<'_>, msg: &SipMessage, dst: SocketAddr) {
        ctx.stats().count("sip.txn_tx", msg.to_wire().len());
        ctx.send_to(dst, self.local_port, msg.to_bytes());
    }

    /// Starts a client transaction: stamps a new Via (sent from this node
    /// and port), transmits, and arms retransmission and timeout timers.
    /// Returns the branch identifying the transaction.
    pub fn send_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        mut msg: SipMessage,
        dst: SocketAddr,
    ) -> String {
        let branch = self.new_branch(ctx);
        let via = Via::new(SocketAddr::new(ctx.addr(), self.local_port), &branch);
        msg.headers_mut().push_front("Via", via);
        self.send_request_with_branch(ctx, msg, dst, branch.clone());
        branch
    }

    /// Starts a client transaction for a message that already carries its
    /// top Via with `branch` (used when the caller controls Via contents,
    /// e.g. to reuse the INVITE branch on a 2xx ACK).
    pub fn send_request_with_branch(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        dst: SocketAddr,
        branch: String,
    ) {
        let invite = msg.method() == Some(Method::Invite);
        let is_ack = msg.method() == Some(Method::Ack);
        self.transmit(ctx, &msg, dst);
        if is_ack {
            return; // ACK is fire-and-forget at the transaction layer.
        }
        let id = self.next_id;
        self.next_id += 1;
        let txn = ClientTxn {
            id,
            branch: branch.clone(),
            msg,
            dst,
            state: ClientState::Trying,
            interval: self.cfg.t1,
            invite,
            started_us: ctx.now_us(),
        };
        ctx.set_timer(self.cfg.t1, self.token(id, KIND_RETRANS));
        ctx.set_timer(
            self.cfg.t1 * self.cfg.timeout_t1_multiple,
            self.token(id, KIND_TIMEOUT),
        );
        self.clients.insert(branch, txn);
    }

    /// Sends a response for the server transaction `key`; final responses
    /// to INVITE are retransmitted until acknowledged.
    pub fn respond(&mut self, ctx: &mut Ctx<'_>, key: &str, resp: SipMessage) {
        let Some(txn) = self.servers.get_mut(key) else {
            return;
        };
        let target = txn.response_target;
        let is_final = resp.status().map(|s| s.is_final()).unwrap_or(false);
        txn.last_response = Some(resp.clone());
        let (id, invite) = (txn.id, txn.invite);
        if is_final {
            txn.state = ServerState::Completed;
            if invite {
                ctx.set_timer(self.cfg.t1, self.token(id, KIND_SRV_RETRANS));
            }
            ctx.set_timer(
                self.cfg.t1 * self.cfg.timeout_t1_multiple,
                self.token(id, KIND_SRV_CLEANUP),
            );
        }
        self.transmit(ctx, &resp, target);
    }

    /// Handles a SIP message arriving on the layer's port. Returns the
    /// event the TU must process, if any.
    pub fn on_datagram(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        from: SocketAddr,
    ) -> Option<TxnEvent> {
        if msg.is_request() {
            self.on_request(ctx, msg, from)
        } else {
            self.on_response(ctx, msg)
        }
    }

    fn on_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SipMessage,
        from: SocketAddr,
    ) -> Option<TxnEvent> {
        let method = msg.method()?;
        let via = msg.top_via()?;
        let key = server_key(&via.branch, method);

        if method == Method::Ack {
            match self.servers.get_mut(&key) {
                Some(txn) => {
                    let final_was_2xx = txn
                        .last_response
                        .as_ref()
                        .and_then(SipMessage::status)
                        .map(|s| s.is_success())
                        .unwrap_or(false);
                    let first_ack = txn.state != ServerState::Confirmed;
                    txn.state = ServerState::Confirmed;
                    if final_was_2xx && first_ack {
                        return Some(TxnEvent::Ack { msg });
                    }
                    return None;
                }
                // ACK without a matching transaction: hand to the TU.
                None => return Some(TxnEvent::Ack { msg }),
            }
        }

        if let Some(txn) = self.servers.get(&key) {
            // Retransmitted request: replay the last response.
            if let Some(resp) = txn.last_response.clone() {
                let target = txn.response_target;
                ctx.stats().count("sip.txn_replay", resp.to_wire().len());
                self.transmit(ctx, &resp, target);
            }
            return None;
        }

        let id = self.next_id;
        self.next_id += 1;
        let txn = ServerTxn {
            id,
            key: key.clone(),
            last_response: None,
            response_target: via.response_target(),
            state: ServerState::Proceeding,
            interval: self.cfg.t1,
            invite: method == Method::Invite,
        };
        self.servers.insert(key.clone(), txn);
        Some(TxnEvent::Request { key, msg, from })
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage) -> Option<TxnEvent> {
        let via = msg.top_via()?;
        let txn = self.clients.get_mut(&via.branch)?;
        // CSeq method must match the request's.
        if msg.cseq().map(|c| c.method) != txn.msg.cseq().map(|c| c.method) {
            return None;
        }
        let final_resp = msg.status().map(|s| s.is_final()).unwrap_or(false);
        if final_resp && txn.state == ClientState::Trying {
            txn.state = ClientState::Completed;
            let rtt = ctx.now_us().saturating_sub(txn.started_us);
            ctx.obs().hist_record("sip.txn_rtt_us", rtt);
        }
        let branch = txn.branch.clone();
        Some(TxnEvent::Response { branch, msg })
    }

    /// Handles one of the layer's timer tokens.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> Option<TxnEvent> {
        debug_assert!(self.owns_token(token));
        let kind = token & 0b11;
        let id = (token & 0xffff_ffff) >> 2;
        match kind {
            KIND_RETRANS => {
                let txn = self.clients.values_mut().find(|t| t.id == id)?;
                if txn.state != ClientState::Trying {
                    return None;
                }
                let msg = txn.msg.clone();
                let dst = txn.dst;
                txn.interval = if txn.invite {
                    txn.interval * 2
                } else {
                    (txn.interval * 2).min_dur(self.cfg.t2)
                };
                let next = txn.interval;
                let tok = self.token(id, KIND_RETRANS);
                ctx.stats().count("sip.txn_retx", msg.to_wire().len());
                self.transmit(ctx, &msg, dst);
                ctx.set_timer(next, tok);
                None
            }
            KIND_TIMEOUT => {
                let branch = self.clients.iter().find(|(_, t)| t.id == id)?.0.clone();
                let txn = self.clients.remove(&branch)?;
                if txn.state == ClientState::Trying {
                    Some(TxnEvent::Timeout {
                        branch,
                        msg: txn.msg,
                    })
                } else {
                    None
                }
            }
            KIND_SRV_RETRANS => {
                let txn = self.servers.values_mut().find(|t| t.id == id)?;
                if txn.state != ServerState::Completed {
                    return None;
                }
                let resp = txn.last_response.clone()?;
                let target = txn.response_target;
                txn.interval = (txn.interval * 2).min_dur(self.cfg.t2);
                let next = txn.interval;
                let tok = self.token(id, KIND_SRV_RETRANS);
                ctx.stats().count("sip.txn_retx", resp.to_wire().len());
                self.transmit(ctx, &resp, target);
                ctx.set_timer(next, tok);
                None
            }
            KIND_SRV_CLEANUP => {
                let key = self
                    .servers
                    .values()
                    .find(|t| t.id == id)
                    .map(|t| t.key.clone())?;
                self.servers.remove(&key);
                None
            }
            _ => None,
        }
    }
}

trait MinDur {
    fn min_dur(self, other: SimDuration) -> SimDuration;
}

impl MinDur for SimDuration {
    fn min_dur(self, other: SimDuration) -> SimDuration {
        if self < other {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::StatusCode;
    use crate::uri::SipUri;
    use siphoc_simnet::net::Datagram;
    use siphoc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Minimal transaction user: a client that fires one OPTIONS request,
    /// and a server that answers after an optional delay.
    struct TxnPeer {
        layer: TransactionLayer,
        port: u16,
        send_to: Option<SocketAddr>,
        answer: bool,
        log: Rc<RefCell<Vec<String>>>,
    }

    impl TxnPeer {
        fn new(
            port: u16,
            send_to: Option<SocketAddr>,
            answer: bool,
        ) -> (TxnPeer, Rc<RefCell<Vec<String>>>) {
            let log = Rc::new(RefCell::new(Vec::new()));
            (
                TxnPeer {
                    layer: TransactionLayer::new(port, 0x1_0000_0000, TxnConfig::default()),
                    port,
                    send_to,
                    answer,
                    log: log.clone(),
                },
                log,
            )
        }

        fn options(&self, ctx: &mut Ctx<'_>) -> SipMessage {
            let uri: SipUri = "sip:peer@10.0.0.2".parse().unwrap();
            let mut m = SipMessage::request(Method::Options, uri);
            m.headers_mut().push("From", "<sip:me@10.0.0.1>;tag=a");
            m.headers_mut().push("To", "<sip:peer@10.0.0.2>");
            m.headers_mut()
                .push("Call-ID", format!("cid-{}", ctx.rng().next_u64()));
            m.headers_mut().push("CSeq", "1 OPTIONS");
            m.headers_mut().push("Max-Forwards", 70);
            m
        }
    }

    impl Process for TxnPeer {
        fn name(&self) -> &'static str {
            "txn-peer"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(self.port);
            if let Some(dst) = self.send_to {
                let msg = self.options(ctx);
                self.layer.send_request(ctx, msg, dst);
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
            let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
                return;
            };
            match self.layer.on_datagram(ctx, msg, dgram.src) {
                Some(TxnEvent::Request { key, msg, .. }) => {
                    self.log.borrow_mut().push("request".into());
                    if self.answer {
                        let resp = SipMessage::response_to(&msg, StatusCode::OK);
                        self.layer.respond(ctx, &key, resp);
                    }
                }
                Some(TxnEvent::Response { msg, .. }) => {
                    self.log
                        .borrow_mut()
                        .push(format!("response {}", msg.status().unwrap().0));
                }
                Some(TxnEvent::Timeout { .. }) => self.log.borrow_mut().push("timeout".into()),
                Some(TxnEvent::Ack { .. }) => self.log.borrow_mut().push("ack".into()),
                None => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if self.layer.owns_token(token) {
                if let Some(TxnEvent::Timeout { .. }) = self.layer.on_timer(ctx, token) {
                    self.log.borrow_mut().push("timeout".into());
                }
            }
        }
    }

    fn two_nodes(loss: LossModel) -> (World, NodeId, NodeId) {
        let radio = RadioConfig {
            loss,
            ..RadioConfig::ideal()
        };
        let mut w = World::new(WorldConfig::new(11).with_radio(radio));
        let a = w.add_node(NodeConfig::manet(0.0, 0.0));
        let b = w.add_node(NodeConfig::manet(50.0, 0.0));
        // Static neighbor routes; the txn tests are not about routing.
        let (aa, ba) = (w.node(a).addr(), w.node(b).addr());
        w.install_route(
            a,
            ba,
            Route {
                next_hop: ba,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );
        w.install_route(
            b,
            aa,
            Route {
                next_hop: aa,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );
        (w, a, b)
    }

    #[test]
    fn request_response_over_clean_link() {
        let (mut w, a, b) = two_nodes(LossModel::IDEAL);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, slog) = TxnPeer::new(5080, None, true);
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(2));
        assert_eq!(slog.borrow().as_slice(), ["request"]);
        assert_eq!(clog.borrow().as_slice(), ["response 200"]);
    }

    #[test]
    fn retransmission_recovers_from_heavy_loss() {
        // 60% loss per frame: the first attempts will almost surely fail,
        // retransmission must push it through eventually.
        let loss = LossModel {
            base: 0.6,
            clear_fraction: 1.0,
            edge_loss: 0.0,
        };
        let (mut w, a, b) = two_nodes(loss);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, slog) = TxnPeer::new(5080, None, true);
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(40));
        assert!(
            slog.borrow().contains(&"request".to_string()),
            "request never arrived"
        );
        assert!(
            clog.borrow().iter().any(|e| e == "response 200"),
            "response never arrived: {:?}",
            clog.borrow()
        );
        // Server saw exactly ONE logical request despite retransmissions.
        assert_eq!(slog.borrow().iter().filter(|e| *e == "request").count(), 1);
    }

    #[test]
    fn unanswered_request_times_out() {
        let (mut w, a, b) = two_nodes(LossModel::IDEAL);
        let dst = SocketAddr::new(w.node(b).addr(), 5080);
        let (client, clog) = TxnPeer::new(5080, Some(dst), false);
        let (server, _slog) = TxnPeer::new(5080, None, false); // never answers
        w.spawn(a, Box::new(client));
        w.spawn(b, Box::new(server));
        w.run_for(SimDuration::from_secs(40));
        assert!(clog.borrow().contains(&"timeout".to_string()));
    }
}
