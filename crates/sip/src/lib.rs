//! # siphoc-sip
//!
//! An RFC 3261 subset SIP stack: URIs, text wire format, transactions with
//! retransmission over lossy links, registration bindings, SDP
//! offer/answer, and a scriptable user agent — the "out-of-the-box VoIP
//! application" of the paper's demonstrations (Kphone/Twinkle/Minisip
//! stand-in). See the workspace `DESIGN.md` for how it plugs into SIPHoc.

#![warn(missing_docs)]

pub mod auth;
pub mod headers;
pub mod msg;
pub mod proxy;
pub mod registrar;
pub mod sdp;
pub mod txn;
pub mod ua;
pub mod uri;

/// Trace dissector for SIP signaling (ports 5060/5070-range): returns the
/// request line or status line as the info column.
pub fn sip_dissector(port: u16, payload: &[u8]) -> Option<(String, String)> {
    if !(port == 5060 || (5070..5100).contains(&port)) {
        return None;
    }
    let text = std::str::from_utf8(payload).ok()?;
    let first = text.lines().next()?;
    let looks_sip = first.ends_with("SIP/2.0") || first.starts_with("SIP/2.0 ");
    looks_sip.then(|| ("sip".to_owned(), first.to_owned()))
}
