//! Typed SIP header values.
//!
//! Headers are stored as text in [`crate::msg::Headers`]; this module
//! provides the structured views the stack actually computes with: `Via`
//! (routing of responses), name-addr values (`From`/`To`/`Contact` with
//! tags) and `CSeq`.

use std::fmt;
use std::str::FromStr;

use siphoc_simnet::net::SocketAddr;

use crate::uri::{ParseUriError, SipUri};

/// Magic cookie every RFC 3261 branch parameter starts with.
pub const BRANCH_COOKIE: &str = "z9hG4bK";

/// A `Via` header value: `SIP/2.0/UDP host:port;branch=...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Via {
    /// The `host:port` the message was sent from.
    pub sent_by: SocketAddr,
    /// The branch parameter (transaction id).
    pub branch: String,
    /// `received` parameter, when a downstream element recorded the actual
    /// source address.
    pub received: Option<SocketAddr>,
}

impl Via {
    /// Creates a Via for a message sent from `sent_by` with `branch`.
    pub fn new(sent_by: SocketAddr, branch: &str) -> Via {
        Via {
            sent_by,
            branch: branch.to_owned(),
            received: None,
        }
    }

    /// Where a response to this Via should be sent.
    pub fn response_target(&self) -> SocketAddr {
        self.received.unwrap_or(self.sent_by)
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIP/2.0/UDP {};branch={}", self.sent_by, self.branch)?;
        if let Some(r) = self.received {
            write!(f, ";received={}", r.addr)?;
        }
        Ok(())
    }
}

/// Error when parsing a typed header value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHeaderError {
    header: &'static str,
    input: String,
}

impl ParseHeaderError {
    fn new(header: &'static str, input: &str) -> ParseHeaderError {
        ParseHeaderError {
            header,
            input: input.to_owned(),
        }
    }
}

impl fmt::Display for ParseHeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} header: {:?}", self.header, self.input)
    }
}

impl std::error::Error for ParseHeaderError {}

impl From<ParseUriError> for ParseHeaderError {
    fn from(e: ParseUriError) -> ParseHeaderError {
        ParseHeaderError {
            header: "uri",
            input: e.to_string(),
        }
    }
}

impl FromStr for Via {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseHeaderError::new("Via", s);
        let rest = s.trim().strip_prefix("SIP/2.0/UDP").ok_or_else(err)?;
        let rest = rest.trim_start();
        let mut parts = rest.split(';');
        let sent_by: SocketAddr = parts
            .next()
            .ok_or_else(err)?
            .trim()
            .parse()
            .map_err(|_| err())?;
        let mut branch = None;
        let mut received = None;
        for p in parts {
            let p = p.trim();
            if let Some(b) = p.strip_prefix("branch=") {
                branch = Some(b.to_owned());
            } else if let Some(r) = p.strip_prefix("received=") {
                let addr = r.parse().map_err(|_| err())?;
                received = Some(SocketAddr::new(addr, sent_by.port));
            }
        }
        Ok(Via {
            sent_by,
            branch: branch.ok_or_else(err)?,
            received,
        })
    }
}

/// A name-addr header value: `"Display" <sip:uri>;tag=...` — the shape of
/// `From`, `To` and `Contact`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAddr {
    /// Optional display name.
    pub display: Option<String>,
    /// The wrapped URI.
    pub uri: SipUri,
    /// Header parameters (after the closing `>`), notably `tag`.
    pub params: Vec<(String, String)>,
}

impl NameAddr {
    /// Wraps a URI with no display name or parameters.
    pub fn new(uri: SipUri) -> NameAddr {
        NameAddr {
            display: None,
            uri,
            params: Vec::new(),
        }
    }

    /// The `tag` parameter, if present.
    pub fn tag(&self) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("tag"))
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) the `tag` parameter.
    pub fn set_tag(&mut self, tag: &str) {
        self.params.retain(|(n, _)| !n.eq_ignore_ascii_case("tag"));
        self.params.push(("tag".to_owned(), tag.to_owned()));
    }

    /// Returns self with the tag set (builder style).
    pub fn with_tag(mut self, tag: &str) -> NameAddr {
        self.set_tag(tag);
        self
    }

    /// The `expires` parameter parsed as seconds, if present (Contact).
    pub fn expires_param(&self) -> Option<u32> {
        self.params
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("expires"))
            .and_then(|(_, v)| v.parse().ok())
    }
}

impl fmt::Display for NameAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = &self.display {
            write!(f, "\"{d}\" ")?;
        }
        write!(f, "<{}>", self.uri)?;
        for (n, v) in &self.params {
            write!(f, ";{n}={v}")?;
        }
        Ok(())
    }
}

impl FromStr for NameAddr {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseHeaderError::new("name-addr", s);
        let s = s.trim();
        let (display, rest) = if let Some(stripped) = s.strip_prefix('"') {
            let end = stripped.find('"').ok_or_else(err)?;
            (
                Some(stripped[..end].to_owned()),
                stripped[end + 1..].trim_start(),
            )
        } else {
            (None, s)
        };
        let (uri_str, param_str) = if let Some(open) = rest.find('<') {
            let close = rest.find('>').ok_or_else(err)?;
            if close < open {
                return Err(err());
            }
            (&rest[open + 1..close], rest[close + 1..].trim_start())
        } else {
            // addr-spec form without angle brackets: params belong to header.
            match rest.split_once(';') {
                Some((u, p)) => (u, &rest[u.len() + 1..][..p.len()]),
                None => (rest, ""),
            }
        };
        let uri: SipUri = uri_str.trim().parse()?;
        let mut params = Vec::new();
        for p in param_str.split(';') {
            let p = p.trim();
            if p.is_empty() {
                continue;
            }
            let (n, v) = p.split_once('=').ok_or_else(err)?;
            params.push((n.to_owned(), v.to_owned()));
        }
        Ok(NameAddr {
            display,
            uri,
            params,
        })
    }
}

/// A `CSeq` header value: sequence number and method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CSeq {
    /// The sequence number.
    pub seq: u32,
    /// The method name (uppercase).
    pub method: String,
}

impl CSeq {
    /// Creates a CSeq.
    pub fn new(seq: u32, method: &str) -> CSeq {
        CSeq {
            seq,
            method: method.to_owned(),
        }
    }
}

impl fmt::Display for CSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.seq, self.method)
    }
}

impl FromStr for CSeq {
    type Err = ParseHeaderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseHeaderError::new("CSeq", s);
        let mut it = s.split_whitespace();
        let seq = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let method = it.next().ok_or_else(err)?.to_owned();
        if it.next().is_some() {
            return Err(err());
        }
        Ok(CSeq { seq, method })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_round_trip() {
        let v = Via::new("10.0.0.1:5060".parse().unwrap(), "z9hG4bKabc123");
        let s = v.to_string();
        assert_eq!(s, "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKabc123");
        assert_eq!(s.parse::<Via>().unwrap(), v);
    }

    #[test]
    fn via_with_received_targets_received() {
        let v: Via = "SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKx;received=10.0.0.9"
            .parse()
            .unwrap();
        assert_eq!(v.response_target().to_string(), "10.0.0.9:5060");
    }

    #[test]
    fn via_requires_branch() {
        assert!("SIP/2.0/UDP 10.0.0.1:5060".parse::<Via>().is_err());
        assert!("SIP/2.0/TCP 10.0.0.1:5060;branch=z9hG4bKx"
            .parse::<Via>()
            .is_err());
    }

    #[test]
    fn name_addr_round_trip_with_tag() {
        let na: NameAddr = "\"Alice\" <sip:alice@voicehoc.ch>;tag=77aa"
            .parse()
            .unwrap();
        assert_eq!(na.display.as_deref(), Some("Alice"));
        assert_eq!(na.tag(), Some("77aa"));
        assert_eq!(na.to_string(), "\"Alice\" <sip:alice@voicehoc.ch>;tag=77aa");
    }

    #[test]
    fn name_addr_without_brackets() {
        let na: NameAddr = "sip:bob@10.0.0.2:5060".parse().unwrap();
        assert_eq!(na.uri.to_string(), "sip:bob@10.0.0.2:5060");
        assert!(na.tag().is_none());
    }

    #[test]
    fn set_tag_replaces_existing() {
        let mut na = NameAddr::new("sip:x@y.z".parse().unwrap()).with_tag("a");
        na.set_tag("b");
        assert_eq!(na.tag(), Some("b"));
        assert_eq!(na.params.len(), 1);
    }

    #[test]
    fn cseq_round_trip() {
        let c: CSeq = "314159 INVITE".parse().unwrap();
        assert_eq!(c, CSeq::new(314159, "INVITE"));
        assert_eq!(c.to_string(), "314159 INVITE");
        assert!("oops INVITE".parse::<CSeq>().is_err());
        assert!("1".parse::<CSeq>().is_err());
        assert!("1 INVITE extra".parse::<CSeq>().is_err());
    }
}
