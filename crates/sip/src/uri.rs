//! SIP URIs and addresses-of-record.
//!
//! The subset of RFC 3261 §19.1 the system needs: `sip:user@host[:port]`
//! with an optional parameter list. The *address-of-record* (AOR) — the
//! `user@domain` identity a user registers under, e.g.
//! `sip:Alice@voicehoc.ch` from paper Fig. 2 — is the key MANET SLP stores
//! bindings for.

use std::fmt;
use std::str::FromStr;

use siphoc_simnet::net::{Addr, SocketAddr};

/// A parsed SIP URI.
///
/// # Examples
///
/// ```
/// use siphoc_sip::uri::SipUri;
///
/// let uri: SipUri = "sip:alice@voicehoc.ch".parse()?;
/// assert_eq!(uri.user.as_deref(), Some("alice"));
/// assert_eq!(uri.host, "voicehoc.ch");
/// assert_eq!(uri.to_string(), "sip:alice@voicehoc.ch");
/// # Ok::<(), siphoc_sip::uri::ParseUriError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SipUri {
    /// User part, if any.
    pub user: Option<String>,
    /// Host: a domain name or a textual IP address.
    pub host: String,
    /// Explicit port, if any.
    pub port: Option<u16>,
    /// URI parameters in order, e.g. `[("transport", Some("udp"))]`.
    pub params: Vec<(String, Option<String>)>,
}

impl SipUri {
    /// Builds `sip:user@host`.
    pub fn new(user: &str, host: &str) -> SipUri {
        SipUri {
            user: Some(user.to_owned()),
            host: host.to_owned(),
            port: None,
            params: Vec::new(),
        }
    }

    /// Builds a user-less host URI `sip:host[:port]`.
    pub fn host_only(host: &str, port: Option<u16>) -> SipUri {
        SipUri {
            user: None,
            host: host.to_owned(),
            port,
            params: Vec::new(),
        }
    }

    /// Builds a URI whose host is a numeric simulator address.
    pub fn from_socket(user: Option<&str>, sock: SocketAddr) -> SipUri {
        SipUri {
            user: user.map(str::to_owned),
            host: sock.addr.to_string(),
            port: Some(sock.port),
            params: Vec::new(),
        }
    }

    /// The address-of-record: the URI stripped of port and parameters,
    /// with the host lowercased.
    pub fn aor(&self) -> Aor {
        Aor {
            user: self.user.clone().unwrap_or_default().to_lowercase(),
            domain: self.host.to_lowercase(),
        }
    }

    /// Attempts to interpret the host as a numeric simulator address.
    pub fn socket_addr(&self, default_port: u16) -> Option<SocketAddr> {
        let addr: Addr = self.host.parse().ok()?;
        Some(SocketAddr::new(addr, self.port.unwrap_or(default_port)))
    }

    /// Returns the value of parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .and_then(|(_, v)| v.as_deref())
    }

    /// Adds a parameter, returning `self` for chaining.
    pub fn with_param(mut self, name: &str, value: Option<&str>) -> SipUri {
        self.params
            .push((name.to_owned(), value.map(str::to_owned)));
        self
    }
}

impl fmt::Display for SipUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sip:")?;
        if let Some(u) = &self.user {
            write!(f, "{u}@")?;
        }
        write!(f, "{}", self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        for (n, v) in &self.params {
            match v {
                Some(v) => write!(f, ";{n}={v}")?,
                None => write!(f, ";{n}")?,
            }
        }
        Ok(())
    }
}

/// Error returned when a SIP URI fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUriError {
    input: String,
}

impl fmt::Display for ParseUriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SIP URI: {:?}", self.input)
    }
}

impl std::error::Error for ParseUriError {}

impl FromStr for SipUri {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseUriError {
            input: s.to_owned(),
        };
        let rest = s
            .strip_prefix("sip:")
            .or_else(|| s.strip_prefix("SIP:"))
            .ok_or_else(err)?;
        let (core, param_str) = match rest.split_once(';') {
            Some((c, p)) => (c, Some(p)),
            None => (rest, None),
        };
        let (user, hostport) = match core.split_once('@') {
            Some((u, h)) => (Some(u), h),
            None => (None, core),
        };
        if hostport.is_empty() {
            return Err(err());
        }
        let (host, port) = match hostport.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
                (h, Some(p.parse().map_err(|_| err())?))
            }
            _ => (hostport, None),
        };
        if host.is_empty() {
            return Err(err());
        }
        if let Some(u) = user {
            if u.is_empty() {
                return Err(err());
            }
        }
        let mut params = Vec::new();
        if let Some(ps) = param_str {
            for p in ps.split(';') {
                if p.is_empty() {
                    return Err(err());
                }
                match p.split_once('=') {
                    Some((n, v)) => params.push((n.to_owned(), Some(v.to_owned()))),
                    None => params.push((p.to_owned(), None)),
                }
            }
        }
        Ok(SipUri {
            user: user.map(str::to_owned),
            host: host.to_owned(),
            port,
            params,
        })
    }
}

/// An address-of-record: the stable `user@domain` identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Aor {
    /// User part (lowercased).
    pub user: String,
    /// Domain part (lowercased).
    pub domain: String,
}

impl Aor {
    /// Builds an AOR, normalizing case.
    pub fn new(user: &str, domain: &str) -> Aor {
        Aor {
            user: user.to_lowercase(),
            domain: domain.to_lowercase(),
        }
    }

    /// The AOR as a SIP URI.
    pub fn to_uri(&self) -> SipUri {
        SipUri::new(&self.user, &self.domain)
    }
}

impl fmt::Display for Aor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.user, self.domain)
    }
}

impl FromStr for Aor {
    type Err = ParseUriError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Accept both bare "user@domain" and full SIP URIs.
        if let Ok(uri) = s.parse::<SipUri>() {
            if uri.user.is_some() {
                return Ok(uri.aor());
            }
        }
        let (user, domain) = s.split_once('@').ok_or(ParseUriError {
            input: s.to_owned(),
        })?;
        if user.is_empty() || domain.is_empty() {
            return Err(ParseUriError {
                input: s.to_owned(),
            });
        }
        Ok(Aor::new(user, domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_uri() {
        let u: SipUri = "sip:bob@10.0.0.2:5060;transport=udp;lr".parse().unwrap();
        assert_eq!(u.user.as_deref(), Some("bob"));
        assert_eq!(u.host, "10.0.0.2");
        assert_eq!(u.port, Some(5060));
        assert_eq!(u.param("transport"), Some("udp"));
        assert_eq!(u.param("lr"), None);
        assert!(u.params.iter().any(|(n, _)| n == "lr"));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "sip:alice@voicehoc.ch",
            "sip:bob@10.0.0.2:5060",
            "sip:10.0.0.1:5060",
            "sip:carol@example.org;transport=udp",
        ] {
            let u: SipUri = s.parse().unwrap();
            assert_eq!(u.to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "alice@voicehoc.ch",
            "sip:",
            "sip:@host",
            "sip:user@",
            "sip:a@b;;",
        ] {
            assert!(s.parse::<SipUri>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn aor_normalizes_case_and_strips_port() {
        let u: SipUri = "sip:Alice@VoiceHoc.CH:5070".parse().unwrap();
        assert_eq!(u.aor(), Aor::new("alice", "voicehoc.ch"));
        assert_eq!(u.aor().to_string(), "alice@voicehoc.ch");
    }

    #[test]
    fn aor_parses_both_forms() {
        assert_eq!(
            "alice@voicehoc.ch".parse::<Aor>().unwrap(),
            Aor::new("alice", "voicehoc.ch")
        );
        assert_eq!(
            "sip:alice@voicehoc.ch".parse::<Aor>().unwrap(),
            Aor::new("alice", "voicehoc.ch")
        );
        assert!("nodomain".parse::<Aor>().is_err());
    }

    #[test]
    fn socket_addr_conversion() {
        let u: SipUri = "sip:bob@10.0.0.2".parse().unwrap();
        let sa = u.socket_addr(5060).unwrap();
        assert_eq!(sa.to_string(), "10.0.0.2:5060");
        let d: SipUri = "sip:bob@voicehoc.ch".parse().unwrap();
        assert!(d.socket_addr(5060).is_none(), "domain is not numeric");
    }

    #[test]
    fn numeric_host_with_port_parses() {
        let u = SipUri::from_socket(Some("alice"), "10.0.0.1:5070".parse().unwrap());
        assert_eq!(u.to_string(), "sip:alice@10.0.0.1:5070");
    }
}
