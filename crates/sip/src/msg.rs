//! SIP messages: methods, status codes, headers, requests and responses,
//! and the RFC 3261 text wire format.
//!
//! Messages serialize to and parse from real SIP text (`CRLF` line endings,
//! `SIP/2.0` version tokens), so the "out-of-the-box VoIP application"
//! claim of the paper is meaningful in the reproduction: the user agent and
//! the SIPHoc proxy interoperate purely through standard bytes.

use std::borrow::Cow;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

use crate::headers::{CSeq, NameAddr, Via};
use crate::uri::SipUri;

/// SIP request methods used by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Bind an AOR to a contact (RFC 3261 §10).
    Register,
    /// Initiate a session.
    Invite,
    /// Acknowledge a final INVITE response.
    Ack,
    /// Terminate a session.
    Bye,
    /// Cancel a pending INVITE.
    Cancel,
    /// Capability query / keep-alive.
    Options,
}

impl Method {
    /// The canonical uppercase token.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Register => "REGISTER",
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Method {
    type Err = ParseMsgError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "REGISTER" => Ok(Method::Register),
            "INVITE" => Ok(Method::Invite),
            "ACK" => Ok(Method::Ack),
            "BYE" => Ok(Method::Bye),
            "CANCEL" => Ok(Method::Cancel),
            "OPTIONS" => Ok(Method::Options),
            _ => Err(ParseMsgError::new("unsupported method")),
        }
    }
}

/// A response status code with its reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 100 Trying.
    pub const TRYING: StatusCode = StatusCode(100);
    /// 180 Ringing.
    pub const RINGING: StatusCode = StatusCode(180);
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 480 Temporarily Unavailable.
    pub const UNAVAILABLE: StatusCode = StatusCode(480);
    /// 486 Busy Here.
    pub const BUSY: StatusCode = StatusCode(486);
    /// 487 Request Terminated.
    pub const TERMINATED: StatusCode = StatusCode(487);
    /// 500 Server Internal Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Standard reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            100 => "Trying",
            180 => "Ringing",
            200 => "OK",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            480 => "Temporarily Unavailable",
            486 => "Busy Here",
            487 => "Request Terminated",
            500 => "Server Internal Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// `true` for 1xx.
    pub fn is_provisional(self) -> bool {
        (100..200).contains(&self.0)
    }

    /// `true` for anything ≥ 200.
    pub fn is_final(self) -> bool {
        self.0 >= 200
    }

    /// `true` for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// Interns the header names every message carries as `Cow::Borrowed` so
/// the signaling hot path allocates nothing for them. Matching is exact
/// (byte-for-byte) — interning must never canonicalize case, or a parsed
/// message would re-render differently than it arrived.
fn intern_name(name: &str) -> Cow<'static, str> {
    // Dispatch on length first so the common case is a single equality
    // check instead of a scan over a table.
    let known: Option<&'static str> = match name.len() {
        2 if name == "To" => Some("To"),
        3 if name == "Via" => Some("Via"),
        4 => match name {
            "From" => Some("From"),
            "CSeq" => Some("CSeq"),
            _ => None,
        },
        7 => match name {
            "Call-ID" => Some("Call-ID"),
            "Contact" => Some("Contact"),
            "Expires" => Some("Expires"),
            _ => None,
        },
        10 if name == "User-Agent" => Some("User-Agent"),
        12 => match name {
            "Max-Forwards" => Some("Max-Forwards"),
            "Content-Type" => Some("Content-Type"),
            _ => None,
        },
        14 if name == "Content-Length" => Some("Content-Length"),
        _ => None,
    };
    match known {
        Some(k) => Cow::Borrowed(k),
        None => Cow::Owned(name.to_owned()),
    }
}

/// An ordered, case-insensitive multimap of SIP headers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    items: Vec<(Cow<'static, str>, String)>,
}

impl Headers {
    /// Creates an empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Empty header set with room for `n` lines (hot-path constructors).
    fn with_capacity(n: usize) -> Headers {
        Headers {
            items: Vec::with_capacity(n),
        }
    }

    /// Appends a header.
    pub fn push(&mut self, name: &str, value: impl fmt::Display) {
        self.items.push((intern_name(name), value.to_string()));
    }

    /// Appends a header whose value is already rendered, skipping the
    /// `Display` round-trip. Hot-path builders pass cached strings here.
    pub fn push_owned(&mut self, name: &str, value: String) {
        self.items.push((intern_name(name), value));
    }

    /// Prepends a header (used for Via stacking at proxies).
    pub fn push_front(&mut self, name: &str, value: impl fmt::Display) {
        self.items.insert(0, (intern_name(name), value.to_string()));
    }

    /// First value of `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`, in order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.items
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Replaces every occurrence of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl fmt::Display) {
        self.remove(name);
        self.push(name, value);
    }

    /// Like [`Headers::set`] for an already-rendered value.
    pub fn set_owned(&mut self, name: &str, value: String) {
        self.remove(name);
        self.push_owned(name, value);
    }

    /// Removes every occurrence of `name`.
    pub fn remove(&mut self, name: &str) {
        self.items.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
    }

    /// Removes and returns the *first* occurrence of `name` (Via popping).
    pub fn remove_first(&mut self, name: &str) -> Option<String> {
        let idx = self
            .items
            .iter()
            .position(|(n, _)| n.eq_ignore_ascii_case(name))?;
        Some(self.items.remove(idx).1)
    }

    /// Iterates `(name, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.items.iter().map(|(n, v)| (n.as_ref(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A SIP message: request or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SipMessage {
    /// A request.
    Request {
        /// Request method.
        method: Method,
        /// Request-URI.
        uri: SipUri,
        /// Headers.
        headers: Headers,
        /// Body (SDP for INVITE/200).
        body: String,
    },
    /// A response.
    Response {
        /// Status code.
        code: StatusCode,
        /// Headers.
        headers: Headers,
        /// Body.
        body: String,
    },
}

impl SipMessage {
    /// Builds a request with empty headers and body.
    pub fn request(method: Method, uri: SipUri) -> SipMessage {
        SipMessage::Request {
            method,
            uri,
            headers: Headers::new(),
            body: String::new(),
        }
    }

    /// Builds a response to `req`, copying the headers a response must
    /// mirror (Via chain, From, To, Call-ID, CSeq) per RFC 3261 §8.2.6.
    ///
    /// # Panics
    ///
    /// Panics if `req` is a response.
    pub fn response_to(req: &SipMessage, code: StatusCode) -> SipMessage {
        let SipMessage::Request { headers, .. } = req else {
            panic!("response_to called on a response");
        };
        let mut h = Headers::with_capacity(8);
        for via in headers.get_all("Via") {
            h.push("Via", via);
        }
        for name in ["From", "To", "Call-ID", "CSeq"] {
            if let Some(v) = headers.get(name) {
                h.push(name, v);
            }
        }
        SipMessage::Response {
            code,
            headers: h,
            body: String::new(),
        }
    }

    /// Shared view of the headers.
    pub fn headers(&self) -> &Headers {
        match self {
            SipMessage::Request { headers, .. } | SipMessage::Response { headers, .. } => headers,
        }
    }

    /// Mutable view of the headers.
    pub fn headers_mut(&mut self) -> &mut Headers {
        match self {
            SipMessage::Request { headers, .. } | SipMessage::Response { headers, .. } => headers,
        }
    }

    /// The body.
    pub fn body(&self) -> &str {
        match self {
            SipMessage::Request { body, .. } | SipMessage::Response { body, .. } => body,
        }
    }

    /// Replaces the body and sets Content-Length (and Content-Type when a
    /// type is given).
    pub fn set_body(&mut self, body: &str, content_type: Option<&str>) {
        self.set_body_string(body.to_owned(), content_type);
    }

    /// Like [`SipMessage::set_body`] but takes ownership of the body,
    /// avoiding a copy when the caller already holds a `String`.
    pub fn set_body_string(&mut self, body: String, content_type: Option<&str>) {
        if let Some(ct) = content_type {
            self.headers_mut().set("Content-Type", ct);
        }
        self.headers_mut().set("Content-Length", body.len());
        match self {
            SipMessage::Request { body: b, .. } | SipMessage::Response { body: b, .. } => {
                *b = body;
            }
        }
    }

    /// `true` for requests.
    pub fn is_request(&self) -> bool {
        matches!(self, SipMessage::Request { .. })
    }

    /// The method (of the request, or from CSeq for responses).
    pub fn method(&self) -> Option<Method> {
        match self {
            SipMessage::Request { method, .. } => Some(*method),
            SipMessage::Response { .. } => self.cseq().and_then(|c| c.method.parse().ok()),
        }
    }

    /// The status code, for responses.
    pub fn status(&self) -> Option<StatusCode> {
        match self {
            SipMessage::Response { code, .. } => Some(*code),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Typed header accessors
    // ------------------------------------------------------------------

    /// Top (first) Via, parsed.
    pub fn top_via(&self) -> Option<Via> {
        self.headers().get("Via")?.parse().ok()
    }

    /// `From`, parsed.
    pub fn from_header(&self) -> Option<NameAddr> {
        self.headers().get("From")?.parse().ok()
    }

    /// `To`, parsed.
    pub fn to_header(&self) -> Option<NameAddr> {
        self.headers().get("To")?.parse().ok()
    }

    /// `Contact`, parsed.
    pub fn contact(&self) -> Option<NameAddr> {
        self.headers().get("Contact")?.parse().ok()
    }

    /// `CSeq`, parsed.
    pub fn cseq(&self) -> Option<CSeq> {
        self.headers().get("CSeq")?.parse().ok()
    }

    /// `Call-ID` value.
    pub fn call_id(&self) -> Option<&str> {
        self.headers().get("Call-ID")
    }

    /// `Expires` in seconds.
    pub fn expires(&self) -> Option<u32> {
        self.headers().get("Expires")?.parse().ok()
    }

    /// `Max-Forwards`, if present and numeric.
    pub fn max_forwards(&self) -> Option<u32> {
        self.headers().get("Max-Forwards")?.parse().ok()
    }

    // ------------------------------------------------------------------
    // Wire format
    // ------------------------------------------------------------------

    /// Serializes RFC 3261 wire text into a caller-owned buffer,
    /// replacing its contents. The transaction layer renders every
    /// outgoing message through one reusable scratch buffer, so the
    /// steady-state transmit path performs no per-message allocation.
    pub fn render_into(&self, out: &mut String) {
        out.clear();
        out.reserve(256 + self.body().len());
        match self {
            SipMessage::Request { method, uri, .. } => {
                out.push_str(method.as_str());
                out.push(' ');
                let _ = write!(out, "{uri}");
                out.push_str(" SIP/2.0\r\n");
            }
            SipMessage::Response { code, .. } => {
                out.push_str("SIP/2.0 ");
                let _ = write!(out, "{}", code.0);
                out.push(' ');
                out.push_str(code.reason());
                out.push_str("\r\n");
            }
        }
        for (n, v) in self.headers().iter() {
            out.push_str(n);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(self.body());
    }

    /// Serializes to RFC 3261 wire text.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Serializes to bytes (UTF-8 wire text).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire().into_bytes()
    }

    /// Parses a message from wire text.
    ///
    /// # Errors
    ///
    /// Returns [`ParseMsgError`] for anything that is not a well-formed
    /// request or response with the supported methods.
    pub fn parse(input: &str) -> Result<SipMessage, ParseMsgError> {
        let (head, body) = match input.split_once("\r\n\r\n") {
            Some((h, b)) => (h, b),
            None => (input.trim_end_matches("\r\n"), ""),
        };
        let mut lines = head.split("\r\n");
        let start = lines
            .next()
            .ok_or_else(|| ParseMsgError::new("empty message"))?;

        let mut headers = Headers::with_capacity(8);
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (n, v) = line
                .split_once(':')
                .ok_or_else(|| ParseMsgError::new("header line without colon"))?;
            headers.push(n.trim(), v.trim());
        }

        if let Some(rest) = start.strip_prefix("SIP/2.0 ") {
            let mut it = rest.splitn(2, ' ');
            let code: u16 = it
                .next()
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| ParseMsgError::new("bad status code"))?;
            if !(100..700).contains(&code) {
                return Err(ParseMsgError::new("status code out of range"));
            }
            Ok(SipMessage::Response {
                code: StatusCode(code),
                headers,
                body: body.to_owned(),
            })
        } else {
            let mut it = start.split(' ');
            let method: Method = it
                .next()
                .ok_or_else(|| ParseMsgError::new("missing method"))?
                .parse()?;
            let uri: SipUri = it
                .next()
                .ok_or_else(|| ParseMsgError::new("missing request-URI"))?
                .parse()
                .map_err(|_| ParseMsgError::new("bad request-URI"))?;
            match it.next() {
                Some("SIP/2.0") => {}
                _ => return Err(ParseMsgError::new("bad SIP version")),
            }
            Ok(SipMessage::Request {
                method,
                uri,
                headers,
                body: body.to_owned(),
            })
        }
    }
}

/// Error returned for unparseable SIP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMsgError {
    what: &'static str,
}

impl ParseMsgError {
    fn new(what: &'static str) -> ParseMsgError {
        ParseMsgError { what }
    }
}

impl fmt::Display for ParseMsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SIP message: {}", self.what)
    }
}

impl std::error::Error for ParseMsgError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_invite() -> SipMessage {
        let mut m = SipMessage::request(Method::Invite, "sip:bob@voicehoc.ch".parse().unwrap());
        m.headers_mut()
            .push("Via", "SIP/2.0/UDP 10.0.0.1:5070;branch=z9hG4bK776");
        m.headers_mut().push("Max-Forwards", 70);
        m.headers_mut()
            .push("From", "<sip:alice@voicehoc.ch>;tag=1928");
        m.headers_mut().push("To", "<sip:bob@voicehoc.ch>");
        m.headers_mut().push("Call-ID", "a84b4c76e66710");
        m.headers_mut().push("CSeq", "314159 INVITE");
        m.headers_mut().push("Contact", "<sip:alice@10.0.0.1:5070>");
        m.set_body(
            "v=0\r\no=alice 1 1 IN IP4 10.0.0.1\r\n",
            Some("application/sdp"),
        );
        m
    }

    #[test]
    fn request_wire_round_trip() {
        let m = sample_invite();
        let wire = m.to_wire();
        assert!(wire.starts_with("INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"));
        let parsed = SipMessage::parse(&wire).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn response_wire_round_trip() {
        let req = sample_invite();
        let mut resp = SipMessage::response_to(&req, StatusCode::RINGING);
        resp.headers_mut()
            .push("Contact", "<sip:bob@10.0.0.2:5070>");
        let wire = resp.to_wire();
        assert!(wire.starts_with("SIP/2.0 180 Ringing\r\n"));
        let parsed = SipMessage::parse(&wire).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn response_mirrors_required_headers() {
        let req = sample_invite();
        let resp = SipMessage::response_to(&req, StatusCode::OK);
        assert_eq!(resp.call_id(), Some("a84b4c76e66710"));
        assert_eq!(resp.cseq().unwrap(), CSeq::new(314159, "INVITE"));
        assert_eq!(resp.headers().get_all("Via").len(), 1);
        assert_eq!(resp.from_header().unwrap().tag(), Some("1928"));
    }

    #[test]
    fn via_stacking_pops_in_order() {
        let mut m = sample_invite();
        m.headers_mut()
            .push_front("Via", "SIP/2.0/UDP 10.0.0.9:5060;branch=z9hG4bKproxy");
        let vias = m.headers().get_all("Via");
        assert_eq!(vias.len(), 2);
        assert!(vias[0].contains("10.0.0.9"));
        let popped = m.headers_mut().remove_first("Via").unwrap();
        assert!(popped.contains("10.0.0.9"));
        assert!(m
            .top_via()
            .unwrap()
            .sent_by
            .to_string()
            .contains("10.0.0.1"));
    }

    #[test]
    fn body_and_content_length_are_consistent() {
        let m = sample_invite();
        let len: usize = m.headers().get("Content-Length").unwrap().parse().unwrap();
        assert_eq!(len, m.body().len());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SipMessage::parse("").is_err());
        assert!(SipMessage::parse("HELLO WORLD\r\n\r\n").is_err());
        assert!(SipMessage::parse("INVITE sip:x@y\r\n\r\n").is_err()); // missing version
        assert!(SipMessage::parse("SIP/2.0 9999 Weird\r\n\r\n").is_err());
        assert!(SipMessage::parse("INVITE sip:x@y SIP/2.0\r\nNoColonHere\r\n\r\n").is_err());
    }

    #[test]
    fn headers_case_insensitive_access() {
        let m = sample_invite();
        assert_eq!(m.headers().get("call-id"), Some("a84b4c76e66710"));
        assert_eq!(m.headers().get("CALL-ID"), Some("a84b4c76e66710"));
    }

    #[test]
    fn method_parse_rejects_unknown() {
        assert!("SUBSCRIBE".parse::<Method>().is_err());
        assert_eq!("INVITE".parse::<Method>().unwrap(), Method::Invite);
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::TRYING.is_provisional());
        assert!(!StatusCode::TRYING.is_final());
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::NOT_FOUND.is_final());
        assert!(!StatusCode::NOT_FOUND.is_success());
    }
}
