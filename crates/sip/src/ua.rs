//! A scriptable SIP user agent — the simulator's stand-in for the paper's
//! out-of-the-box VoIP applications (Kphone, Twinkle, Minisip).
//!
//! The user agent speaks only standard SIP through its configured
//! **outbound proxy** — paper Fig. 2: "the only difference to the
//! traditional configuration for use in the Internet is that an outbound
//! proxy is specified", pointing at the SIPHoc proxy on `localhost`.
//! Everything MANET-specific happens behind that proxy; the UA is oblivious
//! to the network type, which is precisely the paper's transparency claim.
//!
//! Behavior: registers at start (and refreshes), can place calls from a
//! pre-programmed script, auto-answers incoming calls after a ring delay,
//! exchanges SDP, signals the media layer via node-local events, and hangs
//! up after the scripted call duration. All externally observable steps are
//! appended to a shared [`UaLog`].

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use siphoc_simnet::fasthash::FastMap;
use siphoc_simnet::net::{Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use std::sync::Arc;

use siphoc_simnet::ident::KeyPair;

use crate::auth;
use crate::headers::{CSeq, NameAddr};
use crate::msg::{Method, SipMessage, StatusCode};
use crate::sdp::Sdp;
use crate::txn::{TransactionLayer, TxnConfig, TxnEvent};
use crate::uri::{Aor, SipUri};

/// Node-local event kind emitted when media should start flowing. The
/// payload is `call_id|local_rtp_port|remote_addr:port` in UTF-8.
pub const MEDIA_START_EVENT: &str = "sip.media_start";
/// Node-local event kind emitted when media should stop. Payload:
/// `call_id`.
pub const MEDIA_STOP_EVENT: &str = "sip.media_stop";

/// Mirror of `siphoc_core::connection::INTERNET_UP_EVENT` (the crate
/// dependency points the other way, so the constant cannot be imported).
/// The Connection Provider emits it with the leased public address as
/// payload; the UA watches it so a mid-call gateway handoff (public
/// address change) triggers in-dialog re-INVITEs that re-target media.
const INTERNET_UP_EVENT: &str = "siphoc.internet_up";

/// User agent configuration (the paper Fig. 2 dialog, as data).
#[derive(Debug, Clone)]
pub struct UaConfig {
    /// The user's address-of-record, e.g. `alice@voicehoc.ch`.
    pub aor: Aor,
    /// Where all requests are sent: the SIPHoc proxy on this node
    /// (`127.0.0.1:5060`) in MANET deployments.
    pub outbound_proxy: SocketAddr,
    /// Local SIP port of this UA.
    pub local_port: u16,
    /// Local RTP port offered in SDP.
    pub rtp_port: u16,
    /// Registration lifetime requested.
    pub register_expires: SimDuration,
    /// Whether to register at startup (true for all paper scenarios).
    pub register: bool,
    /// Auto-answer incoming calls.
    pub auto_answer: bool,
    /// Ring time before auto-answering.
    pub answer_delay: SimDuration,
    /// Scripted actions.
    pub script: Vec<ScriptedAction>,
    /// Transaction timing.
    pub txn: TxnConfig,
    /// Emit `sip.media_start`/`sip.media_stop` node-local events when
    /// calls establish and terminate. Local events fan out to every
    /// process on the node, so signaling-only deployments (no media
    /// plane listening) can turn this off; call-load benches do.
    pub media_events: bool,
    /// Self-certifying identity used to answer registrar REGISTER
    /// challenges (`None` = legacy unauthenticated registration; the UA
    /// then treats a 401 as a registration failure).
    pub identity: Option<KeyPair>,
}

impl UaConfig {
    /// A standard configuration for `user@domain` behind the local proxy.
    pub fn new(aor: Aor, outbound_proxy: SocketAddr) -> UaConfig {
        UaConfig {
            aor,
            outbound_proxy,
            local_port: 5070,
            rtp_port: 8000,
            register_expires: SimDuration::from_secs(3600),
            register: true,
            auto_answer: true,
            answer_delay: SimDuration::from_millis(200),
            script: Vec::new(),
            txn: TxnConfig::default(),
            media_events: true,
            identity: None,
        }
    }

    /// Equips the UA with a signing identity for challenge-based
    /// REGISTER authentication.
    pub fn with_identity(mut self, kp: KeyPair) -> UaConfig {
        self.identity = Some(kp);
        self
    }

    /// Adds a scripted call.
    pub fn call_at(mut self, at: SimTime, to: Aor, duration: SimDuration) -> UaConfig {
        self.script.push(ScriptedAction {
            at,
            kind: ActionKind::Call { to, duration },
        });
        self
    }
}

/// A pre-programmed user action.
#[derive(Debug, Clone)]
pub struct ScriptedAction {
    /// When to perform it.
    pub at: SimTime,
    /// What to do.
    pub kind: ActionKind,
}

/// The kinds of scripted actions.
#[derive(Debug, Clone)]
pub enum ActionKind {
    /// Place a call and hang up after `duration` of established media.
    Call {
        /// Callee.
        to: Aor,
        /// Established-call duration before the caller sends BYE.
        duration: SimDuration,
    },
    /// Terminate every active call now.
    HangupAll,
    /// Send an in-dialog re-INVITE on every confirmed dialog now (the
    /// load harness's gateway-handoff storm shape).
    ReinviteAll,
    /// De-register (Expires: 0).
    Unregister,
}

/// Externally observable UA milestones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallEvent {
    /// REGISTER accepted by the registrar/proxy.
    Registered,
    /// REGISTER failed (final error or transaction timeout).
    RegisterFailed,
    /// INVITE sent.
    OutgoingCall {
        /// Call-ID of the new dialog.
        call_id: String,
        /// Callee AOR.
        to: Aor,
    },
    /// 180 received (caller side).
    Ringing {
        /// Call-ID.
        call_id: String,
    },
    /// Call established (caller: 200 received and ACKed; callee: 200 ACKed
    /// by peer).
    Established {
        /// Call-ID.
        call_id: String,
        /// Where the peer receives RTP.
        remote_rtp: SocketAddr,
    },
    /// INVITE received.
    IncomingCall {
        /// Call-ID.
        call_id: String,
        /// Caller AOR.
        from: Aor,
    },
    /// Dialog ended.
    Terminated {
        /// Call-ID.
        call_id: String,
        /// Whether the peer initiated the BYE.
        by_remote: bool,
    },
    /// Call setup failed.
    Failed {
        /// Call-ID.
        call_id: String,
        /// Final status code, if one arrived (None = timeout).
        code: Option<u16>,
    },
}

/// Shared, timestamped log of UA events.
#[derive(Debug, Default)]
pub struct UaLog {
    events: Vec<(SimTime, CallEvent)>,
}

impl UaLog {
    /// All events in order.
    pub fn events(&self) -> &[(SimTime, CallEvent)] {
        &self.events
    }

    /// Times of the first event matching the predicate.
    pub fn first_time(&self, mut pred: impl FnMut(&CallEvent) -> bool) -> Option<SimTime> {
        self.events.iter().find(|(_, e)| pred(e)).map(|(t, _)| *t)
    }

    /// Whether any event matches.
    pub fn any(&self, mut pred: impl FnMut(&CallEvent) -> bool) -> bool {
        self.events.iter().any(|(_, e)| pred(e))
    }

    /// Count of matching events.
    pub fn count(&self, mut pred: impl FnMut(&CallEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

/// Shared handle to a UA's event log.
pub type UaLogHandle = Rc<RefCell<UaLog>>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DialogState {
    Early,
    Confirmed,
    Terminated,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Caller,
    Callee,
}

struct Dialog {
    idx: u64,
    call_id: String,
    local_tag: String,
    remote_tag: Option<String>,
    /// Rendered `From` value for requests this side sends in the dialog
    /// (`<sip:user@domain>;tag=local` — fixed for the dialog's lifetime).
    hdr_from: String,
    /// Rendered `To` value for requests this side sends; the remote tag
    /// is appended as soon as it is learned.
    hdr_to: String,
    remote_aor: Aor,
    remote_target: Option<SipUri>,
    local_seq: u32,
    state: DialogState,
    role: Role,
    remote_rtp: Option<SocketAddr>,
    invite_branch: Option<Arc<str>>,
    invite_key: Option<Arc<str>>,
    pending_invite: Option<SipMessage>,
    /// Rendered Contact value and SDP body of our last 2xx answer,
    /// replayed on a fresh transaction when a rebranched INVITE
    /// retransmit arrives. Only these parts of the answer survive
    /// verbatim — the replay is rebuilt against the new Via stack — so
    /// storing two strings beats cloning the whole response per call.
    answer_resp: Option<(String, String)>,
    duration: Option<SimDuration>,
    cancelled: bool,
    /// Open observability span covering call setup (INVITE->ACK).
    span: SpanId,
    /// When setup started, for the `sip.call_setup_us` histogram.
    setup_started_us: u64,
    /// CSeq of an in-flight outgoing re-INVITE (gateway handoff re-homing);
    /// `None` when no re-INVITE is outstanding.
    reinvite_cseq: Option<u32>,
}

const TAG_REGISTER: u64 = 1;
const TAG_SCRIPT: u64 = 2;
const TAG_ANSWER: u64 = 3;
const TAG_BYE: u64 = 4;
const TXN_TOKEN_BASE: u64 = 0x5150_0000_0000_0000;

fn tok(tag: u64, idx: u64) -> u64 {
    tag | (idx << 8)
}

/// Renders an AOR as a bare name-addr value (`<sip:user@domain>`),
/// byte-identical to `NameAddr::new(aor.to_uri()).to_string()` but
/// without the `fmt::Display` round-trip.
fn name_addr_value(aor: &Aor) -> String {
    let mut s = String::with_capacity(aor.user.len() + aor.domain.len() + 7);
    s.push_str("<sip:");
    s.push_str(&aor.user);
    s.push('@');
    s.push_str(&aor.domain);
    s.push('>');
    s
}

/// Appends `;tag=` to a rendered name-addr value.
fn tagged(base: &str, tag: &str) -> String {
    let mut s = String::with_capacity(base.len() + 5 + tag.len());
    s.push_str(base);
    s.push_str(";tag=");
    s.push_str(tag);
    s
}

/// Stamps a response's To header with this side's dialog tag. To is
/// inherited verbatim from the request, so when it carries no tag yet the
/// value is extended in place — the same bytes `NameAddr` would render —
/// and only a pre-tagged To pays for the parse-and-replace path.
fn set_to_tag(resp: &mut SipMessage, tag: &str) {
    let Some(cur) = resp.headers().get("To") else {
        return;
    };
    if !cur.contains(";tag=") {
        let v = tagged(cur, tag);
        resp.headers_mut().set_owned("To", v);
    } else if let Some(mut to) = resp.to_header() {
        to.set_tag(tag);
        resp.headers_mut().set("To", to);
    }
}

/// Pre-rendered strings that are fixed for a given local address: the
/// From/To name-addr base, the Contact value, and the SDP body split
/// around its session id. Rebuilt if a gateway handoff renumbers the
/// node; every call then splices bytes instead of re-running `Display`.
#[derive(Default)]
struct RenderCache {
    addr: Option<Addr>,
    from_base: String,
    contact: String,
    sdp_head: String,
    sdp_tail: String,
}

/// The user agent process.
pub struct UserAgent {
    cfg: UaConfig,
    txn: TransactionLayer,
    log: UaLogHandle,
    dialogs: BTreeMap<String, Dialog>,
    render: RenderCache,
    /// Dialog index → call-id. Timer tokens carry the dialog index, and the
    /// dialog map retains terminated dialogs, so resolving a token by
    /// scanning `dialogs` is O(live + dead); this side index keeps it O(1).
    dialog_by_idx: FastMap<u64, String>,
    next_dialog: u64,
    register_branch: Option<Arc<str>>,
    register_cseq: u32,
    registered: bool,
    register_span: SpanId,
    /// Nonce from the registrar's last 401 challenge; included (signed)
    /// in every subsequent REGISTER until the registrar rotates it.
    auth_nonce: Option<u64>,
    /// `true` while a challenged REGISTER retry is in flight — a second
    /// 401 then fails registration instead of looping.
    auth_inflight: bool,
    /// Expires value of the last REGISTER, replayed on the auth retry.
    last_expires: u32,
    /// Last public address announced via `INTERNET_UP_EVENT`; a *change*
    /// (gateway handoff renumbered the node) re-INVITEs Internet calls.
    last_public: Option<String>,
}

impl std::fmt::Debug for UserAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserAgent")
            .field("aor", &self.cfg.aor.to_string())
            .field("dialogs", &self.dialogs.len())
            .finish_non_exhaustive()
    }
}

impl UserAgent {
    /// Creates a user agent and the log handle to observe it.
    pub fn new(cfg: UaConfig) -> (UserAgent, UaLogHandle) {
        let log: UaLogHandle = Rc::new(RefCell::new(UaLog::default()));
        let txn = TransactionLayer::new(cfg.local_port, TXN_TOKEN_BASE, cfg.txn);
        (
            UserAgent {
                cfg,
                txn,
                log: log.clone(),
                dialogs: BTreeMap::new(),
                render: RenderCache::default(),
                dialog_by_idx: FastMap::default(),
                next_dialog: 0,
                register_branch: None,
                register_cseq: 0,
                registered: false,
                register_span: SpanId::NONE,
                auth_nonce: None,
                auth_inflight: false,
                last_expires: 0,
                last_public: None,
            },
            log,
        )
    }

    fn emit_log(&self, ctx: &Ctx<'_>, ev: CallEvent) {
        self.log.borrow_mut().events.push((ctx.now(), ev));
    }

    fn local_contact(&self, ctx: &Ctx<'_>) -> SipUri {
        SipUri::from_socket(
            Some(&self.cfg.aor.user),
            SocketAddr::new(ctx.addr(), self.cfg.local_port),
        )
    }

    fn new_tag(&mut self, ctx: &mut Ctx<'_>) -> String {
        format!("{:08x}", ctx.rng().next_u64() as u32)
    }

    fn base_request(&mut self, ctx: &mut Ctx<'_>, method: Method, uri: SipUri) -> SipMessage {
        let mut m = SipMessage::request(method, uri);
        m.headers_mut().push("Max-Forwards", 70);
        m.headers_mut().push("User-Agent", "siphoc-ua/0.1");
        let _ = ctx;
        m
    }

    /// The pre-rendered string cache for the node's current address,
    /// rebuilding it after a handoff renumbered the node.
    fn render_cache(&mut self, ctx: &Ctx<'_>) -> &RenderCache {
        let addr = ctx.addr();
        if self.render.addr != Some(addr) {
            let aor = &self.cfg.aor;
            self.render.addr = Some(addr);
            self.render.from_base = name_addr_value(aor);
            self.render.contact = format!("<sip:{}@{}:{}>", aor.user, addr, self.cfg.local_port);
            self.render.sdp_head = format!("v=0\r\no={} ", aor.user);
            self.render.sdp_tail = format!(
                " IN IP4 {addr}\r\ns=-\r\nc=IN IP4 {addr}\r\nt=0 0\r\nm=audio {} RTP/AVP 0\r\n",
                self.cfg.rtp_port
            );
        }
        &self.render
    }

    /// Renders an SDP body, splicing the cached template around the
    /// session id when `sdp` is this UA's canonical single-PCMU-stream
    /// description (the overwhelmingly common case), and falling back to
    /// the full serializer otherwise.
    fn sdp_body(&mut self, ctx: &Ctx<'_>, sdp: &Sdp) -> String {
        let canonical = sdp.origin_user == self.cfg.aor.user && sdp.audio_port == self.cfg.rtp_port;
        let cache = self.render_cache(ctx);
        if canonical && Some(sdp.addr) == cache.addr && sdp.payload_types == [0] {
            use std::fmt::Write as _;
            let mut b = String::with_capacity(cache.sdp_head.len() + cache.sdp_tail.len() + 42);
            b.push_str(&cache.sdp_head);
            let _ = write!(b, "{0} {0}", sdp.session_id);
            b.push_str(&cache.sdp_tail);
            b
        } else {
            sdp.to_string()
        }
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    fn send_register(&mut self, ctx: &mut Ctx<'_>, expires: u32) {
        let domain_uri = SipUri::host_only(&self.cfg.aor.domain, None);
        let mut m = self.base_request(ctx, Method::Register, domain_uri);
        self.register_cseq += 1;
        let tag = self.new_tag(ctx);
        let id = NameAddr::new(self.cfg.aor.to_uri());
        m.headers_mut().push("From", id.clone().with_tag(&tag));
        m.headers_mut().push("To", &id);
        m.headers_mut().push(
            "Call-ID",
            format!("reg-{}-{}", self.cfg.aor.user, self.cfg.local_port),
        );
        m.headers_mut()
            .push("CSeq", CSeq::new(self.register_cseq, "REGISTER"));
        let contact_value = NameAddr::new(self.local_contact(ctx)).to_string();
        m.headers_mut().push_owned("Contact", contact_value.clone());
        m.headers_mut().push("Expires", expires);
        self.last_expires = expires;
        // Answer the registrar's outstanding challenge, if any. The
        // credential signs (nonce, aor, contact) so a snooped value
        // cannot re-bind the AOR elsewhere.
        if let (Some(kp), Some(nonce)) = (&self.cfg.identity, self.auth_nonce) {
            let aor_s = self.cfg.aor.to_string();
            let cred = auth::Credential::answer(kp, nonce, &aor_s, &contact_value);
            m.headers_mut().push(auth::AUTHORIZATION, cred);
        }
        ctx.span_exit(self.register_span, true);
        self.register_span = ctx.span_enter(SpanCat::Sip, "sip.register");
        ctx.obs().span_corr(
            self.register_span,
            &format!("reg-{}-{}", self.cfg.aor.user, self.cfg.local_port),
        );
        let branch = self.txn.send_request(ctx, m, self.cfg.outbound_proxy);
        self.register_branch = Some(branch);
    }

    // ------------------------------------------------------------------
    // Outgoing calls
    // ------------------------------------------------------------------

    fn place_call(&mut self, ctx: &mut Ctx<'_>, to: Aor, duration: SimDuration) {
        let idx = self.next_dialog;
        self.next_dialog += 1;
        let call_id = format!(
            "call-{}-{}-{:x}",
            self.cfg.aor.user,
            idx,
            ctx.rng().next_u64()
        );
        let local_tag = self.new_tag(ctx);

        let hdr_from = tagged(&self.render_cache(ctx).from_base, &local_tag);
        let hdr_to = name_addr_value(&to);
        let contact = self.render_cache(ctx).contact.clone();
        let mut m = self.base_request(ctx, Method::Invite, to.to_uri());
        m.headers_mut().push_owned("From", hdr_from.clone());
        m.headers_mut().push_owned("To", hdr_to.clone());
        m.headers_mut().push_owned("Call-ID", call_id.clone());
        m.headers_mut().push("CSeq", CSeq::new(1, "INVITE"));
        m.headers_mut().push_owned("Contact", contact);
        let sdp = Sdp::audio(
            &self.cfg.aor.user,
            ctx.rng().next_u64() >> 1,
            SocketAddr::new(ctx.addr(), self.cfg.rtp_port),
        );
        let body = self.sdp_body(ctx, &sdp);
        m.set_body_string(body, Some("application/sdp"));

        let span = ctx.span_enter(SpanCat::Sip, "sip.invite");
        ctx.obs().span_corr(span, &call_id);
        ctx.obs().counter_add("sip.calls_placed", 1);
        let setup_started_us = ctx.now_us();
        let branch = self.txn.send_request(ctx, m, self.cfg.outbound_proxy);
        let dialog = Dialog {
            idx,
            call_id: call_id.clone(),
            local_tag,
            remote_tag: None,
            hdr_from,
            hdr_to,
            remote_aor: to.clone(),
            remote_target: None,
            local_seq: 1,
            state: DialogState::Early,
            role: Role::Caller,
            remote_rtp: None,
            invite_branch: Some(branch),
            invite_key: None,
            pending_invite: None,
            answer_resp: None,
            duration: Some(duration),
            cancelled: false,
            span,
            setup_started_us,
            reinvite_cseq: None,
        };
        self.dialog_by_idx.insert(idx, call_id.clone());
        self.dialogs.insert(call_id.clone(), dialog);
        self.emit_log(ctx, CallEvent::OutgoingCall { call_id, to });
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, call_id: &str) {
        let Some(d) = self.dialogs.get(call_id) else {
            return;
        };
        let target = d
            .remote_target
            .clone()
            .unwrap_or_else(|| d.remote_aor.to_uri());
        let branch = d.invite_branch.clone().unwrap_or_else(|| Arc::from(""));
        let (hdr_from, hdr_to, local_seq) = (d.hdr_from.clone(), d.hdr_to.clone(), d.local_seq);
        let mut m = self.base_request(ctx, Method::Ack, target);
        m.headers_mut().push(
            "Via",
            crate::headers::Via::new(SocketAddr::new(ctx.addr(), self.cfg.local_port), &branch),
        );
        m.headers_mut().push_owned("From", hdr_from);
        m.headers_mut().push_owned("To", hdr_to);
        m.headers_mut().push_owned("Call-ID", call_id.to_owned());
        m.headers_mut().push("CSeq", CSeq::new(local_seq, "ACK"));
        self.txn
            .send_request_with_branch(ctx, m, self.cfg.outbound_proxy, branch);
    }

    fn send_bye(&mut self, ctx: &mut Ctx<'_>, call_id: &str) {
        let Some(d) = self.dialogs.get_mut(call_id) else {
            return;
        };
        if d.state != DialogState::Confirmed {
            return;
        }
        d.local_seq += 1;
        let seq = d.local_seq;
        let target = d
            .remote_target
            .clone()
            .unwrap_or_else(|| d.remote_aor.to_uri());
        let (hdr_from, hdr_to) = (d.hdr_from.clone(), d.hdr_to.clone());
        let mut m = self.base_request(ctx, Method::Bye, target);
        m.headers_mut().push_owned("From", hdr_from);
        m.headers_mut().push_owned("To", hdr_to);
        m.headers_mut().push_owned("Call-ID", call_id.to_owned());
        m.headers_mut().push("CSeq", CSeq::new(seq, "BYE"));
        self.txn.send_request(ctx, m, self.cfg.outbound_proxy);
        self.end_media(ctx, call_id);
        if let Some(d) = self.dialogs.get_mut(call_id) {
            d.state = DialogState::Terminated;
        }
        self.emit_log(
            ctx,
            CallEvent::Terminated {
                call_id: call_id.to_owned(),
                by_remote: false,
            },
        );
    }

    /// Sends an in-dialog re-INVITE (RFC 3261 §14) refreshing this side's
    /// Contact and SDP. Used after a gateway handoff renumbered the node:
    /// the outbound proxy's ALG rewrites Contact/SDP to the *new* public
    /// address, so the remote endpoint re-targets signaling and media.
    fn send_reinvite(&mut self, ctx: &mut Ctx<'_>, call_id: &str) {
        let contact = self.local_contact(ctx);
        let Some(d) = self.dialogs.get_mut(call_id) else {
            return;
        };
        if d.state != DialogState::Confirmed {
            return;
        }
        d.local_seq += 1;
        let seq = d.local_seq;
        d.reinvite_cseq = Some(seq);
        let target = d
            .remote_target
            .clone()
            .unwrap_or_else(|| d.remote_aor.to_uri());
        let (hdr_from, hdr_to) = (d.hdr_from.clone(), d.hdr_to.clone());
        let mut m = self.base_request(ctx, Method::Invite, target);
        m.headers_mut().push_owned("From", hdr_from);
        m.headers_mut().push_owned("To", hdr_to);
        m.headers_mut().push_owned("Call-ID", call_id.to_owned());
        m.headers_mut().push("CSeq", CSeq::new(seq, "INVITE"));
        m.headers_mut().push("Contact", NameAddr::new(contact));
        // Session id from the clock, not the RNG: re-INVITEs are driven
        // by connectivity events and must not perturb the RNG stream of
        // runs where they never fire.
        let sdp = Sdp::audio(
            &self.cfg.aor.user,
            ctx.now_us(),
            SocketAddr::new(ctx.addr(), self.cfg.rtp_port),
        );
        let body = self.sdp_body(ctx, &sdp);
        m.set_body_string(body, Some("application/sdp"));
        ctx.stats().count("sip.reinvite_tx", 1);
        let branch = self.txn.send_request(ctx, m, self.cfg.outbound_proxy);
        if let Some(d) = self.dialogs.get_mut(call_id) {
            d.invite_branch = Some(branch);
        }
    }

    /// Handles an in-dialog re-INVITE on the callee side: adopt the
    /// peer's refreshed Contact/SDP, answer 200 with our current
    /// endpoints, and re-home the media session if the peer's RTP
    /// endpoint moved.
    fn on_reinvite(&mut self, ctx: &mut Ctx<'_>, key: &Arc<str>, msg: &SipMessage, call_id: &str) {
        ctx.stats().count("sip.reinvite_rx", 1);
        let contact_value = self.render_cache(ctx).contact.clone();
        let Some(d) = self.dialogs.get_mut(call_id) else {
            return;
        };
        let prev_rtp = d.remote_rtp;
        if let Some(c) = msg.contact() {
            d.remote_target = Some(c.uri);
        }
        let offer = msg.body().parse::<Sdp>().ok();
        if let Some(o) = &offer {
            d.remote_rtp = Some(o.rtp_endpoint());
        }
        let local_tag = d.local_tag.clone();
        let new_rtp = d.remote_rtp;
        let mut ok = SipMessage::response_to(msg, StatusCode::OK);
        set_to_tag(&mut ok, &local_tag);
        ok.headers_mut()
            .push_owned("Contact", contact_value.clone());
        let mut answer_body = String::new();
        if let Some(o) = offer {
            // Clock-derived session id for the same determinism reason as
            // `send_reinvite`.
            if let Some(a) = o.answer(
                &self.cfg.aor.user,
                ctx.now_us(),
                SocketAddr::new(ctx.addr(), self.cfg.rtp_port),
            ) {
                answer_body = self.sdp_body(ctx, &a);
                ok.set_body_string(answer_body.clone(), Some("application/sdp"));
            }
        }
        // Store the refreshed transaction state so a retransmitted
        // re-INVITE replays this 200 (the existing rebranch path).
        if let Some(d) = self.dialogs.get_mut(call_id) {
            d.pending_invite = Some(msg.clone());
            d.answer_resp = Some((contact_value, answer_body));
            d.invite_key = Some(key.clone());
        }
        self.txn.respond(ctx, key, ok);
        if let Some(rtp) = new_rtp {
            if prev_rtp != new_rtp {
                self.start_media(ctx, call_id, rtp);
            }
        }
    }

    /// Cancels a caller-side dialog that is still ringing (RFC 3261 §9):
    /// CANCEL copies the INVITE's Request-URI, Call-ID, From and CSeq
    /// number. The 487 that follows terminates the dialog.
    fn send_cancel(&mut self, ctx: &mut Ctx<'_>, call_id: &str) {
        let Some(d) = self.dialogs.get_mut(call_id) else {
            return;
        };
        if d.state != DialogState::Early || d.role != Role::Caller || d.cancelled {
            return;
        }
        d.cancelled = true;
        let (remote_aor, local_tag) = (d.remote_aor.clone(), d.local_tag.clone());
        let mut m = self.base_request(ctx, Method::Cancel, remote_aor.to_uri());
        m.headers_mut().push(
            "From",
            NameAddr::new(self.cfg.aor.to_uri()).with_tag(&local_tag),
        );
        m.headers_mut()
            .push("To", NameAddr::new(remote_aor.to_uri()));
        m.headers_mut().push("Call-ID", call_id);
        m.headers_mut().push("CSeq", CSeq::new(1, "CANCEL"));
        self.txn.send_request(ctx, m, self.cfg.outbound_proxy);
    }

    fn start_media(&self, ctx: &mut Ctx<'_>, call_id: &str, remote_rtp: SocketAddr) {
        if !self.cfg.media_events {
            return;
        }
        ctx.span_instant(SpanCat::Media, "media.start", Some(call_id));
        let payload = format!("{call_id}|{}|{}", self.cfg.rtp_port, remote_rtp);
        ctx.emit(LocalEvent::Custom {
            kind: MEDIA_START_EVENT,
            data: payload.into_bytes(),
        });
    }

    fn end_media(&self, ctx: &mut Ctx<'_>, call_id: &str) {
        if !self.cfg.media_events {
            return;
        }
        ctx.span_instant(SpanCat::Media, "media.stop", Some(call_id));
        ctx.emit(LocalEvent::Custom {
            kind: MEDIA_STOP_EVENT,
            data: call_id.as_bytes().to_vec(),
        });
    }

    // ------------------------------------------------------------------
    // Incoming requests
    // ------------------------------------------------------------------

    fn on_invite(&mut self, ctx: &mut Ctx<'_>, key: Arc<str>, msg: SipMessage) {
        let Some(call_id) = msg.call_id().map(str::to_owned) else {
            return;
        };
        let Some(from) = msg.from_header() else {
            return;
        };
        if let Some(d) = self.dialogs.get(&call_id) {
            // A retransmitted INVITE can surface on a *new* server
            // transaction when an earlier flight's Via branch was mangled
            // in transit: same dialog, different key. Detect it by From
            // tag + CSeq and replay our current response on the fresh
            // transaction so the caller can still reach us.
            let retransmit = d.role == Role::Callee
                && d.state != DialogState::Terminated
                && from.tag().map(str::to_owned) == d.remote_tag
                && msg.cseq() == d.pending_invite.as_ref().and_then(|m| m.cseq());
            if retransmit {
                ctx.stats().count("sip.invite_rebranch", 1);
                if let Some((contact, body)) = d.answer_resp.clone() {
                    // Rebuild against *this* flight's Via stack — the
                    // stored 200 answers the original (possibly mangled)
                    // request and would route back along dead branches.
                    // A response's To is the request To plus our tag,
                    // which is exactly this side's From value.
                    let hdr_to = d.hdr_from.clone();
                    let mut ok = SipMessage::response_to(&msg, StatusCode::OK);
                    ok.headers_mut().set_owned("To", hdr_to);
                    ok.headers_mut().set_owned("Contact", contact);
                    if !body.is_empty() {
                        ok.set_body_string(body, Some("application/sdp"));
                    }
                    self.txn.respond(ctx, &key, ok);
                } else {
                    let local_tag = d.local_tag.clone();
                    if let Some(d) = self.dialogs.get_mut(&call_id) {
                        // Answer on the clean transaction when it fires.
                        d.invite_key = Some(key.clone());
                        d.pending_invite = Some(msg.clone());
                    }
                    let mut ringing = SipMessage::response_to(&msg, StatusCode::RINGING);
                    set_to_tag(&mut ringing, &local_tag);
                    self.txn.respond(ctx, &key, ringing);
                }
            } else {
                // A genuine in-dialog re-INVITE: confirmed dialog, the
                // peer's tag matches, and the CSeq advanced past the
                // original INVITE. Anything else (spurious mid-setup
                // INVITE, mangled tag) still busies out.
                let in_dialog = d.state == DialogState::Confirmed
                    && from.tag().map(str::to_owned) == d.remote_tag
                    && match (msg.cseq(), d.pending_invite.as_ref().and_then(|m| m.cseq())) {
                        (Some(new), Some(orig)) => new.seq > orig.seq,
                        // Caller-side dialogs never stored a peer INVITE:
                        // any tag-matching INVITE on a confirmed dialog is
                        // the peer re-negotiating.
                        (Some(_), None) => d.role == Role::Caller,
                        _ => false,
                    };
                if in_dialog {
                    self.on_reinvite(ctx, &key, &msg, &call_id);
                } else {
                    let resp = SipMessage::response_to(&msg, StatusCode::BUSY);
                    self.txn.respond(ctx, &key, resp);
                }
            }
            return;
        }
        let idx = self.next_dialog;
        self.next_dialog += 1;
        let local_tag = self.new_tag(ctx);
        let remote_rtp = msg.body().parse::<Sdp>().ok().map(|s| s.rtp_endpoint());
        let remote_target = msg.contact().map(|c| c.uri);
        let span = ctx.span_enter(SpanCat::Sip, "sip.answer");
        ctx.obs().span_corr(span, &call_id);
        let setup_started_us = ctx.now_us();
        // Build the ringing response before the INVITE moves into the
        // dialog — the pending request is stored, never cloned.
        let mut ringing = SipMessage::response_to(&msg, StatusCode::RINGING);
        set_to_tag(&mut ringing, &local_tag);
        let remote_aor = from.uri.aor();
        let remote_tag = from.tag().map(str::to_owned);
        let hdr_from = tagged(&self.render_cache(ctx).from_base, &local_tag);
        let hdr_to = match &remote_tag {
            Some(t) => tagged(&name_addr_value(&remote_aor), t),
            None => name_addr_value(&remote_aor),
        };
        let dialog = Dialog {
            idx,
            call_id: call_id.clone(),
            local_tag,
            remote_tag,
            hdr_from,
            hdr_to,
            remote_aor,
            remote_target,
            local_seq: 0,
            state: DialogState::Early,
            role: Role::Callee,
            remote_rtp,
            invite_branch: None,
            invite_key: Some(key.clone()),
            pending_invite: Some(msg),
            answer_resp: None,
            duration: None,
            cancelled: false,
            span,
            setup_started_us,
            reinvite_cseq: None,
        };
        self.dialog_by_idx.insert(idx, call_id.clone());
        self.dialogs.insert(call_id.clone(), dialog);
        self.emit_log(
            ctx,
            CallEvent::IncomingCall {
                call_id,
                from: from.uri.aor(),
            },
        );
        // Ring.
        self.txn.respond(ctx, &key, ringing);
        if self.cfg.auto_answer {
            ctx.set_timer(self.cfg.answer_delay, tok(TAG_ANSWER, idx));
        }
    }

    fn answer_call(&mut self, ctx: &mut Ctx<'_>, idx: u64) {
        let Some(call_id) = self
            .dialog_by_idx
            .get(&idx)
            .filter(|id| {
                self.dialogs
                    .get(id.as_str())
                    .is_some_and(|d| d.state == DialogState::Early && d.role == Role::Callee)
            })
            .cloned()
        else {
            return;
        };
        let (key, invite, local_tag) = {
            let Some(d) = self.dialogs.get_mut(&call_id) else {
                return;
            };
            let Some(key) = d.invite_key.clone() else {
                return;
            };
            // Borrow the stored INVITE by moving it out for the duration
            // of the answer build; it is put back below.
            let Some(invite) = d.pending_invite.take() else {
                return;
            };
            (key, invite, d.local_tag.clone())
        };
        let mut ok = SipMessage::response_to(&invite, StatusCode::OK);
        set_to_tag(&mut ok, &local_tag);
        let contact = self.render_cache(ctx).contact.clone();
        ok.headers_mut().push_owned("Contact", contact.clone());
        let mut answer_body = String::new();
        if let Ok(offer) = invite.body().parse::<Sdp>() {
            let answer = offer.answer(
                &self.cfg.aor.user,
                ctx.rng().next_u64() >> 1,
                SocketAddr::new(ctx.addr(), self.cfg.rtp_port),
            );
            if let Some(a) = answer {
                answer_body = self.sdp_body(ctx, &a);
                ok.set_body_string(answer_body.clone(), Some("application/sdp"));
            }
        }
        if let Some(d) = self.dialogs.get_mut(&call_id) {
            d.pending_invite = Some(invite);
            d.answer_resp = Some((contact, answer_body));
        }
        self.txn.respond(ctx, &key, ok);
        // Established is logged when the ACK arrives.
    }

    fn on_bye(&mut self, ctx: &mut Ctx<'_>, key: Arc<str>, msg: SipMessage) {
        let resp = SipMessage::response_to(&msg, StatusCode::OK);
        self.txn.respond(ctx, &key, resp);
        if let Some(call_id) = msg.call_id().map(str::to_owned) {
            if let Some(d) = self.dialogs.get_mut(&call_id) {
                if d.state != DialogState::Terminated {
                    d.state = DialogState::Terminated;
                    self.end_media(ctx, &call_id);
                    self.emit_log(
                        ctx,
                        CallEvent::Terminated {
                            call_id,
                            by_remote: true,
                        },
                    );
                }
            }
        }
    }

    fn on_cancel(&mut self, ctx: &mut Ctx<'_>, key: Arc<str>, msg: SipMessage) {
        let resp = SipMessage::response_to(&msg, StatusCode::OK);
        self.txn.respond(ctx, &key, resp);
        if let Some(call_id) = msg.call_id().map(str::to_owned) {
            let early_callee = self
                .dialogs
                .get(&call_id)
                .map(|d| d.state == DialogState::Early && d.role == Role::Callee)
                .unwrap_or(false);
            if early_callee {
                let (ikey, invite, tag) = {
                    let d = &self.dialogs[&call_id];
                    (
                        d.invite_key.clone(),
                        d.pending_invite.clone(),
                        d.local_tag.clone(),
                    )
                };
                if let (Some(ikey), Some(invite)) = (ikey, invite) {
                    let mut resp = SipMessage::response_to(&invite, StatusCode::TERMINATED);
                    set_to_tag(&mut resp, &tag);
                    self.txn.respond(ctx, &ikey, resp);
                }
                if let Some(d) = self.dialogs.get_mut(&call_id) {
                    d.state = DialogState::Terminated;
                    let span = d.span;
                    ctx.span_exit(span, false);
                }
                self.emit_log(
                    ctx,
                    CallEvent::Terminated {
                        call_id,
                        by_remote: true,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Responses
    // ------------------------------------------------------------------

    fn on_response(&mut self, ctx: &mut Ctx<'_>, branch: Arc<str>, msg: SipMessage) {
        if Some(&branch) == self.register_branch.as_ref() {
            let Some(status) = msg.status() else { return };
            if status == StatusCode::UNAUTHORIZED && self.cfg.identity.is_some() {
                // Challenged: retry once per challenge with a signed
                // credential. A second 401 on the retry is a real
                // failure (wrong key, hijacked pin) — do not loop.
                let challenge = msg
                    .headers()
                    .get(auth::WWW_AUTHENTICATE)
                    .and_then(|v| v.parse::<auth::Challenge>().ok());
                if let Some(ch) = challenge.filter(|_| !self.auth_inflight) {
                    self.auth_nonce = Some(ch.nonce);
                    self.auth_inflight = true;
                    ctx.stats().count("ua.auth_challenged", 1);
                    let expires = self.last_expires;
                    self.send_register(ctx, expires);
                    return;
                }
            }
            if status.is_success() {
                self.auth_inflight = false;
                ctx.span_exit(self.register_span, true);
                self.register_span = SpanId::NONE;
                if !self.registered {
                    self.registered = true;
                    self.emit_log(ctx, CallEvent::Registered);
                }
            } else if status.is_final() {
                self.auth_inflight = false;
                ctx.span_exit(self.register_span, false);
                self.register_span = SpanId::NONE;
                self.emit_log(ctx, CallEvent::RegisterFailed);
            }
            return;
        }
        let Some(call_id) = msg.call_id().map(str::to_owned) else {
            return;
        };
        let Some(status) = msg.status() else { return };
        let method = msg.cseq().map(|c| c.method).unwrap_or_default();

        if method == "INVITE" {
            let Some(d) = self.dialogs.get_mut(&call_id) else {
                return;
            };
            if status == StatusCode::RINGING && d.state == DialogState::Early {
                self.emit_log(ctx, CallEvent::Ringing { call_id });
                return;
            }
            if status.is_success() {
                let was_early = d.state == DialogState::Early;
                let prev_rtp = d.remote_rtp;
                d.state = DialogState::Confirmed;
                let new_tag = msg.to_header().and_then(|t| t.tag().map(str::to_owned));
                if new_tag != d.remote_tag {
                    d.remote_tag = new_tag;
                    let base = name_addr_value(&d.remote_aor);
                    d.hdr_to = match &d.remote_tag {
                        Some(t) => tagged(&base, t),
                        None => base,
                    };
                }
                if let Some(c) = msg.contact() {
                    d.remote_target = Some(c.uri);
                }
                if let Ok(sdp) = msg.body().parse::<Sdp>() {
                    d.remote_rtp = Some(sdp.rtp_endpoint());
                }
                // Only the 200 answering *our* outstanding re-INVITE may
                // re-home media: a duplicated (or corrupted) retransmit of
                // the original 200 must stay a bare re-ACK.
                let reinvite_done = !was_early
                    && d.reinvite_cseq.is_some()
                    && d.reinvite_cseq == msg.cseq().map(|c| c.seq);
                if reinvite_done {
                    d.reinvite_cseq = None;
                }
                let remote_rtp = d.remote_rtp;
                let duration = d.duration;
                let idx = d.idx;
                let (span, started_us) = (d.span, d.setup_started_us);
                // Always (re-)ACK, also for retransmitted 200s.
                self.send_ack(ctx, &call_id);
                if reinvite_done {
                    ctx.stats().count("sip.reinvite_ok", 1);
                    if let Some(rtp) = remote_rtp {
                        if prev_rtp != remote_rtp {
                            self.start_media(ctx, &call_id, rtp);
                        }
                    }
                }
                if was_early {
                    ctx.span_exit(span, true);
                    ctx.obs().counter_add("sip.calls_established", 1);
                    let setup = ctx.now_us().saturating_sub(started_us);
                    ctx.obs().hist_record("sip.call_setup_us", setup);
                    if let Some(rtp) = remote_rtp {
                        self.start_media(ctx, &call_id, rtp);
                        self.emit_log(
                            ctx,
                            CallEvent::Established {
                                call_id: call_id.clone(),
                                remote_rtp: rtp,
                            },
                        );
                    }
                    if let Some(dur) = duration {
                        ctx.set_timer(dur, tok(TAG_BYE, idx));
                    }
                }
            } else if status.is_final() {
                // Duplicated or reordered finals can race dialog teardown;
                // a missing dialog is a drop, not a crash.
                let Some(d) = self.dialogs.get_mut(&call_id) else {
                    ctx.stats().count("sip.malformed_dropped", 1);
                    return;
                };
                let (ended, cancelled) = {
                    let was_early = d.state == DialogState::Early;
                    d.state = DialogState::Terminated;
                    (was_early, d.cancelled)
                };
                let span = d.span;
                if ended {
                    ctx.span_exit(span, false);
                    if cancelled {
                        self.emit_log(
                            ctx,
                            CallEvent::Terminated {
                                call_id,
                                by_remote: false,
                            },
                        );
                    } else {
                        self.emit_log(
                            ctx,
                            CallEvent::Failed {
                                call_id,
                                code: Some(status.0),
                            },
                        );
                    }
                }
            }
        }
        // BYE and other in-dialog responses need no further action.
    }

    fn on_txn_timeout(&mut self, ctx: &mut Ctx<'_>, branch: Arc<str>, msg: SipMessage) {
        if Some(&branch) == self.register_branch.as_ref() {
            ctx.span_exit(self.register_span, false);
            self.register_span = SpanId::NONE;
            self.emit_log(ctx, CallEvent::RegisterFailed);
            return;
        }
        if msg.method() == Some(Method::Invite) {
            if let Some(call_id) = msg.call_id().map(str::to_owned) {
                if let Some(d) = self.dialogs.get_mut(&call_id) {
                    if d.state == DialogState::Early {
                        d.state = DialogState::Terminated;
                        let span = d.span;
                        ctx.span_exit(span, false);
                        self.emit_log(
                            ctx,
                            CallEvent::Failed {
                                call_id,
                                code: None,
                            },
                        );
                    }
                }
            }
        }
    }
}

impl Process for UserAgent {
    fn name(&self) -> &'static str {
        "voip-app"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(self.cfg.local_port);
        if self.cfg.register {
            self.send_register(
                ctx,
                self.cfg.register_expires.as_micros() as u32 / 1_000_000,
            );
            // Refresh at half-life.
            ctx.set_timer(self.cfg.register_expires / 2, tok(TAG_REGISTER, 0));
        }
        for (i, action) in self.cfg.script.clone().into_iter().enumerate() {
            let delay = action.at.saturating_since(ctx.now());
            ctx.set_timer(delay, tok(TAG_SCRIPT, i as u64));
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
            ctx.stats().count("ua.malformed", dgram.payload.len());
            return;
        };
        match self.txn.on_datagram(ctx, msg, dgram.src) {
            Some(TxnEvent::Request { key, msg, .. }) => match msg.method() {
                Some(Method::Invite) => self.on_invite(ctx, key, msg),
                Some(Method::Bye) => self.on_bye(ctx, key, msg),
                Some(Method::Cancel) => self.on_cancel(ctx, key, msg),
                Some(Method::Options) => {
                    let resp = SipMessage::response_to(&msg, StatusCode::OK);
                    self.txn.respond(ctx, &key, resp);
                }
                _ => {
                    let resp = SipMessage::response_to(&msg, StatusCode::SERVER_ERROR);
                    self.txn.respond(ctx, &key, resp);
                }
            },
            Some(TxnEvent::Ack { msg }) => {
                // Our 200 was acknowledged: the callee-side dialog is live.
                if let Some(call_id) = msg.call_id().map(str::to_owned) {
                    let info = self.dialogs.get_mut(&call_id).and_then(|d| {
                        if d.state == DialogState::Early && d.role == Role::Callee {
                            d.state = DialogState::Confirmed;
                            d.remote_rtp.map(|rtp| (rtp, d.span, d.setup_started_us))
                        } else {
                            None
                        }
                    });
                    if let Some((rtp, span, started_us)) = info {
                        ctx.span_exit(span, true);
                        ctx.obs().counter_add("sip.calls_established", 1);
                        let setup = ctx.now_us().saturating_sub(started_us);
                        ctx.obs().hist_record("sip.call_setup_us", setup);
                        self.start_media(ctx, &call_id, rtp);
                        self.emit_log(
                            ctx,
                            CallEvent::Established {
                                call_id,
                                remote_rtp: rtp,
                            },
                        );
                    }
                }
            }
            Some(TxnEvent::Response { branch, msg }) => self.on_response(ctx, branch, msg),
            Some(TxnEvent::Timeout { branch, msg }) => self.on_txn_timeout(ctx, branch, msg),
            None => {}
        }
        ctx.obs()
            .gauge_set("sip.txn_active", self.txn.active_count() as f64);
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        let LocalEvent::Custom { kind, data } = ev else {
            return;
        };
        if *kind != INTERNET_UP_EVENT {
            return;
        }
        let public = String::from_utf8_lossy(data).into_owned();
        let changed = self
            .last_public
            .as_deref()
            .is_some_and(|prev| prev != public);
        self.last_public = Some(public);
        if !changed {
            return;
        }
        // The node was renumbered mid-session (gateway handoff). Every
        // confirmed Internet call still names the dead lease in its
        // Contact/SDP on the remote side; re-INVITE so the proxy ALG
        // stamps the new public address and the peer re-targets media.
        let internet_calls: Vec<String> = self
            .dialogs
            .values()
            .filter(|d| {
                d.state == DialogState::Confirmed
                    && d.remote_rtp.is_some_and(|r| r.addr.is_public())
            })
            .map(|d| d.call_id.clone())
            .collect();
        for call_id in internet_calls {
            self.send_reinvite(ctx, &call_id);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.txn.owns_token(token) {
            // A shared-wheel token can resolve several coalesced
            // transaction deadlines at once.
            for ev in self.txn.on_timer(ctx, token) {
                if let TxnEvent::Timeout { branch, msg } = ev {
                    self.on_txn_timeout(ctx, branch, msg);
                }
            }
            ctx.obs()
                .gauge_set("sip.txn_active", self.txn.active_count() as f64);
            return;
        }
        let tag = token & 0xff;
        let idx = token >> 8;
        match tag {
            TAG_REGISTER => {
                self.send_register(
                    ctx,
                    self.cfg.register_expires.as_micros() as u32 / 1_000_000,
                );
                ctx.set_timer(self.cfg.register_expires / 2, tok(TAG_REGISTER, 0));
            }
            TAG_SCRIPT => {
                let Some(action) = self.cfg.script.get(idx as usize).cloned() else {
                    return;
                };
                match action.kind {
                    ActionKind::Call { to, duration } => self.place_call(ctx, to, duration),
                    ActionKind::HangupAll => {
                        let confirmed: Vec<String> = self
                            .dialogs
                            .values()
                            .filter(|d| d.state == DialogState::Confirmed)
                            .map(|d| d.call_id.clone())
                            .collect();
                        for id in confirmed {
                            self.send_bye(ctx, &id);
                        }
                        let ringing: Vec<String> = self
                            .dialogs
                            .values()
                            .filter(|d| d.state == DialogState::Early && d.role == Role::Caller)
                            .map(|d| d.call_id.clone())
                            .collect();
                        for id in ringing {
                            self.send_cancel(ctx, &id);
                        }
                    }
                    ActionKind::ReinviteAll => {
                        let confirmed: Vec<String> = self
                            .dialogs
                            .values()
                            .filter(|d| d.state == DialogState::Confirmed)
                            .map(|d| d.call_id.clone())
                            .collect();
                        for id in confirmed {
                            self.send_reinvite(ctx, &id);
                        }
                    }
                    ActionKind::Unregister => {
                        self.send_register(ctx, 0);
                        self.registered = false;
                    }
                }
            }
            TAG_ANSWER => self.answer_call(ctx, idx),
            TAG_BYE => {
                if let Some(call_id) = self
                    .dialog_by_idx
                    .get(&idx)
                    .filter(|id| {
                        self.dialogs
                            .get(id.as_str())
                            .is_some_and(|d| d.state == DialogState::Confirmed)
                    })
                    .cloned()
                {
                    self.send_bye(ctx, &call_id);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::prelude::*;

    /// Back-to-back test without a proxy: two UAs pointing their
    /// "outbound proxy" directly at each other's SIP port, with static
    /// routes. Exercises INVITE/180/200/ACK/media/BYE end-to-end.
    fn b2b_world() -> (World, UaLogHandle, UaLogHandle) {
        let mut w = World::new(WorldConfig::new(21).with_radio(RadioConfig::ideal()));
        let a = w.add_node(NodeConfig::manet(0.0, 0.0));
        let b = w.add_node(NodeConfig::manet(50.0, 0.0));
        let (aa, ba) = (w.node(a).addr(), w.node(b).addr());
        w.install_route(
            a,
            ba,
            Route {
                next_hop: ba,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );
        w.install_route(
            b,
            aa,
            Route {
                next_hop: aa,
                hops: 1,
                expires: SimTime::MAX,
                seq: 0,
            },
        );

        let alice = Aor::new("alice", "voicehoc.ch");
        let bob = Aor::new("bob", "voicehoc.ch");
        let mut cfg_a = UaConfig::new(alice, SocketAddr::new(ba, 5070));
        cfg_a.register = false; // no registrar in this test
        let cfg_a = cfg_a.call_at(
            SimTime::from_secs(1),
            bob.clone(),
            SimDuration::from_secs(5),
        );
        let mut cfg_b = UaConfig::new(bob, SocketAddr::new(aa, 5070));
        cfg_b.register = false;
        let (ua_a, log_a) = UserAgent::new(cfg_a);
        let (ua_b, log_b) = UserAgent::new(cfg_b);
        w.spawn(a, Box::new(ua_a));
        w.spawn(b, Box::new(ua_b));
        (w, log_a, log_b)
    }

    #[test]
    fn full_call_lifecycle_back_to_back() {
        let (mut w, log_a, log_b) = b2b_world();
        w.run_for(SimDuration::from_secs(10));
        let a = log_a.borrow();
        let b = log_b.borrow();
        assert!(a.any(|e| matches!(e, CallEvent::OutgoingCall { .. })));
        assert!(b.any(|e| matches!(e, CallEvent::IncomingCall { .. })));
        assert!(a.any(|e| matches!(e, CallEvent::Ringing { .. })));
        assert!(
            a.any(|e| matches!(e, CallEvent::Established { .. })),
            "{:?}",
            a.events()
        );
        assert!(
            b.any(|e| matches!(e, CallEvent::Established { .. })),
            "{:?}",
            b.events()
        );
        // Caller hangs up after 5 s of talk.
        assert!(a.any(|e| matches!(
            e,
            CallEvent::Terminated {
                by_remote: false,
                ..
            }
        )));
        assert!(b.any(|e| matches!(
            e,
            CallEvent::Terminated {
                by_remote: true,
                ..
            }
        )));
        // Timing: established ~1.2 s (1 s script + 200 ms ring).
        let est = a
            .first_time(|e| matches!(e, CallEvent::Established { .. }))
            .unwrap();
        assert!(
            est >= SimTime::from_millis(1150) && est < SimTime::from_millis(1600),
            "{est}"
        );
        let bye = a
            .first_time(|e| matches!(e, CallEvent::Terminated { .. }))
            .unwrap();
        assert!(bye.saturating_since(est) >= SimDuration::from_secs(5));
    }

    #[test]
    fn sdp_endpoints_exchanged_correctly() {
        let (mut w, log_a, log_b) = b2b_world();
        w.run_for(SimDuration::from_secs(4));
        let a = log_a.borrow();
        let b = log_b.borrow();
        let a_remote = a
            .events()
            .iter()
            .find_map(|(_, e)| match e {
                CallEvent::Established { remote_rtp, .. } => Some(*remote_rtp),
                _ => None,
            })
            .unwrap();
        let b_remote = b
            .events()
            .iter()
            .find_map(|(_, e)| match e {
                CallEvent::Established { remote_rtp, .. } => Some(*remote_rtp),
                _ => None,
            })
            .unwrap();
        // Each side points at the *other* node's RTP socket.
        assert_eq!(a_remote.to_string(), "10.0.0.2:8000");
        assert_eq!(b_remote.to_string(), "10.0.0.1:8000");
    }

    #[test]
    fn call_to_nowhere_times_out() {
        let mut w = World::new(WorldConfig::new(22).with_radio(RadioConfig::ideal()));
        let a = w.add_node(NodeConfig::manet(0.0, 0.0));
        // Outbound proxy points at a dead address with a static route into
        // the void (packets fall into pending and get dropped).
        let mut cfg = UaConfig::new(
            Aor::new("alice", "voicehoc.ch"),
            SocketAddr::new(Addr::manet(99), 5060),
        );
        cfg.register = false;
        let cfg = cfg.call_at(
            SimTime::from_secs(1),
            Aor::new("ghost", "nowhere.org"),
            SimDuration::from_secs(5),
        );
        let (ua, log) = UserAgent::new(cfg);
        w.spawn(a, Box::new(ua));
        w.run_for(SimDuration::from_secs(60));
        let log = log.borrow();
        assert!(
            log.any(|e| matches!(e, CallEvent::Failed { code: None, .. })),
            "{:?}",
            log.events()
        );
    }

    #[test]
    fn media_events_emitted_on_establish_and_teardown() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct MediaProbe {
            events: Rc<RefCell<Vec<String>>>,
        }
        impl Process for MediaProbe {
            fn name(&self) -> &'static str {
                "media-probe"
            }
            fn on_local_event(&mut self, _ctx: &mut Ctx<'_>, ev: &LocalEvent) {
                if let LocalEvent::Custom { kind, data } = ev {
                    if *kind == MEDIA_START_EVENT || *kind == MEDIA_STOP_EVENT {
                        self.events
                            .borrow_mut()
                            .push(format!("{kind}:{}", String::from_utf8_lossy(data)));
                    }
                }
            }
        }

        let (mut w, _log_a, _log_b) = b2b_world();
        let probe_events = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            NodeId(0),
            Box::new(MediaProbe {
                events: probe_events.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(10));
        let evs = probe_events.borrow();
        assert!(
            evs.iter().any(|e| e.starts_with("sip.media_start:")),
            "{evs:?}"
        );
        assert!(
            evs.iter().any(|e| e.starts_with("sip.media_stop:")),
            "{evs:?}"
        );
        // Start payload carries local port and the peer RTP endpoint.
        let start = evs
            .iter()
            .find(|e| e.starts_with("sip.media_start:"))
            .unwrap();
        assert!(start.contains("|8000|10.0.0.2:8000"), "{start}");
    }
}
