//! Minimal SDP (RFC 4566 subset) for audio offer/answer.
//!
//! An INVITE carries an offer naming where the caller wants RTP; the 200 OK
//! answers with the callee's RTP endpoint. Only a single G.711 µ-law audio
//! stream (payload type 0) is modeled — what the paper's softphones
//! (Kphone, Twinkle, Minisip) negotiate by default.

use std::fmt;
use std::str::FromStr;

use siphoc_simnet::net::{Addr, SocketAddr};

/// An SDP session description for one audio stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdp {
    /// Session originator username (`o=` line).
    pub origin_user: String,
    /// Session id / version (`o=` line).
    pub session_id: u64,
    /// Connection address (`c=` line).
    pub addr: Addr,
    /// Audio media port (`m=` line).
    pub audio_port: u16,
    /// Offered RTP/AVP payload types (0 = PCMU).
    pub payload_types: Vec<u8>,
}

impl Sdp {
    /// Builds a standard single-stream PCMU description.
    pub fn audio(user: &str, session_id: u64, rtp: SocketAddr) -> Sdp {
        Sdp {
            origin_user: user.to_owned(),
            session_id,
            addr: rtp.addr,
            audio_port: rtp.port,
            payload_types: vec![0],
        }
    }

    /// The RTP endpoint this description names.
    pub fn rtp_endpoint(&self) -> SocketAddr {
        SocketAddr::new(self.addr, self.audio_port)
    }

    /// Produces the answer to this offer from the given local endpoint,
    /// intersecting payload types (first common type wins).
    pub fn answer(&self, user: &str, session_id: u64, rtp: SocketAddr) -> Option<Sdp> {
        let common: Vec<u8> = self.payload_types.iter().copied().take(1).collect();
        if common.is_empty() {
            return None;
        }
        Some(Sdp {
            origin_user: user.to_owned(),
            session_id,
            addr: rtp.addr,
            audio_port: rtp.port,
            payload_types: common,
        })
    }
}

impl fmt::Display for Sdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "v=0\r")?;
        writeln!(
            f,
            "o={} {} {} IN IP4 {}\r",
            self.origin_user, self.session_id, self.session_id, self.addr
        )?;
        writeln!(f, "s=-\r")?;
        writeln!(f, "c=IN IP4 {}\r", self.addr)?;
        writeln!(f, "t=0 0\r")?;
        let types: Vec<String> = self.payload_types.iter().map(u8::to_string).collect();
        writeln!(
            f,
            "m=audio {} RTP/AVP {}\r",
            self.audio_port,
            types.join(" ")
        )?;
        Ok(())
    }
}

/// Error returned when SDP fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSdpError {
    what: &'static str,
}

impl fmt::Display for ParseSdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SDP: {}", self.what)
    }
}

impl std::error::Error for ParseSdpError {}

impl FromStr for Sdp {
    type Err = ParseSdpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |what| ParseSdpError { what };
        let mut origin_user = None;
        let mut session_id = 0u64;
        let mut addr = None;
        let mut audio = None;
        for line in s.lines() {
            let line = line.trim_end_matches('\r');
            if let Some(o) = line.strip_prefix("o=") {
                let mut it = o.split_whitespace();
                origin_user = Some(it.next().ok_or_else(|| err("o= user"))?.to_owned());
                session_id = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("o= id"))?;
            } else if let Some(c) = line.strip_prefix("c=") {
                let a = c
                    .strip_prefix("IN IP4 ")
                    .ok_or_else(|| err("c= network type"))?;
                addr = Some(a.trim().parse().map_err(|_| err("c= address"))?);
            } else if let Some(m) = line.strip_prefix("m=audio ") {
                let mut it = m.split_whitespace();
                let port: u16 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| err("m= port"))?;
                let proto = it.next().ok_or_else(|| err("m= proto"))?;
                if proto != "RTP/AVP" {
                    return Err(err("m= proto"));
                }
                let types: Vec<u8> = it.filter_map(|t| t.parse().ok()).collect();
                if types.is_empty() {
                    return Err(err("m= payload types"));
                }
                audio = Some((port, types));
            }
        }
        let (audio_port, payload_types) = audio.ok_or_else(|| err("missing m=audio"))?;
        Ok(Sdp {
            origin_user: origin_user.ok_or_else(|| err("missing o="))?,
            session_id,
            addr: addr.ok_or_else(|| err("missing c="))?,
            audio_port,
            payload_types,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let sdp = Sdp::audio("alice", 42, "10.0.0.1:8000".parse().unwrap());
        let text = sdp.to_string();
        assert!(text.contains("m=audio 8000 RTP/AVP 0\r"));
        assert_eq!(text.parse::<Sdp>().unwrap(), sdp);
    }

    #[test]
    fn answer_picks_common_type() {
        let offer = Sdp::audio("alice", 1, "10.0.0.1:8000".parse().unwrap());
        let ans = offer
            .answer("bob", 2, "10.0.0.2:8002".parse().unwrap())
            .unwrap();
        assert_eq!(ans.payload_types, vec![0]);
        assert_eq!(ans.rtp_endpoint().to_string(), "10.0.0.2:8002");
    }

    #[test]
    fn rejects_missing_sections() {
        assert!("v=0\r\n".parse::<Sdp>().is_err());
        assert!("o=a 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\n"
            .parse::<Sdp>()
            .is_err());
        assert!(
            "o=a 1 1 IN IP4 x\r\nc=IN IP6 ::1\r\nm=audio 1 RTP/AVP 0\r\n"
                .parse::<Sdp>()
                .is_err()
        );
    }

    #[test]
    fn rejects_non_avp_media() {
        let text = "o=a 1 1 IN IP4 10.0.0.1\r\nc=IN IP4 10.0.0.1\r\nm=audio 8000 UDP/TLS 0\r\n";
        assert!(text.parse::<Sdp>().is_err());
    }
}
