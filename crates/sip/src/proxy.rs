//! Stateless proxy primitives (RFC 3261 §16.11).
//!
//! Both the SIPHoc proxy (`siphoc-core`) and the simulated Internet
//! providers (`siphoc-internet`) forward requests and responses
//! statelessly: requests gain a Via whose branch is **derived
//! deterministically from the incoming top branch**, so retransmissions
//! and the ACK of a 2xx take the same path and keep matching downstream
//! server transactions; responses pop the proxy's Via and follow the next
//! one. End-to-end reliability stays with the user agents' transaction
//! layers.

use siphoc_simnet::net::SocketAddr;
use siphoc_simnet::process::Ctx;

use crate::headers::{Via, BRANCH_COOKIE};
use crate::msg::{SipMessage, StatusCode};

/// Derives the deterministic branch a stateless proxy uses when
/// forwarding a request whose top Via carries `incoming_branch`.
pub fn derive_branch(incoming_branch: &str) -> String {
    // FNV-1a over the incoming branch: stable, cheap, collision-unlikely
    // at simulation scale.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in incoming_branch.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{BRANCH_COOKIE}p{h:016x}")
}

/// Outcome of [`prepare_forward_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Forward the (rewritten) request.
    Forward(SipMessage),
    /// Max-Forwards exhausted: answer 483/processing error instead.
    Reject(StatusCode),
}

/// Prepares a request for stateless forwarding from `sent_by`:
/// decrements Max-Forwards and pushes the proxy's Via with a derived
/// branch. Does not transmit.
pub fn prepare_forward_request(mut msg: SipMessage, sent_by: SocketAddr) -> ForwardDecision {
    let mf = msg.max_forwards().unwrap_or(70);
    if mf == 0 {
        return ForwardDecision::Reject(StatusCode::SERVER_ERROR);
    }
    msg.headers_mut().set("Max-Forwards", mf - 1);
    let incoming = msg.top_via().map(|v| v.branch).unwrap_or_default();
    let via = Via::new(sent_by, &derive_branch(&incoming));
    msg.headers_mut().push_front("Via", via);
    ForwardDecision::Forward(msg)
}

/// Prepares a response for stateless forwarding: pops the top Via (which
/// must be the proxy's own) and returns the message plus where to send it
/// (the next Via's response target). Returns `None` when no Via remains —
/// the response was addressed to the proxy itself or is malformed.
pub fn prepare_forward_response(mut msg: SipMessage) -> Option<(SipMessage, SocketAddr)> {
    msg.headers_mut().remove_first("Via")?;
    let next = msg.top_via()?;
    let target = next.response_target();
    Some((msg, target))
}

/// Transmits a SIP message from `port` on the current node.
pub fn transmit(ctx: &mut Ctx<'_>, port: u16, msg: &SipMessage, dst: SocketAddr) {
    let wire = msg.to_bytes();
    ctx.stats().count("sip.proxy_fwd", wire.len());
    ctx.send_to(dst, port, wire);
}

/// Builds a stateless response to `req` (no server transaction): mirrors
/// the mandatory headers and adds a To tag if missing.
pub fn stateless_response(req: &SipMessage, code: StatusCode, ctx: &mut Ctx<'_>) -> SipMessage {
    let mut resp = SipMessage::response_to(req, code);
    if let Some(mut to) = resp.to_header() {
        if to.tag().is_none() {
            to.set_tag(&format!("{:08x}", ctx.rng().next_u64() as u32));
            resp.headers_mut().set("To", to);
        }
    }
    resp
}

/// Where a stateless element sends a response it originates: the top
/// Via's response target.
pub fn response_target(req: &SipMessage) -> Option<SocketAddr> {
    req.top_via().map(|v| v.response_target())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Method;
    use crate::uri::SipUri;

    fn req_with_via(branch: &str) -> SipMessage {
        let uri: SipUri = "sip:bob@voicehoc.ch".parse().unwrap();
        let mut m = SipMessage::request(Method::Invite, uri);
        m.headers_mut()
            .push("Via", format!("SIP/2.0/UDP 10.0.0.1:5070;branch={branch}"));
        m.headers_mut().push("Max-Forwards", 70);
        m.headers_mut()
            .push("From", "<sip:alice@voicehoc.ch>;tag=a");
        m.headers_mut().push("To", "<sip:bob@voicehoc.ch>");
        m.headers_mut().push("Call-ID", "c1");
        m.headers_mut().push("CSeq", "1 INVITE");
        m
    }

    #[test]
    fn derive_branch_is_deterministic_and_distinct() {
        let a = derive_branch("z9hG4bKabc");
        let b = derive_branch("z9hG4bKabc");
        let c = derive_branch("z9hG4bKxyz");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with(BRANCH_COOKIE));
    }

    #[test]
    fn forward_request_stacks_via_and_decrements_mf() {
        let req = req_with_via("z9hG4bKorig");
        let sent_by: SocketAddr = "10.0.0.5:5060".parse().unwrap();
        let ForwardDecision::Forward(fwd) = prepare_forward_request(req, sent_by) else {
            panic!("should forward");
        };
        assert_eq!(fwd.max_forwards(), Some(69));
        let vias = fwd.headers().get_all("Via");
        assert_eq!(vias.len(), 2);
        assert!(vias[0].contains("10.0.0.5:5060"));
        assert!(vias[0].contains(&derive_branch("z9hG4bKorig")));
    }

    #[test]
    fn exhausted_max_forwards_rejected() {
        let mut req = req_with_via("z9hG4bKorig");
        req.headers_mut().set("Max-Forwards", 0);
        let sent_by: SocketAddr = "10.0.0.5:5060".parse().unwrap();
        assert!(matches!(
            prepare_forward_request(req, sent_by),
            ForwardDecision::Reject(_)
        ));
    }

    #[test]
    fn forward_response_pops_and_targets_next_via() {
        let req = req_with_via("z9hG4bKorig");
        let sent_by: SocketAddr = "10.0.0.5:5060".parse().unwrap();
        let ForwardDecision::Forward(fwd) = prepare_forward_request(req, sent_by) else {
            panic!();
        };
        let resp = SipMessage::response_to(&fwd, StatusCode::OK);
        let (popped, target) = prepare_forward_response(resp).unwrap();
        assert_eq!(target.to_string(), "10.0.0.1:5070");
        assert_eq!(popped.headers().get_all("Via").len(), 1);
        // A response with a single Via has nowhere further to go.
        let resp2 = popped;
        assert!(prepare_forward_response(resp2).is_none());
    }
}
