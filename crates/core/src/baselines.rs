//! Related-work baselines, implemented rather than cited.
//!
//! The paper's §5 dismisses several earlier approaches to SIP session
//! establishment in MANETs. To let the experiments measure those claims
//! (E2 lookup delay, E3 control overhead, A1 ablation), the two main
//! alternatives are implemented behind the *same* `127.0.0.1:427` client
//! API as MANET SLP, so harnesses can swap them in for the SIPHoc proxy's
//! location service without touching anything else:
//!
//! * [`BroadcastRegistration`] — "fully distributed SIP session initiation
//!   [...] incorporating REGISTER broadcast messages which makes the
//!   approach inefficient and SIP incompatible" (Leggio et al.): every
//!   registration is flooded network-wide and refreshed by re-flooding;
//!   lookups are answered from the local replica.
//! * [`ProactiveHello`] — "a pro-active mapping of all SIP clients in the
//!   MANETs using a HELLO method \[which\] leads to inefficient utilization
//!   of resources if the mappings remain unused" (O'Doherty's Pico SIP):
//!   every node periodically broadcasts its entire mapping table in
//!   dedicated one-hop HELLOs; mappings spread epidemically.
//!
//! Both pay with dedicated control packets for what MANET SLP gets (nearly)
//! free by piggybacking on routing traffic.

use std::collections::BTreeMap;

use siphoc_simnet::net::{ports, Addr, Datagram, L2Dst, SocketAddr};
use siphoc_simnet::process::{Ctx, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use siphoc_slp::msg::SlpMsg;
use siphoc_slp::registry::SlpRegistry;
use siphoc_slp::service::ServiceEntry;

/// Configuration shared by the baseline location services.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Refresh period: re-flood (broadcast mode) or HELLO period
    /// (proactive mode).
    pub refresh_interval: SimDuration,
    /// Flood radius for broadcast registrations.
    pub flood_ttl: u8,
    /// How long a lookup waits for the replica to fill before reporting
    /// "not found".
    pub lookup_timeout: SimDuration,
    /// Lifetime of disseminated entries.
    pub entry_lifetime: SimDuration,
}

impl Default for BaselineConfig {
    fn default() -> BaselineConfig {
        BaselineConfig {
            refresh_interval: SimDuration::from_secs(10),
            flood_ttl: 16,
            lookup_timeout: SimDuration::from_secs(2),
            entry_lifetime: SimDuration::from_secs(60),
        }
    }
}

const TAG_REFRESH: u64 = 1;
const TAG_LOOKUP: u64 = 2;
const TAG_PURGE: u64 = 3;

#[derive(Debug)]
struct PendingLookup {
    xid: u32,
    requester: SocketAddr,
    service_type: String,
    key: String,
    deadline: SimTime,
}

/// Common machinery of both baselines: local registry, client API,
/// pending lookups.
struct BaselineCore {
    cfg: BaselineConfig,
    registry: SlpRegistry,
    pending: Vec<PendingLookup>,
}

impl BaselineCore {
    fn new(cfg: BaselineConfig) -> BaselineCore {
        BaselineCore {
            cfg,
            registry: SlpRegistry::new(),
            pending: Vec::new(),
        }
    }

    fn reply(&self, ctx: &mut Ctx<'_>, to: SocketAddr, xid: u32, entries: Vec<ServiceEntry>) {
        let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
        ctx.send(Datagram::new(
            src,
            to,
            SlpMsg::SrvRply { xid, entries }.to_wire(),
        ));
    }

    /// Handles a client API message; returns a newly registered local
    /// entry when one was created (for immediate dissemination).
    fn on_client_msg(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: SlpMsg,
        from: SocketAddr,
    ) -> Option<ServiceEntry> {
        match msg {
            SlpMsg::SrvReg {
                xid,
                service_type,
                key,
                contact,
                lifetime_secs,
            } => {
                let now = ctx.now();
                let origin = ctx.addr();
                let seq = self.registry.next_seq();
                let entry = ServiceEntry {
                    service_type,
                    key,
                    contact,
                    origin,
                    seq,
                    lifetime_secs,
                    auth: None,
                };
                self.registry.register_local(entry.clone(), now);
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(src, from, SlpMsg::SrvAck { xid }.to_wire()));
                Some(entry)
            }
            SlpMsg::SrvDeReg {
                xid,
                service_type,
                key,
            } => {
                let origin = ctx.addr();
                self.registry.deregister_local(&service_type, &key, origin);
                let src = SocketAddr::new(Addr::LOOPBACK, ports::SLP);
                ctx.send(Datagram::new(src, from, SlpMsg::SrvAck { xid }.to_wire()));
                None
            }
            SlpMsg::SrvRqst {
                xid,
                service_type,
                key,
            } => {
                let now = ctx.now();
                let found: Vec<ServiceEntry> = self
                    .registry
                    .lookup(&service_type, &key, now)
                    .into_iter()
                    .cloned()
                    .collect();
                if found.is_empty() {
                    let deadline = now + self.cfg.lookup_timeout;
                    self.pending.push(PendingLookup {
                        xid,
                        requester: from,
                        service_type,
                        key,
                        deadline,
                    });
                    ctx.set_timer(self.cfg.lookup_timeout, TAG_LOOKUP);
                } else {
                    self.reply(ctx, from, xid, found);
                }
                None
            }
            _ => None,
        }
    }

    /// Serves pending lookups the replica can now satisfy; expires the
    /// rest.
    fn drain_pending(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let mut done = Vec::new();
        for (i, p) in self.pending.iter().enumerate() {
            let found: Vec<ServiceEntry> = self
                .registry
                .lookup(&p.service_type, &p.key, now)
                .into_iter()
                .cloned()
                .collect();
            if !found.is_empty() {
                done.push((i, p.requester, p.xid, found));
            } else if p.deadline <= now {
                done.push((i, p.requester, p.xid, Vec::new()));
            }
        }
        for (i, requester, xid, found) in done.into_iter().rev() {
            self.pending.remove(i);
            self.reply(ctx, requester, xid, found);
        }
    }

    fn absorb(&mut self, ctx: &mut Ctx<'_>, entry: ServiceEntry) -> bool {
        let now = ctx.now();
        let fresh = self.registry.absorb(entry, now);
        if fresh {
            self.drain_pending(ctx);
        }
        fresh
    }
}

// ----------------------------------------------------------------------
// Broadcast registration (Leggio et al.)
// ----------------------------------------------------------------------

/// Flooded-REGISTER location service. Wire: `BREG <origin> <fid> <ttl>`
/// then one entry per line.
pub struct BroadcastRegistration {
    core: BaselineCore,
    seen: BTreeMap<(Addr, u32), SimTime>,
    next_fid: u32,
}

impl std::fmt::Debug for BroadcastRegistration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastRegistration")
            .finish_non_exhaustive()
    }
}

impl BroadcastRegistration {
    /// Creates the baseline process.
    pub fn new(cfg: BaselineConfig) -> BroadcastRegistration {
        BroadcastRegistration {
            core: BaselineCore::new(cfg),
            seen: BTreeMap::new(),
            next_fid: 0,
        }
    }

    fn flood_entries(
        &mut self,
        ctx: &mut Ctx<'_>,
        origin: Addr,
        fid: u32,
        ttl: u8,
        entries: &[ServiceEntry],
    ) {
        let mut payload = format!("BREG {origin} {fid} {ttl}").into_bytes();
        for e in entries {
            payload.push(b'\n');
            payload.extend_from_slice(&e.to_wire());
        }
        ctx.stats().count("bcast_reg.flood", payload.len());
        let src = SocketAddr::new(ctx.addr(), ports::SLP);
        let dst = SocketAddr::new(Addr::BROADCAST, ports::SLP);
        ctx.send_link(L2Dst::Broadcast, Datagram::new(src, dst, payload));
    }

    fn flood_own(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let own = self.core.registry.local_entries(now);
        if own.is_empty() {
            return;
        }
        self.next_fid += 1;
        let fid = self.next_fid;
        let ttl = self.core.cfg.flood_ttl;
        let origin = ctx.addr();
        self.seen.insert((origin, fid), now);
        self.flood_entries(ctx, origin, fid, ttl, &own);
    }

    fn on_flood(&mut self, ctx: &mut Ctx<'_>, payload: &[u8]) {
        let text = String::from_utf8_lossy(payload);
        let mut lines = text.lines();
        let Some(head) = lines.next() else { return };
        let mut it = head.split_ascii_whitespace();
        if it.next() != Some("BREG") {
            return;
        }
        let (Some(origin), Some(fid), Some(ttl)) = (
            it.next().and_then(|v| v.parse::<Addr>().ok()),
            it.next().and_then(|v| v.parse::<u32>().ok()),
            it.next().and_then(|v| v.parse::<u8>().ok()),
        ) else {
            return;
        };
        if origin == ctx.addr() || self.seen.contains_key(&(origin, fid)) {
            return;
        }
        self.seen.insert((origin, fid), ctx.now());
        let entries: Vec<ServiceEntry> = lines.filter_map(|l| l.parse().ok()).collect();
        for e in &entries {
            self.core.absorb(ctx, e.clone());
        }
        if ttl > 1 {
            self.flood_entries(ctx, origin, fid, ttl - 1, &entries);
        }
    }
}

impl Process for BroadcastRegistration {
    fn name(&self) -> &'static str {
        "bcast-registration"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SLP);
        let jitter = ctx
            .rng()
            .range_u64(0, self.core.cfg.refresh_interval.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), TAG_REFRESH);
        ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if dgram.payload.starts_with(b"BREG") {
            self.on_flood(ctx, &dgram.payload);
            return;
        }
        if let Ok(msg) = SlpMsg::parse(&dgram.payload) {
            if self.core.on_client_msg(ctx, msg, dgram.src).is_some() {
                // New local registration: flood it immediately — the
                // defining behavior of this approach.
                self.flood_own(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TAG_REFRESH => {
                self.flood_own(ctx);
                ctx.set_timer(self.core.cfg.refresh_interval, TAG_REFRESH);
            }
            TAG_LOOKUP => self.core.drain_pending(ctx),
            TAG_PURGE => {
                let now = ctx.now();
                self.core.registry.purge(now);
                self.seen
                    .retain(|_, t| now.saturating_since(*t) < SimDuration::from_secs(60));
                ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Proactive HELLO mapping (Pico SIP)
// ----------------------------------------------------------------------

/// Periodic full-mapping HELLO broadcaster. Wire: `PHELLO` then one entry
/// per line; one hop, epidemic convergence through re-broadcast of
/// learned entries.
pub struct ProactiveHello {
    core: BaselineCore,
}

impl std::fmt::Debug for ProactiveHello {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProactiveHello").finish_non_exhaustive()
    }
}

impl ProactiveHello {
    /// Creates the baseline process.
    pub fn new(cfg: BaselineConfig) -> ProactiveHello {
        ProactiveHello {
            core: BaselineCore::new(cfg),
        }
    }

    fn hello(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let all = self.core.registry.all_entries(now);
        // HELLOs go out even when empty — "inefficient utilization of
        // resources if the mappings remain unused" is the measured claim.
        let mut payload = b"PHELLO".to_vec();
        for e in &all {
            payload.push(b'\n');
            payload.extend_from_slice(&e.to_wire());
        }
        ctx.stats().count("phello.hello", payload.len());
        let src = SocketAddr::new(ctx.addr(), ports::SLP);
        let dst = SocketAddr::new(Addr::BROADCAST, ports::SLP);
        ctx.send_link(L2Dst::Broadcast, Datagram::new(src, dst, payload));
    }
}

impl Process for ProactiveHello {
    fn name(&self) -> &'static str {
        "proactive-hello"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SLP);
        let jitter = ctx
            .rng()
            .range_u64(0, self.core.cfg.refresh_interval.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), TAG_REFRESH);
        ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if dgram.payload.starts_with(b"PHELLO") {
            if dgram.src.addr == ctx.addr() {
                return;
            }
            let text = String::from_utf8_lossy(&dgram.payload);
            for line in text.lines().skip(1) {
                if let Ok(e) = line.parse::<ServiceEntry>() {
                    self.core.absorb(ctx, e);
                }
            }
            return;
        }
        if let Ok(msg) = SlpMsg::parse(&dgram.payload) {
            let _ = self.core.on_client_msg(ctx, msg, dgram.src);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TAG_REFRESH => {
                self.hello(ctx);
                ctx.set_timer(self.core.cfg.refresh_interval, TAG_REFRESH);
            }
            TAG_LOOKUP => self.core.drain_pending(ctx),
            TAG_PURGE => {
                let now = ctx.now();
                self.core.registry.purge(now);
                ctx.set_timer(SimDuration::from_secs(10), TAG_PURGE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Client {
        register: Option<(String, SocketAddr)>,
        lookup_at: Option<(SimTime, String)>,
        replies: Rc<RefCell<Vec<(SimTime, usize)>>>,
    }
    impl Process for Client {
        fn name(&self) -> &'static str {
            "client"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(9400);
            if let Some((key, contact)) = self.register.take() {
                let m = SlpMsg::SrvReg {
                    xid: 1,
                    service_type: "sip".into(),
                    key,
                    contact,
                    lifetime_secs: 600,
                };
                ctx.send_local(ports::SLP, 9400, m.to_wire());
            }
            if let Some((at, _)) = &self.lookup_at {
                ctx.set_timer(at.saturating_since(ctx.now()), 5);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            if token == 5 {
                if let Some((_, key)) = self.lookup_at.take() {
                    let m = SlpMsg::SrvRqst {
                        xid: 2,
                        service_type: "sip".into(),
                        key,
                    };
                    ctx.send_local(ports::SLP, 9400, m.to_wire());
                }
            }
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: &Datagram) {
            if let Ok(SlpMsg::SrvRply { entries, .. }) = SlpMsg::parse(&d.payload) {
                self.replies.borrow_mut().push((ctx.now(), entries.len()));
            }
        }
    }

    fn chain<F: Fn() -> Box<dyn Process>>(n: usize, make: F) -> (World, Vec<NodeId>) {
        let mut w = World::new(WorldConfig::new(81).with_radio(RadioConfig::ideal()));
        let ids: Vec<NodeId> = (0..n)
            .map(|i| w.add_node(NodeConfig::manet(i as f64 * 80.0, 0.0)))
            .collect();
        for &id in &ids {
            w.spawn(id, make());
        }
        (w, ids)
    }

    #[test]
    fn broadcast_registration_replicates_to_all_nodes() {
        let (mut w, ids) = chain(4, || {
            Box::new(BroadcastRegistration::new(BaselineConfig::default()))
        });
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            ids[3],
            Box::new(Client {
                register: Some(("bob@v.ch".into(), "10.0.0.4:5060".parse().unwrap())),
                lookup_at: None,
                replies: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        w.spawn(
            ids[0],
            Box::new(Client {
                register: None,
                lookup_at: Some((SimTime::from_secs(2), "bob@v.ch".into())),
                replies: replies.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(10));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, 1, "lookup answered from local replica");
        // The lookup was fast: the flood replicated before it was issued.
        assert!(r[0].0 < SimTime::from_millis(2200), "{}", r[0].0);
    }

    #[test]
    fn proactive_hello_converges_within_a_few_periods() {
        let cfg = BaselineConfig {
            refresh_interval: SimDuration::from_secs(2),
            ..BaselineConfig::default()
        };
        let (mut w, ids) = chain(4, || Box::new(ProactiveHello::new(cfg.clone())));
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            ids[3],
            Box::new(Client {
                register: Some(("bob@v.ch".into(), "10.0.0.4:5060".parse().unwrap())),
                lookup_at: None,
                replies: Rc::new(RefCell::new(Vec::new())),
            }),
        );
        // Chain of 4: needs ≥3 HELLO periods to cross; look up at t=15.
        w.spawn(
            ids[0],
            Box::new(Client {
                register: None,
                lookup_at: Some((SimTime::from_secs(15), "bob@v.ch".into())),
                replies: replies.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(20));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, 1, "mapping replicated epidemically");
    }

    #[test]
    fn proactive_hello_sends_even_with_no_mappings() {
        let cfg = BaselineConfig {
            refresh_interval: SimDuration::from_secs(2),
            ..BaselineConfig::default()
        };
        let (mut w, ids) = chain(2, || Box::new(ProactiveHello::new(cfg.clone())));
        w.run_for(SimDuration::from_secs(10));
        // The cited inefficiency: resources burned with zero users.
        assert!(w.node(ids[0]).stats().get("phello.hello").packets >= 4);
    }

    #[test]
    fn lookup_for_missing_key_times_out_empty() {
        let (mut w, ids) = chain(2, || {
            Box::new(BroadcastRegistration::new(BaselineConfig::default()))
        });
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            ids[0],
            Box::new(Client {
                register: None,
                lookup_at: Some((SimTime::from_secs(1), "ghost@v.ch".into())),
                replies: replies.clone(),
            }),
        );
        w.run_for(SimDuration::from_secs(10));
        let r = replies.borrow();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, 0);
    }
}
