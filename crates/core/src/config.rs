//! VoIP application configuration — paper Fig. 2 as data.
//!
//! "Typically, VoIP applications require a SIP configuration for your SIP
//! user account. Imagine that your SIP provider is voicehoc.ch and your
//! username is Alice... The only difference to the traditional
//! configuration for use in the Internet is that an outbound proxy is
//! specified. By specifying the outbound-proxy to be localhost, we make
//! sure that all the SIP traffic is routed through the \[SIPHoc\] proxy
//! running locally."

use serde::{Deserialize, Serialize};

use siphoc_simnet::net::{ports, Addr, SocketAddr};
use siphoc_simnet::time::SimDuration;

use siphoc_sip::ua::UaConfig;
use siphoc_sip::uri::Aor;

/// The account dialog of a SIP softphone (Kphone in the paper's Fig. 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoipAppConfig {
    /// User name, e.g. `Alice`.
    pub username: String,
    /// SIP provider domain, e.g. `voicehoc.ch`.
    pub domain: String,
    /// Outbound proxy; `"localhost"` routes everything through SIPHoc.
    pub outbound_proxy: String,
    /// Local SIP port of the application.
    pub sip_port: u16,
    /// Local RTP port offered in SDP.
    pub rtp_port: u16,
    /// Registration lifetime in seconds.
    pub register_expires_secs: u32,
}

impl VoipAppConfig {
    /// The paper's example: `Alice` at `voicehoc.ch`, outbound proxy
    /// `localhost` (Fig. 2 verbatim).
    pub fn fig2(username: &str, domain: &str) -> VoipAppConfig {
        VoipAppConfig {
            username: username.to_owned(),
            domain: domain.to_owned(),
            outbound_proxy: "localhost".to_owned(),
            sip_port: 5070,
            rtp_port: 8000,
            register_expires_secs: 3600,
        }
    }

    /// The user's address-of-record.
    pub fn aor(&self) -> Aor {
        Aor::new(&self.username, &self.domain)
    }

    /// Resolves the outbound proxy field to a socket address.
    /// `"localhost"` maps to the SIPHoc proxy on `127.0.0.1:5060`.
    pub fn outbound_proxy_addr(&self) -> Option<SocketAddr> {
        if self.outbound_proxy.eq_ignore_ascii_case("localhost") {
            return Some(SocketAddr::new(Addr::LOOPBACK, ports::SIPHOC_PROXY));
        }
        if let Ok(sa) = self.outbound_proxy.parse::<SocketAddr>() {
            return Some(sa);
        }
        self.outbound_proxy
            .parse::<Addr>()
            .ok()
            .map(|a| SocketAddr::new(a, ports::SIP))
    }

    /// Builds the user-agent configuration this application dialog
    /// describes.
    pub fn to_ua_config(&self) -> Option<UaConfig> {
        let proxy = self.outbound_proxy_addr()?;
        let mut ua = UaConfig::new(self.aor(), proxy);
        ua.local_port = self.sip_port;
        ua.rtp_port = self.rtp_port;
        ua.register_expires = SimDuration::from_secs(self.register_expires_secs as u64);
        Some(ua)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_round_trips_through_json() {
        let cfg = VoipAppConfig::fig2("Alice", "voicehoc.ch");
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        assert!(json.contains("\"outbound_proxy\": \"localhost\""));
        let back: VoipAppConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn localhost_outbound_proxy_resolves_to_siphoc() {
        let cfg = VoipAppConfig::fig2("Alice", "voicehoc.ch");
        assert_eq!(
            cfg.outbound_proxy_addr().unwrap().to_string(),
            "127.0.0.1:5060"
        );
        let ua = cfg.to_ua_config().unwrap();
        assert_eq!(ua.aor.to_string(), "alice@voicehoc.ch");
        assert_eq!(ua.local_port, 5070);
    }

    #[test]
    fn explicit_proxy_addresses_parse() {
        let mut cfg = VoipAppConfig::fig2("Bob", "netvoip.ch");
        cfg.outbound_proxy = "82.1.1.1:5060".to_owned();
        assert_eq!(
            cfg.outbound_proxy_addr().unwrap().to_string(),
            "82.1.1.1:5060"
        );
        cfg.outbound_proxy = "82.1.1.1".to_owned();
        assert_eq!(
            cfg.outbound_proxy_addr().unwrap().to_string(),
            "82.1.1.1:5060"
        );
        cfg.outbound_proxy = "not an address".to_owned();
        assert!(cfg.outbound_proxy_addr().is_none());
    }
}
