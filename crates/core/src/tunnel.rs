//! The SIPHoc layer-2 tunnel.
//!
//! Paper §2: the Gateway Provider "starts a layer two tunnel server ready
//! to accept connections", and "since the gateway node will directly
//! forward all the traffic it receives on the tunnel interface to the
//! Internet, any node with a tunnel connection is automatically attached
//! to the Internet as well".
//!
//! The reproduction models the tunnel as datagram-in-datagram over the
//! MANET:
//!
//! * a client sends `TCONNECT`; the server leases it a **public address**
//!   from its pool (the DHCP-over-L2 step of the real system) and claims
//!   that address on the backbone;
//! * Internet-bound client traffic is encapsulated in `TDATA` toward the
//!   gateway, which decapsulates and re-injects it onto its wired side —
//!   the client's private source address is rewritten to its lease on the
//!   way out, so replies route back;
//! * backbone traffic for a leased address is captured at the gateway and
//!   encapsulated back to the client, where it is re-injected and
//!   delivered locally (the lease is a local alias there).
//!
//! Leases are soft state: clients refresh with periodic `TCONNECT`s and
//! the server expires silent leases.

use std::collections::BTreeMap;

use siphoc_internet::relay::{decap, encap, RelayMsg};
use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::process::{Ctx, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

/// Tunnel wire messages. Encapsulation is length-delimited text headers
/// followed by the raw inner datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunnelMsg {
    /// Client → server: request (or refresh) a lease.
    Connect,
    /// Server → client: lease grant.
    Lease {
        /// The public address leased to the client.
        public: Addr,
        /// Lease lifetime in seconds.
        lifetime_secs: u32,
    },
    /// Encapsulated datagram, either direction.
    Data {
        /// The tunneled datagram.
        inner: Datagram,
    },
    /// Client → server: liveness probe. Deliberately does *not* refresh
    /// the lease — lease soft state stays driven by `Connect` alone, so a
    /// gateway that answers pings but lost its lease table still forces a
    /// clean re-lease.
    Ping {
        /// Echo sequence number.
        seq: u64,
    },
    /// Server → client: liveness probe echo.
    Pong {
        /// The echoed sequence number.
        seq: u64,
    },
    /// Relay-plane message (TURN-style allocate / permission / relayed
    /// datagram), exchanged between a NAT'd gateway and its media relay.
    /// The codec lives with the relay actor in `siphoc_internet::relay`;
    /// nesting it here keeps a single parse entry point for everything
    /// arriving on the tunnel port.
    Relay(RelayMsg),
}

impl TunnelMsg {
    /// Serializes the message.
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            TunnelMsg::Connect => b"TCONNECT".to_vec(),
            TunnelMsg::Lease {
                public,
                lifetime_secs,
            } => format!("TLEASE {public} {lifetime_secs}").into_bytes(),
            TunnelMsg::Data { inner } => encap("TDATA", inner),
            TunnelMsg::Ping { seq } => format!("TPING {seq}").into_bytes(),
            TunnelMsg::Pong { seq } => format!("TPONG {seq}").into_bytes(),
            TunnelMsg::Relay(m) => m.to_wire(),
        }
    }

    /// Parses a message.
    pub fn parse(bytes: &[u8]) -> Option<TunnelMsg> {
        if bytes == b"TCONNECT" {
            return Some(TunnelMsg::Connect);
        }
        if let Some(m) = RelayMsg::parse(bytes) {
            return Some(TunnelMsg::Relay(m));
        }
        let text_end = bytes
            .iter()
            .position(|b| *b == b'\n')
            .unwrap_or(bytes.len());
        let head = std::str::from_utf8(&bytes[..text_end]).ok()?;
        let mut it = head.split_ascii_whitespace();
        match it.next()? {
            "TLEASE" => Some(TunnelMsg::Lease {
                public: it.next()?.parse().ok()?,
                lifetime_secs: it.next()?.parse().ok()?,
            }),
            "TDATA" => Some(TunnelMsg::Data {
                inner: decap(&mut it, bytes, text_end)?,
            }),
            "TPING" => Some(TunnelMsg::Ping {
                seq: it.next()?.parse().ok()?,
            }),
            "TPONG" => Some(TunnelMsg::Pong {
                seq: it.next()?.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// Tunnel server configuration.
#[derive(Debug, Clone)]
pub struct TunnelServerConfig {
    /// First address of the public lease pool; subsequent leases count up.
    pub pool_base: Addr,
    /// Maximum concurrent leases.
    pub pool_size: u32,
    /// Lease lifetime granted to clients.
    pub lease_lifetime: SimDuration,
    /// When set, the gateway is NAT'd: it cannot claim backbone-routable
    /// addresses itself, so leases are allocated on this TURN-style relay
    /// and all Internet traffic is hairpinned through it.
    pub relay: Option<SocketAddr>,
    /// The gateway's own backbone-routable address. A NAT'd gateway stamps
    /// this as the source of relay-bound traffic so the relay's replies
    /// can traverse the wired backbone (the MANET address cannot).
    pub wired_public: Option<Addr>,
}

impl Default for TunnelServerConfig {
    fn default() -> TunnelServerConfig {
        TunnelServerConfig {
            pool_base: Addr::new(82, 130, 64, 100),
            pool_size: 64,
            lease_lifetime: SimDuration::from_secs(60),
            relay: None,
            wired_public: None,
        }
    }
}

#[derive(Debug)]
struct Lease {
    public: Addr,
    expires: SimTime,
}

const TAG_EXPIRE: u64 = 1;

/// The tunnel server process (runs on the gateway next to the Gateway
/// Provider).
#[derive(Debug)]
pub struct TunnelServer {
    cfg: TunnelServerConfig,
    /// client MANET address → lease.
    leases: BTreeMap<Addr, Lease>,
    next_offset: u32,
    /// NAT'd mode: clients whose lease awaits the relay's `AllocOk`,
    /// mapped to the reply address for the eventual `TLEASE`.
    pending_allocs: BTreeMap<Addr, SocketAddr>,
    /// NAT'd mode: (relayed, peer) permissions already pushed to the relay.
    permits_sent: std::collections::BTreeSet<(Addr, Addr)>,
}

impl TunnelServer {
    /// Creates a server.
    pub fn new(cfg: TunnelServerConfig) -> TunnelServer {
        TunnelServer {
            cfg,
            leases: BTreeMap::new(),
            next_offset: 0,
            pending_allocs: BTreeMap::new(),
            permits_sent: std::collections::BTreeSet::new(),
        }
    }

    /// Current number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    fn send_lease(&self, ctx: &mut Ctx<'_>, to: SocketAddr, public: Addr) {
        let lease = TunnelMsg::Lease {
            public,
            lifetime_secs: self.cfg.lease_lifetime.as_micros() as u32 / 1_000_000,
        };
        ctx.send_to(to, ports::TUNNEL, lease.to_wire());
    }

    fn send_to_relay(&self, ctx: &mut Ctx<'_>, relay: SocketAddr, payload: Vec<u8>) {
        let src_addr = self.cfg.wired_public.unwrap_or_else(|| ctx.addr());
        let src = SocketAddr::new(src_addr, ports::TUNNEL);
        ctx.send(Datagram::new(src, relay, payload));
    }

    fn allocate(&mut self, client: Addr, now: SimTime) -> Option<Addr> {
        if let Some(l) = self.leases.get_mut(&client) {
            l.expires = now + self.cfg.lease_lifetime;
            return Some(l.public);
        }
        if self.leases.len() as u32 >= self.cfg.pool_size {
            return None;
        }
        // Linear scan for a free pool slot (pool is small).
        let used: Vec<Addr> = self.leases.values().map(|l| l.public).collect();
        for i in 0..self.cfg.pool_size {
            let candidate =
                Addr(self.cfg.pool_base.0 + ((self.next_offset + i) % self.cfg.pool_size));
            if !used.contains(&candidate) {
                self.next_offset = (self.next_offset + i + 1) % self.cfg.pool_size;
                self.leases.insert(
                    client,
                    Lease {
                        public: candidate,
                        expires: now + self.cfg.lease_lifetime,
                    },
                );
                return Some(candidate);
            }
        }
        None
    }
}

impl Process for TunnelServer {
    fn name(&self) -> &'static str {
        "tunnel-server"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::TUNNEL);
        ctx.set_timer(self.cfg.lease_lifetime, TAG_EXPIRE);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        // Backbone traffic captured via a claimed lease address? Relay
        // replies also arrive addressed to the wired alias — let those
        // fall through to the message parser below.
        if dgram.dst.addr != ctx.addr()
            && dgram.dst.addr.is_public()
            && self.cfg.relay != Some(dgram.src)
        {
            let client = self
                .leases
                .iter()
                .find(|(_, l)| l.public == dgram.dst.addr)
                .map(|(c, _)| *c);
            if let Some(client) = client {
                let msg = TunnelMsg::Data {
                    inner: dgram.clone(),
                };
                ctx.stats().count("tunnel.to_client", dgram.wire_len());
                ctx.send_to(
                    SocketAddr::new(client, ports::TUNNEL),
                    ports::TUNNEL,
                    msg.to_wire(),
                );
            } else {
                ctx.stats()
                    .count("tunnel.expired_lease_drop", dgram.wire_len());
            }
            return;
        }
        let Some(msg) = TunnelMsg::parse(&dgram.payload) else {
            ctx.stats().count("tunnel.malformed", dgram.payload.len());
            return;
        };
        match msg {
            TunnelMsg::Connect => {
                let now = ctx.now();
                let client = dgram.src.addr;
                if let Some(relay) = self.cfg.relay {
                    // NAT'd mode: the lease pool lives on the relay. A
                    // refresh is answered from local soft state at once;
                    // a fresh connect waits for the relay's AllocOk.
                    // Either way the relay-side allocation is renewed.
                    if let Some(l) = self.leases.get_mut(&client) {
                        l.expires = now + self.cfg.lease_lifetime;
                        let public = l.public;
                        ctx.stats().count("tunnel.lease", 1);
                        self.send_lease(ctx, dgram.src, public);
                    } else {
                        self.pending_allocs.insert(client, dgram.src);
                    }
                    ctx.stats().count("tunnel.alloc_req", 1);
                    self.send_to_relay(ctx, relay, RelayMsg::AllocReq { client }.to_wire());
                    return;
                }
                match self.allocate(client, now) {
                    Some(public) => {
                        ctx.claim_public_addr(public);
                        ctx.stats().count("tunnel.lease", 1);
                        self.send_lease(ctx, dgram.src, public);
                    }
                    None => {
                        ctx.stats().count("tunnel.pool_exhausted", 1);
                    }
                }
            }
            TunnelMsg::Data { inner } => {
                if let Some(relay) = self.cfg.relay {
                    // NAT'd mode: hairpin outbound traffic through the
                    // relay, opening a permission for the reply path the
                    // first time each (relayed, peer) pair is seen.
                    let key = (inner.src.addr, inner.dst.addr);
                    if self.permits_sent.insert(key) {
                        ctx.stats().count("tunnel.permit", 1);
                        let permit = RelayMsg::Permit {
                            relayed: key.0,
                            peer: key.1,
                        };
                        self.send_to_relay(ctx, relay, permit.to_wire());
                    }
                    ctx.stats().count("tunnel.relay_fwd", inner.wire_len());
                    self.send_to_relay(ctx, relay, RelayMsg::RelayFwd { inner }.to_wire());
                    return;
                }
                // Client → Internet: re-inject on the wired side.
                ctx.stats().count("tunnel.to_internet", inner.wire_len());
                ctx.reinject(inner);
            }
            TunnelMsg::Ping { seq } => {
                ctx.stats().count("tunnel.ping", 1);
                ctx.send_to(dgram.src, ports::TUNNEL, TunnelMsg::Pong { seq }.to_wire());
            }
            TunnelMsg::Relay(RelayMsg::AllocOk { client, relayed })
                if self.cfg.relay == Some(dgram.src) =>
            {
                let now = ctx.now();
                self.leases.insert(
                    client,
                    Lease {
                        public: relayed,
                        expires: now + self.cfg.lease_lifetime,
                    },
                );
                // Absent on renewals — the client already holds its lease.
                if let Some(reply) = self.pending_allocs.remove(&client) {
                    ctx.stats().count("tunnel.lease", 1);
                    self.send_lease(ctx, reply, relayed);
                }
            }
            TunnelMsg::Relay(RelayMsg::RelayData { inner })
                if self.cfg.relay == Some(dgram.src) =>
            {
                let client = self
                    .leases
                    .iter()
                    .find(|(_, l)| l.public == inner.dst.addr)
                    .map(|(c, _)| *c);
                match client {
                    Some(client) => {
                        ctx.stats().count("tunnel.from_relay", inner.wire_len());
                        let msg = TunnelMsg::Data { inner };
                        ctx.send_to(
                            SocketAddr::new(client, ports::TUNNEL),
                            ports::TUNNEL,
                            msg.to_wire(),
                        );
                    }
                    None => {
                        ctx.stats()
                            .count("tunnel.expired_lease_drop", inner.wire_len());
                    }
                }
            }
            _ => {
                ctx.stats().count("tunnel.unexpected_msg", 1);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TAG_EXPIRE {
            return;
        }
        let now = ctx.now();
        let expired: Vec<(Addr, Addr)> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires <= now)
            .map(|(c, l)| (*c, l.public))
            .collect();
        for (client, public) in expired {
            self.leases.remove(&client);
            // NAT'd leases were claimed by the relay, not here; the
            // relay expires its own allocations.
            if self.cfg.relay.is_none() {
                ctx.release_public_addr(public);
            }
            self.permits_sent.retain(|(relayed, _)| *relayed != public);
            ctx.stats().count("tunnel.lease_expired", 1);
        }
        ctx.set_timer(self.cfg.lease_lifetime, TAG_EXPIRE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let inner = Datagram::new(
            "10.0.0.2:5060".parse().unwrap(),
            "82.1.1.1:5060".parse().unwrap(),
            b"REGISTER sip:voicehoc.ch SIP/2.0\r\n\r\n".to_vec(),
        );
        let msgs = vec![
            TunnelMsg::Connect,
            TunnelMsg::Lease {
                public: Addr::new(82, 130, 64, 100),
                lifetime_secs: 60,
            },
            TunnelMsg::Data {
                inner: inner.clone(),
            },
            TunnelMsg::Ping { seq: 7 },
            TunnelMsg::Pong { seq: u64::MAX },
            TunnelMsg::Relay(RelayMsg::AllocReq {
                client: Addr::manet(4),
            }),
            TunnelMsg::Relay(RelayMsg::AllocOk {
                client: Addr::manet(4),
                relayed: Addr::new(82, 130, 65, 9),
            }),
            TunnelMsg::Relay(RelayMsg::Permit {
                relayed: Addr::new(82, 130, 65, 9),
                peer: Addr::new(82, 1, 1, 50),
            }),
            TunnelMsg::Relay(RelayMsg::RelayFwd {
                inner: inner.clone(),
            }),
            TunnelMsg::Relay(RelayMsg::RelayData { inner }),
        ];
        for m in msgs {
            assert_eq!(TunnelMsg::parse(&m.to_wire()), Some(m));
        }
        assert_eq!(TunnelMsg::parse(b"garbage"), None);
        assert_eq!(TunnelMsg::parse(b"TPING"), None, "seq required");
        assert_eq!(TunnelMsg::parse(b"TPONG x"), None, "numeric seq required");
        assert_eq!(
            TunnelMsg::parse(b"TPERMIT 82.130.65.9"),
            None,
            "peer required"
        );
    }

    #[test]
    fn tdata_preserves_binary_payload() {
        let inner = Datagram::new(
            "10.0.0.2:8000".parse().unwrap(),
            "82.1.1.9:8000".parse().unwrap(),
            vec![0x80, 0x00, 0xff, b'\n', 0x01, b'\n'],
        );
        let m = TunnelMsg::Data {
            inner: inner.clone(),
        };
        match TunnelMsg::parse(&m.to_wire()) {
            Some(TunnelMsg::Data { inner: got }) => assert_eq!(got, inner),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn allocation_is_stable_per_client_and_bounded() {
        let mut s = TunnelServer::new(TunnelServerConfig {
            pool_size: 2,
            ..TunnelServerConfig::default()
        });
        let now = SimTime::ZERO;
        let a = s.allocate(Addr::manet(1), now).unwrap();
        let a2 = s.allocate(Addr::manet(1), now).unwrap();
        assert_eq!(a, a2, "refresh keeps the lease");
        let b = s.allocate(Addr::manet(2), now).unwrap();
        assert_ne!(a, b);
        assert!(s.allocate(Addr::manet(3), now).is_none(), "pool exhausted");
        assert_eq!(s.lease_count(), 2);
    }
}
