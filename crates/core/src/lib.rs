//! # siphoc-core
//!
//! The SIPHoc middleware — the paper's primary contribution. A node runs
//! five components as independent processes (paper Fig. 1):
//!
//! * any SIP-compatible **VoIP application** (`siphoc-sip`'s user agent),
//! * the **SIPHoc proxy** ([`proxy`]) — standard SIP interface,
//!   MANET-specific behavior,
//! * **MANET SLP** (`siphoc-slp`) — distributed service location via
//!   routing-message piggybacking,
//! * the **Gateway Provider** ([`gateway`]) with its layer-2 tunnel server
//!   ([`tunnel`]),
//! * the **Connection Provider** ([`connection`]) which attaches the node
//!   to the Internet through any discovered gateway.
//!
//! [`nodesetup::deploy`] assembles all of it on a simulated node;
//! [`baselines`] implements the related-work alternatives the evaluation
//! compares against; [`metrics`] provides the footprint and overhead
//! accounting used by the experiment harness.

#![warn(missing_docs)]

pub mod adversary;
pub mod baselines;
pub mod config;
pub mod connection;
pub mod gateway;
pub mod metrics;
pub mod nodesetup;
pub mod proxy;
pub mod tunnel;
