//! The Gateway Provider.
//!
//! Paper §2: "a Gateway Provider that, if a node has Internet
//! connectivity, makes this information available to other nodes by
//! publishing an SLP gateway service. It also starts a layer two tunnel
//! server ready to accept connections." The tunnel server itself lives in
//! [`crate::tunnel`]; this process owns the advertisement lifecycle.

use siphoc_simnet::net::{ports, SocketAddr};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::SimDuration;

use siphoc_slp::msg::SlpMsg;
use siphoc_slp::service::service_types;

/// Port the Gateway Provider uses for its SLP client exchanges.
const GW_SLP_PORT: u16 = 4272;

/// Gateway Provider configuration.
#[derive(Debug, Clone)]
pub struct GatewayProviderConfig {
    /// Advertised service lifetime.
    pub advert_lifetime: SimDuration,
    /// Re-advertisement period (must be < lifetime).
    pub advert_interval: SimDuration,
}

impl Default for GatewayProviderConfig {
    fn default() -> GatewayProviderConfig {
        GatewayProviderConfig {
            advert_lifetime: SimDuration::from_secs(60),
            advert_interval: SimDuration::from_secs(25),
        }
    }
}

const TAG_ADVERT: u64 = 1;

/// The Gateway Provider process. Spawn next to a [`crate::tunnel::TunnelServer`]
/// on Internet-connected nodes.
#[derive(Debug)]
pub struct GatewayProvider {
    cfg: GatewayProviderConfig,
    next_xid: u32,
    adverts_sent: u64,
}

impl GatewayProvider {
    /// Creates a Gateway Provider.
    pub fn new(cfg: GatewayProviderConfig) -> GatewayProvider {
        GatewayProvider {
            cfg,
            next_xid: 0,
            adverts_sent: 0,
        }
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_>) {
        if !ctx.has_wired() {
            // The paper's condition: publish only while the node actually
            // has Internet connectivity.
            return;
        }
        self.next_xid += 1;
        self.adverts_sent += 1;
        let contact = SocketAddr::new(ctx.addr(), ports::TUNNEL);
        let m = SlpMsg::SrvReg {
            xid: self.next_xid,
            service_type: service_types::GATEWAY.to_owned(),
            key: String::new(),
            contact,
            lifetime_secs: self.cfg.advert_lifetime.as_micros() as u32 / 1_000_000,
        };
        ctx.stats().count("gw.advert", 1);
        ctx.send_local(ports::SLP, GW_SLP_PORT, m.to_wire());
    }
}

impl Process for GatewayProvider {
    fn name(&self) -> &'static str {
        "gateway-provider"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(GW_SLP_PORT);
        self.advertise(ctx);
        ctx.set_timer(self.cfg.advert_interval, TAG_ADVERT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TAG_ADVERT {
            self.advertise(ctx);
            ctx.set_timer(self.cfg.advert_interval, TAG_ADVERT);
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        if matches!(ev, LocalEvent::NodeRestarted) {
            self.advertise(ctx);
            ctx.set_timer(self.cfg.advert_interval, TAG_ADVERT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::net::Addr;

    #[test]
    fn config_interval_shorter_than_lifetime() {
        let c = GatewayProviderConfig::default();
        assert!(c.advert_interval < c.advert_lifetime);
        let _ = Addr::UNSPECIFIED;
    }
}
