//! The Connection Provider.
//!
//! Paper §2: "a Connection Provider that manages connections of the node
//! to the Internet when there is a gateway in the MANET. It periodically
//! checks whether it can find a gateway service (using MANET SLP) and
//! open\[s\] a layer two tunnel connection to the node offering the tunnel
//! server."
//!
//! Once a lease is held, the Connection Provider is the node's default
//! handler: Internet-bound datagrams the stack cannot route are captured,
//! source-NATed to the leased public address and encapsulated toward the
//! gateway; tunneled traffic from the gateway is decapsulated and
//! re-injected locally. It tells the rest of the node about connectivity
//! changes through the [`INTERNET_UP_EVENT`] / [`INTERNET_DOWN_EVENT`]
//! node-local events the SIPHoc proxy listens for.

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::SimDuration;

use siphoc_slp::msg::SlpMsg;
use siphoc_slp::service::service_types;

use crate::tunnel::TunnelMsg;

/// Node-local event: the node is attached to the Internet. Payload:
/// the public address, as text.
pub const INTERNET_UP_EVENT: &str = "siphoc.internet_up";
/// Node-local event: Internet attachment lost. No payload.
pub const INTERNET_DOWN_EVENT: &str = "siphoc.internet_down";

/// Port the Connection Provider uses for its SLP client exchanges.
const CP_SLP_PORT: u16 = 4271;

/// Connection Provider configuration.
#[derive(Debug, Clone)]
pub struct ConnectionProviderConfig {
    /// Period of the gateway-service check (paper: "periodically checks").
    pub check_interval: SimDuration,
    /// How long to wait for a lease reply before retrying.
    pub connect_timeout: SimDuration,
    /// Consecutive refresh failures before declaring the tunnel down.
    pub max_refresh_failures: u32,
    /// Ceiling for the exponential backoff applied to re-probes after
    /// repeated gateway failures (lease refusals, connect timeouts,
    /// refresh losses). The first retry still happens after
    /// `check_interval`; each further consecutive failure doubles the
    /// wait, capped here and jittered to avoid synchronized probing.
    pub backoff_max: SimDuration,
    /// The node's own wired public address, when it *is* a gateway — the
    /// provider then reports connectivity immediately and never tunnels.
    pub wired_public: Option<Addr>,
}

impl Default for ConnectionProviderConfig {
    fn default() -> ConnectionProviderConfig {
        ConnectionProviderConfig {
            check_interval: SimDuration::from_secs(5),
            connect_timeout: SimDuration::from_secs(2),
            max_refresh_failures: 2,
            backoff_max: SimDuration::from_secs(60),
            wired_public: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// No gateway known.
    Idle,
    /// SLP query outstanding.
    Probing { xid: u32 },
    /// TCONNECT sent, waiting for the lease.
    Connecting { gateway: SocketAddr, attempts: u32 },
    /// Tunnel established.
    Connected {
        gateway: SocketAddr,
        public: Addr,
        lease: SimDuration,
        refresh_failures: u32,
        refresh_outstanding: bool,
    },
}

const TAG_CHECK: u64 = 1;
const TAG_CONNECT_TIMEOUT: u64 = 2;
const TAG_REFRESH: u64 = 3;

/// The Connection Provider process.
#[derive(Debug)]
pub struct ConnectionProvider {
    cfg: ConnectionProviderConfig,
    state: State,
    next_xid: u32,
    consecutive_failures: u32,
    handshake_span: SpanId,
    handshake_started_us: u64,
}

impl ConnectionProvider {
    /// Creates a Connection Provider.
    pub fn new(cfg: ConnectionProviderConfig) -> ConnectionProvider {
        ConnectionProvider {
            cfg,
            state: State::Idle,
            next_xid: 0,
            consecutive_failures: 0,
            handshake_span: SpanId::NONE,
            handshake_started_us: 0,
        }
    }

    /// Whether the node currently holds a tunnel lease (or is a gateway).
    pub fn is_connected(&self) -> bool {
        self.cfg.wired_public.is_some() || matches!(self.state, State::Connected { .. })
    }

    fn probe(&mut self, ctx: &mut Ctx<'_>) {
        self.next_xid += 1;
        let xid = self.next_xid;
        self.state = State::Probing { xid };
        ctx.stats().count("cp.probe", 1);
        let m = SlpMsg::SrvRqst {
            xid,
            service_type: service_types::GATEWAY.to_owned(),
            key: String::new(),
        };
        ctx.send_local(ports::SLP, CP_SLP_PORT, m.to_wire());
    }

    /// Schedules the next gateway re-check, backing off exponentially
    /// (with jitter) after consecutive failures so a gateway-less MANET
    /// is not flooded with synchronized probe traffic.
    fn schedule_recheck(&mut self, ctx: &mut Ctx<'_>) {
        let base = self.cfg.check_interval.as_micros().max(1);
        let cap = self.cfg.backoff_max.as_micros().max(base);
        let shift = self.consecutive_failures.min(16);
        let backoff = base.saturating_mul(1u64 << shift).min(cap);
        // Uniform in [backoff/2, backoff): desynchronizes nodes that all
        // lost the same gateway at the same instant.
        let delay = ctx.rng().range_u64((backoff / 2).max(1), backoff.max(2));
        ctx.set_timer(SimDuration::from_micros(delay), TAG_CHECK);
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>, gateway: SocketAddr, attempts: u32) {
        self.state = State::Connecting { gateway, attempts };
        if attempts == 0 {
            self.handshake_span = ctx.span_enter(SpanCat::Tunnel, "tunnel.handshake");
            if ctx.obs().tracing() {
                let corr = gateway.addr.to_string();
                ctx.obs().span_corr(self.handshake_span, &corr);
            }
            self.handshake_started_us = ctx.now_us();
        }
        ctx.stats().count("cp.tconnect", 1);
        ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
        ctx.set_timer(self.cfg.connect_timeout, TAG_CONNECT_TIMEOUT);
    }

    fn teardown(&mut self, ctx: &mut Ctx<'_>) {
        // A handshake abandoned mid-flight (e.g. restart while Connecting)
        // must not linger as an open span.
        ctx.span_exit(self.handshake_span, false);
        self.handshake_span = SpanId::NONE;
        if let State::Connected { public, .. } = self.state {
            ctx.remove_local_addr(public);
            ctx.set_default_handler(false);
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_DOWN_EVENT,
                data: Vec::new(),
            });
            ctx.stats().count("cp.tunnel_down", 1);
        }
        self.state = State::Idle;
    }

    fn on_lease(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, public: Addr, lifetime_secs: u32) {
        let lease = SimDuration::from_secs(lifetime_secs as u64);
        match &mut self.state {
            State::Connecting { gateway, .. } if gateway.addr == from.addr => {
                let gateway = *gateway;
                self.state = State::Connected {
                    gateway,
                    public,
                    lease,
                    refresh_failures: 0,
                    refresh_outstanding: false,
                };
                self.consecutive_failures = 0;
                ctx.span_exit(self.handshake_span, true);
                self.handshake_span = SpanId::NONE;
                let took = ctx.now_us().saturating_sub(self.handshake_started_us);
                ctx.obs().hist_record("cp.handshake_us", took);
                ctx.add_local_addr(public);
                ctx.set_default_handler(true);
                ctx.stats().count("cp.tunnel_up", 1);
                ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                });
                ctx.set_timer(lease / 2, TAG_REFRESH);
            }
            State::Connected {
                gateway,
                refresh_outstanding,
                refresh_failures,
                ..
            } if gateway.addr == from.addr => {
                *refresh_outstanding = false;
                *refresh_failures = 0;
            }
            _ => {}
        }
    }

    /// Captured Internet-bound datagram: NAT the source and tunnel it.
    fn tunnel_out(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let State::Connected {
            gateway, public, ..
        } = &self.state
        else {
            ctx.stats().count("cp.no_tunnel_drop", dgram.wire_len());
            return;
        };
        let mut inner = dgram.clone();
        if !inner.src.addr.is_public() {
            inner.src.addr = *public;
        }
        let gateway = *gateway;
        let msg = TunnelMsg::Data { inner };
        ctx.stats().count("cp.tunneled_out", dgram.wire_len());
        ctx.send_to(gateway, ports::TUNNEL, msg.to_wire());
    }
}

impl Process for ConnectionProvider {
    fn name(&self) -> &'static str {
        "connection-provider"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(CP_SLP_PORT);
        if let Some(public) = self.cfg.wired_public {
            // Gateways are attached by definition; the tunnel port belongs
            // to their tunnel *server*.
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_UP_EVENT,
                data: public.to_string().into_bytes(),
            });
            return;
        }
        ctx.bind(ports::TUNNEL);
        let jitter = ctx
            .rng()
            .range_u64(0, self.cfg.check_interval.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), TAG_CHECK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        // SLP replies to our gateway probes.
        if dgram.dst.port == CP_SLP_PORT {
            if let Ok(SlpMsg::SrvRply { xid, entries }) = SlpMsg::parse(&dgram.payload) {
                if let State::Probing { xid: expect } = self.state {
                    if xid == expect {
                        match entries.first() {
                            Some(gw) => self.connect(ctx, gw.contact, 0),
                            None => {
                                self.state = State::Idle;
                                self.consecutive_failures =
                                    self.consecutive_failures.saturating_add(1);
                                self.schedule_recheck(ctx);
                            }
                        }
                    }
                }
            }
            return;
        }
        // Tunnel port traffic or default-handler captures.
        if dgram.dst.port == ports::TUNNEL && dgram.dst.addr == ctx.addr() {
            match TunnelMsg::parse(&dgram.payload) {
                Some(TunnelMsg::Lease {
                    public,
                    lifetime_secs,
                }) => {
                    self.on_lease(ctx, dgram.src, public, lifetime_secs);
                }
                Some(TunnelMsg::Data { inner }) => {
                    ctx.stats().count("cp.tunneled_in", inner.wire_len());
                    ctx.reinject(inner);
                }
                Some(TunnelMsg::Connect) | None => {
                    ctx.stats().count("cp.unexpected_msg", dgram.payload.len());
                }
            }
            return;
        }
        // Anything else delivered to us is a default-handler capture of an
        // Internet-bound datagram.
        self.tunnel_out(ctx, dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TAG_CHECK => match self.state {
                State::Idle => self.probe(ctx),
                State::Probing { .. } => {
                    // SLP lookup never answered (should not happen — the
                    // daemon always replies); retry.
                    self.probe(ctx);
                }
                _ => {}
            },
            TAG_CONNECT_TIMEOUT => {
                if let State::Connecting { gateway, attempts } = self.state {
                    if attempts < 2 {
                        self.connect(ctx, gateway, attempts + 1);
                    } else {
                        ctx.span_exit(self.handshake_span, false);
                        self.handshake_span = SpanId::NONE;
                        self.state = State::Idle;
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                    }
                }
            }
            TAG_REFRESH => {
                let max_failures = self.cfg.max_refresh_failures;
                if let State::Connected {
                    gateway,
                    lease,
                    refresh_failures,
                    refresh_outstanding,
                    ..
                } = &mut self.state
                {
                    if *refresh_outstanding {
                        *refresh_failures += 1;
                    }
                    if *refresh_failures > max_failures {
                        self.teardown(ctx);
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                        return;
                    }
                    *refresh_outstanding = true;
                    let gateway = *gateway;
                    let lease = *lease;
                    ctx.stats().count("cp.tconnect", 1);
                    ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
                    ctx.set_timer(lease / 2, TAG_REFRESH);
                }
            }
            _ => {}
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        if matches!(ev, LocalEvent::NodeRestarted) {
            // A crash does not clear the node's address aliases or
            // default-handler registration, and the gateway side of any
            // pre-crash lease is gone; tear everything down before
            // starting over so the restarted node does not keep NATing
            // through a dead tunnel.
            self.teardown(ctx);
            self.consecutive_failures = 0;
            match self.cfg.wired_public {
                Some(public) => ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                }),
                None => ctx.set_timer(SimDuration::from_millis(100), TAG_CHECK),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_node_reports_connected_immediately() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig {
            wired_public: Some(Addr::new(82, 130, 64, 1)),
            ..ConnectionProviderConfig::default()
        });
        assert!(cp.is_connected());
    }

    #[test]
    fn fresh_provider_is_disconnected() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig::default());
        assert!(!cp.is_connected());
    }
}
