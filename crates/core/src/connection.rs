//! The Connection Provider.
//!
//! Paper §2: "a Connection Provider that manages connections of the node
//! to the Internet when there is a gateway in the MANET. It periodically
//! checks whether it can find a gateway service (using MANET SLP) and
//! open\[s\] a layer two tunnel connection to the node offering the tunnel
//! server."
//!
//! Once a lease is held, the Connection Provider is the node's default
//! handler: Internet-bound datagrams the stack cannot route are captured,
//! source-NATed to the leased public address and encapsulated toward the
//! gateway; tunneled traffic from the gateway is decapsulated and
//! re-injected locally. It tells the rest of the node about connectivity
//! changes through the [`INTERNET_UP_EVENT`] / [`INTERNET_DOWN_EVENT`]
//! node-local events the SIPHoc proxy listens for.

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::SimDuration;

use siphoc_slp::manet::SharedRegistry;
use siphoc_slp::msg::SlpMsg;
use siphoc_slp::registry::rank_gateways;
use siphoc_slp::service::{service_types, ServiceEntry};

use crate::tunnel::TunnelMsg;

/// Node-local event: the node is attached to the Internet. Payload:
/// the public address, as text.
pub const INTERNET_UP_EVENT: &str = "siphoc.internet_up";
/// Node-local event: Internet attachment lost. No payload.
pub const INTERNET_DOWN_EVENT: &str = "siphoc.internet_down";

/// Port the Connection Provider uses for its SLP client exchanges.
const CP_SLP_PORT: u16 = 4271;

/// Connection Provider configuration.
#[derive(Debug, Clone)]
pub struct ConnectionProviderConfig {
    /// Period of the gateway-service check (paper: "periodically checks").
    pub check_interval: SimDuration,
    /// How long to wait for a lease reply before retrying.
    pub connect_timeout: SimDuration,
    /// Consecutive refresh failures before declaring the tunnel down.
    pub max_refresh_failures: u32,
    /// Ceiling for the exponential backoff applied to re-probes after
    /// repeated gateway failures (lease refusals, connect timeouts,
    /// refresh losses). The first retry still happens after
    /// `check_interval`; each further consecutive failure doubles the
    /// wait, capped here and jittered to avoid synchronized probing.
    pub backoff_max: SimDuration,
    /// The node's own wired public address, when it *is* a gateway — the
    /// provider then reports connectivity immediately and never tunnels.
    pub wired_public: Option<Addr>,
    /// Interval between tunnel liveness pings while Connected.
    /// `SimDuration::ZERO` disables keepalives entirely, restoring the
    /// lease-refresh-only liveness of the pre-handoff provider.
    pub keepalive_interval: SimDuration,
    /// Consecutive unanswered pings before the gateway is declared dead
    /// and a mid-call handoff begins. Detection latency is therefore
    /// `(keepalive_max_missed + 1) * keepalive_interval` in the worst
    /// case — ~4 s with the defaults, inside the 5 s handoff budget.
    pub keepalive_max_missed: u32,
}

impl Default for ConnectionProviderConfig {
    fn default() -> ConnectionProviderConfig {
        ConnectionProviderConfig {
            check_interval: SimDuration::from_secs(5),
            connect_timeout: SimDuration::from_secs(2),
            max_refresh_failures: 2,
            backoff_max: SimDuration::from_secs(60),
            wired_public: None,
            keepalive_interval: SimDuration::from_secs(1),
            keepalive_max_missed: 3,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// No gateway known.
    Idle,
    /// SLP query outstanding.
    Probing { xid: u32 },
    /// TCONNECT sent, waiting for the lease.
    Connecting { gateway: SocketAddr, attempts: u32 },
    /// Tunnel established.
    Connected {
        gateway: SocketAddr,
        public: Addr,
        lease: SimDuration,
        refresh_failures: u32,
        refresh_outstanding: bool,
        missed_pings: u32,
    },
}

const TAG_CHECK: u64 = 1;
const TAG_CONNECT_TIMEOUT: u64 = 2;
const TAG_REFRESH: u64 = 3;
const TAG_KEEPALIVE: u64 = 4;

/// Timers cannot be cancelled, so the refresh and keepalive chains carry a
/// generation in the token's upper bits; a fired timer whose generation no
/// longer matches is a stale chain and is ignored.
const fn tok(tag: u64, gen: u64) -> u64 {
    tag | (gen << 8)
}

/// The Connection Provider process.
#[derive(Debug)]
pub struct ConnectionProvider {
    cfg: ConnectionProviderConfig,
    state: State,
    next_xid: u32,
    consecutive_failures: u32,
    handshake_span: SpanId,
    handshake_started_us: u64,
    /// Generation of the live keepalive timer chain.
    ka_gen: u64,
    /// Generation of the live lease-refresh timer chain.
    refresh_gen: u64,
    ping_seq: u64,
    /// Ranked `service:gateway` contacts beyond the one we leased from —
    /// the warm-standby set a handoff falls back to without re-probing.
    standby: Vec<SocketAddr>,
    /// The node's MANET SLP registry, for ranking fresh gateway
    /// candidates at handoff time.
    registry: Option<SharedRegistry>,
    handoff_span: SpanId,
    handoff_started_us: u64,
    /// The public address held when the current handoff began; `Some`
    /// exactly while a handoff is in flight.
    handoff_from: Option<Addr>,
    /// The gateway most recently declared dead. Its SLP adverts may
    /// outlive it in neighbor caches for a full lifetime; every candidate
    /// ranking skips it until a lease from someone else proves recovery.
    dead_gateway: Option<Addr>,
}

impl ConnectionProvider {
    /// Creates a Connection Provider.
    pub fn new(cfg: ConnectionProviderConfig) -> ConnectionProvider {
        ConnectionProvider {
            cfg,
            state: State::Idle,
            next_xid: 0,
            consecutive_failures: 0,
            handshake_span: SpanId::NONE,
            handshake_started_us: 0,
            ka_gen: 0,
            refresh_gen: 0,
            ping_seq: 0,
            standby: Vec::new(),
            registry: None,
            handoff_span: SpanId::NONE,
            handoff_started_us: 0,
            handoff_from: None,
            dead_gateway: None,
        }
    }

    /// Attaches the node's shared MANET SLP registry so gateway handoff
    /// can rank live `service:gateway` candidates instead of re-probing.
    pub fn with_registry(mut self, registry: SharedRegistry) -> ConnectionProvider {
        self.registry = Some(registry);
        self
    }

    /// Whether the node currently holds a tunnel lease (or is a gateway).
    pub fn is_connected(&self) -> bool {
        self.cfg.wired_public.is_some() || matches!(self.state, State::Connected { .. })
    }

    fn probe(&mut self, ctx: &mut Ctx<'_>) {
        self.next_xid += 1;
        let xid = self.next_xid;
        self.state = State::Probing { xid };
        ctx.stats().count("cp.probe", 1);
        let m = SlpMsg::SrvRqst {
            xid,
            service_type: service_types::GATEWAY.to_owned(),
            key: String::new(),
        };
        ctx.send_local(ports::SLP, CP_SLP_PORT, m.to_wire());
    }

    /// Schedules the next gateway re-check, backing off exponentially
    /// (with jitter) after consecutive failures so a gateway-less MANET
    /// is not flooded with synchronized probe traffic.
    fn schedule_recheck(&mut self, ctx: &mut Ctx<'_>) {
        let base = self.cfg.check_interval.as_micros().max(1);
        let cap = self.cfg.backoff_max.as_micros().max(base);
        let shift = self.consecutive_failures.min(16);
        let backoff = base.saturating_mul(1u64 << shift).min(cap);
        // Uniform in [backoff/2, backoff): desynchronizes nodes that all
        // lost the same gateway at the same instant.
        let delay = ctx.rng().range_u64((backoff / 2).max(1), backoff.max(2));
        ctx.set_timer(SimDuration::from_micros(delay), TAG_CHECK);
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>, gateway: SocketAddr, attempts: u32) {
        self.state = State::Connecting { gateway, attempts };
        if attempts == 0 {
            self.handshake_span = ctx.span_enter(SpanCat::Tunnel, "tunnel.handshake");
            if ctx.obs().tracing() {
                let corr = gateway.addr.to_string();
                ctx.obs().span_corr(self.handshake_span, &corr);
            }
            self.handshake_started_us = ctx.now_us();
        }
        ctx.stats().count("cp.tconnect", 1);
        ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
        ctx.set_timer(self.cfg.connect_timeout, TAG_CONNECT_TIMEOUT);
    }

    fn teardown(&mut self, ctx: &mut Ctx<'_>) {
        // A handshake abandoned mid-flight (e.g. restart while Connecting)
        // must not linger as an open span.
        ctx.span_exit(self.handshake_span, false);
        self.handshake_span = SpanId::NONE;
        // Likewise a handoff in flight: give up on it cleanly (emits
        // INTERNET_DOWN, releases the default handler).
        self.fail_handoff(ctx);
        self.ka_gen += 1;
        self.refresh_gen += 1;
        self.standby.clear();
        if let State::Connected { public, .. } = self.state {
            ctx.remove_local_addr(public);
            ctx.set_default_handler(false);
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_DOWN_EVENT,
                data: Vec::new(),
            });
            ctx.stats().count("cp.tunnel_down", 1);
        }
        self.state = State::Idle;
    }

    /// Ranked tunnel-server contacts for every live `service:gateway`
    /// entry the node knows, best first, excluding `exclude` (the gateway
    /// just declared dead).
    fn candidate_gateways(&self, ctx: &Ctx<'_>, exclude: Option<Addr>) -> Vec<SocketAddr> {
        let Some(reg) = &self.registry else {
            return Vec::new();
        };
        let now = ctx.now();
        let routes = ctx.routes_ref();
        reg.borrow()
            .gateway_candidates(now, |a| routes.lookup_specific(a, now).map(|r| r.hops))
            .into_iter()
            .filter(|e| {
                exclude != Some(e.contact.addr) && exclude != Some(e.origin) && !self.is_dead(e)
            })
            .map(|e| e.contact)
            .collect()
    }

    /// Whether an offered gateway entry names the blocklisted dead one.
    fn is_dead(&self, e: &ServiceEntry) -> bool {
        self.dead_gateway == Some(e.contact.addr) || self.dead_gateway == Some(e.origin)
    }

    /// Pops the best remaining standby contact, dropping any entry for
    /// the gateway that just failed.
    fn next_standby(&mut self, failed: Addr) -> Option<SocketAddr> {
        self.standby.retain(|c| c.addr != failed);
        if self.standby.is_empty() {
            None
        } else {
            Some(self.standby.remove(0))
        }
    }

    /// The serving gateway stopped answering pings: declare it dead and
    /// immediately lease from the best ranked survivor. The default
    /// handler stays installed and no INTERNET_DOWN is emitted — a
    /// successful handoff looks to the upper layers like a lease
    /// renumbering, not an outage.
    fn begin_handoff(&mut self, ctx: &mut Ctx<'_>) {
        let State::Connected {
            gateway, public, ..
        } = &self.state
        else {
            return;
        };
        let (gateway, public) = (*gateway, *public);
        ctx.stats().count("cp.gateway_dead", 1);
        ctx.obs().counter_add("cp.gateway_dead", 1);
        self.handoff_span = ctx.span_enter(SpanCat::Tunnel, "tunnel.handoff");
        if ctx.obs().tracing() {
            let corr = gateway.addr.to_string();
            ctx.obs().span_corr(self.handoff_span, &corr);
        }
        self.handoff_started_us = ctx.now_us();
        // The old lease is dead with its gateway; stop answering for it.
        ctx.remove_local_addr(public);
        self.handoff_from = Some(public);
        self.ka_gen += 1;
        self.dead_gateway = Some(gateway.addr);
        // First-hand death evidence beats the advert lifetime: drop the
        // dead gateway's cached SLP entries so a fallback lookup floods
        // for survivors instead of hitting the stale cache until expiry.
        if let Some(reg) = &self.registry {
            let purged = reg.borrow_mut().purge_origin(gateway.addr);
            if purged > 0 {
                ctx.stats().count("cp.slp_purged", purged);
            }
        }
        let mut candidates = self.candidate_gateways(ctx, Some(gateway.addr));
        if candidates.is_empty() {
            // Stale SLP standby may still name the dead gateway's
            // neighbors; fall back to whatever the last probe ranked.
            candidates = std::mem::take(&mut self.standby);
            candidates.retain(|c| c.addr != gateway.addr);
        }
        match candidates.first().copied() {
            Some(best) => {
                self.standby = candidates.split_off(1);
                self.connect(ctx, best, 0);
            }
            None => {
                // No warm candidate — fall back to a fresh SLP probe. The
                // handoff stays in flight (`handoff_from` kept): the probe
                // is its continuation, and only an empty or exhausted
                // probe declares the node offline.
                self.standby.clear();
                self.probe(ctx);
            }
        }
    }

    /// Gives up an in-flight handoff: the node is genuinely offline now,
    /// so release the default handler and tell the stack.
    fn fail_handoff(&mut self, ctx: &mut Ctx<'_>) {
        if self.handoff_from.take().is_some() {
            ctx.span_exit(self.handoff_span, false);
            self.handoff_span = SpanId::NONE;
            ctx.set_default_handler(false);
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_DOWN_EVENT,
                data: Vec::new(),
            });
            ctx.stats().count("cp.tunnel_down", 1);
        }
        // The blocklist exists to keep the *handoff* from re-picking the
        // gateway it just watched die. Once the outage is declared, normal
        // probing resumes — and must be allowed to find that same gateway
        // again after it restarts (its purged adverts can only reappear
        // through a fresh announcement).
        self.dead_gateway = None;
    }

    fn on_lease(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, public: Addr, lifetime_secs: u32) {
        let lease = SimDuration::from_secs(lifetime_secs as u64);
        match &mut self.state {
            State::Connecting { gateway, .. } if gateway.addr == from.addr => {
                let gateway = *gateway;
                self.state = State::Connected {
                    gateway,
                    public,
                    lease,
                    refresh_failures: 0,
                    refresh_outstanding: false,
                    missed_pings: 0,
                };
                self.consecutive_failures = 0;
                // A fresh lease from a (different) gateway ends the
                // blocklist: if the dead one comes back it re-announces
                // and competes on equal footing again.
                self.dead_gateway = None;
                ctx.span_exit(self.handshake_span, true);
                self.handshake_span = SpanId::NONE;
                let took = ctx.now_us().saturating_sub(self.handshake_started_us);
                ctx.obs().hist_record("cp.handshake_us", took);
                ctx.add_local_addr(public);
                ctx.set_default_handler(true);
                ctx.stats().count("cp.tunnel_up", 1);
                ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                });
                self.refresh_gen += 1;
                ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                if !self.cfg.keepalive_interval.is_zero() {
                    self.ka_gen += 1;
                    ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_KEEPALIVE, self.ka_gen));
                }
                if self.handoff_from.take().is_some() {
                    ctx.span_exit(self.handoff_span, true);
                    self.handoff_span = SpanId::NONE;
                    let took = ctx.now_us().saturating_sub(self.handoff_started_us);
                    ctx.obs().hist_record("cp.handoff_us", took);
                    ctx.stats().count("cp.handoff_ok", 1);
                    ctx.obs().counter_add("cp.handoff_ok", 1);
                }
            }
            State::Connected {
                gateway,
                public: cur_public,
                lease: cur_lease,
                refresh_outstanding,
                refresh_failures,
                missed_pings,
            } if gateway.addr == from.addr => {
                *refresh_outstanding = false;
                *refresh_failures = 0;
                // A lease grant is proof of life as good as a pong.
                *missed_pings = 0;
                // The grant is authoritative: adopt a renumbered public
                // address and a shortened (or lengthened) lifetime instead
                // of silently drifting from the server's view.
                let old_public = *cur_public;
                *cur_public = public;
                let lease_changed = *cur_lease != lease;
                *cur_lease = lease;
                if old_public != public {
                    ctx.remove_local_addr(old_public);
                    ctx.add_local_addr(public);
                    ctx.stats().count("cp.lease_renumbered", 1);
                    ctx.emit(LocalEvent::Custom {
                        kind: INTERNET_UP_EVENT,
                        data: public.to_string().into_bytes(),
                    });
                }
                if lease_changed {
                    self.refresh_gen += 1;
                    ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                }
            }
            _ => {}
        }
    }

    /// Captured Internet-bound datagram: NAT the source and tunnel it.
    fn tunnel_out(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let State::Connected {
            gateway, public, ..
        } = &self.state
        else {
            ctx.stats().count("cp.no_tunnel_drop", dgram.wire_len());
            return;
        };
        let mut inner = dgram.clone();
        if !inner.src.addr.is_public() {
            inner.src.addr = *public;
        }
        let gateway = *gateway;
        let msg = TunnelMsg::Data { inner };
        ctx.stats().count("cp.tunneled_out", dgram.wire_len());
        ctx.send_to(gateway, ports::TUNNEL, msg.to_wire());
    }
}

impl Process for ConnectionProvider {
    fn name(&self) -> &'static str {
        "connection-provider"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(CP_SLP_PORT);
        if let Some(public) = self.cfg.wired_public {
            // Gateways are attached by definition; the tunnel port belongs
            // to their tunnel *server*.
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_UP_EVENT,
                data: public.to_string().into_bytes(),
            });
            return;
        }
        ctx.bind(ports::TUNNEL);
        let jitter = ctx
            .rng()
            .range_u64(0, self.cfg.check_interval.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), TAG_CHECK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        // SLP replies to our gateway probes.
        if dgram.dst.port == CP_SLP_PORT {
            if let Ok(SlpMsg::SrvRply { xid, entries }) = SlpMsg::parse(&dgram.payload) {
                if let State::Probing { xid: expect } = self.state {
                    if xid == expect {
                        // Rank every offered gateway (hops, then
                        // freshness): lease from the best, keep the rest
                        // as warm standby for handoff. Neighbor caches may
                        // still advertise the blocklisted dead gateway.
                        let mut entries: Vec<ServiceEntry> = entries;
                        entries.retain(|e| !self.is_dead(e));
                        {
                            let now = ctx.now();
                            let routes = ctx.routes_ref();
                            rank_gateways(&mut entries, |a| {
                                routes.lookup_specific(a, now).map(|r| r.hops)
                            });
                        }
                        match entries.first() {
                            Some(gw) => {
                                self.standby = entries.iter().skip(1).map(|e| e.contact).collect();
                                let best = gw.contact;
                                self.connect(ctx, best, 0);
                            }
                            None => {
                                self.fail_handoff(ctx);
                                self.state = State::Idle;
                                self.consecutive_failures =
                                    self.consecutive_failures.saturating_add(1);
                                self.schedule_recheck(ctx);
                            }
                        }
                    }
                }
            }
            return;
        }
        // Tunnel port traffic or default-handler captures.
        if dgram.dst.port == ports::TUNNEL && dgram.dst.addr == ctx.addr() {
            match TunnelMsg::parse(&dgram.payload) {
                Some(TunnelMsg::Lease {
                    public,
                    lifetime_secs,
                }) => {
                    self.on_lease(ctx, dgram.src, public, lifetime_secs);
                }
                Some(TunnelMsg::Data { inner }) => {
                    ctx.stats().count("cp.tunneled_in", inner.wire_len());
                    ctx.reinject(inner);
                }
                Some(TunnelMsg::Pong { .. }) => {
                    if let State::Connected {
                        gateway,
                        missed_pings,
                        ..
                    } = &mut self.state
                    {
                        if gateway.addr == dgram.src.addr {
                            *missed_pings = 0;
                            ctx.stats().count("cp.pong", 1);
                        }
                    }
                }
                Some(TunnelMsg::Connect) | Some(TunnelMsg::Ping { .. }) | None => {
                    ctx.stats().count("cp.unexpected_msg", dgram.payload.len());
                }
            }
            return;
        }
        // Anything else delivered to us is a default-handler capture of an
        // Internet-bound datagram.
        self.tunnel_out(ctx, dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let gen = token >> 8;
        match token & 0xff {
            TAG_CHECK => match self.state {
                State::Idle => self.probe(ctx),
                State::Probing { .. } => {
                    // SLP lookup never answered (should not happen — the
                    // daemon always replies); retry.
                    self.probe(ctx);
                }
                _ => {}
            },
            TAG_CONNECT_TIMEOUT => {
                if let State::Connecting { gateway, attempts } = self.state {
                    if attempts < 2 {
                        self.connect(ctx, gateway, attempts + 1);
                    } else if let Some(next) = self.next_standby(gateway.addr) {
                        // This gateway never answered; advance through the
                        // warm-standby ranking before giving up.
                        ctx.span_exit(self.handshake_span, false);
                        self.handshake_span = SpanId::NONE;
                        ctx.stats().count("cp.standby_advance", 1);
                        self.connect(ctx, next, 0);
                    } else {
                        ctx.span_exit(self.handshake_span, false);
                        self.handshake_span = SpanId::NONE;
                        self.fail_handoff(ctx);
                        self.state = State::Idle;
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                    }
                }
            }
            TAG_REFRESH => {
                if gen != self.refresh_gen {
                    return;
                }
                let max_failures = self.cfg.max_refresh_failures;
                if let State::Connected {
                    gateway,
                    lease,
                    refresh_failures,
                    refresh_outstanding,
                    ..
                } = &mut self.state
                {
                    if *refresh_outstanding {
                        *refresh_failures += 1;
                    }
                    if *refresh_failures > max_failures {
                        self.teardown(ctx);
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                        return;
                    }
                    *refresh_outstanding = true;
                    let gateway = *gateway;
                    let lease = *lease;
                    ctx.stats().count("cp.tconnect", 1);
                    ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
                    ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                }
            }
            TAG_KEEPALIVE => {
                if gen != self.ka_gen {
                    return;
                }
                let dead = matches!(
                    &self.state,
                    State::Connected { missed_pings, .. }
                        if *missed_pings >= self.cfg.keepalive_max_missed
                );
                if dead {
                    self.begin_handoff(ctx);
                    return;
                }
                if let State::Connected {
                    gateway,
                    missed_pings,
                    ..
                } = &mut self.state
                {
                    *missed_pings += 1;
                    let gateway = *gateway;
                    self.ping_seq += 1;
                    ctx.stats().count("cp.ping", 1);
                    ctx.send_to(
                        gateway,
                        ports::TUNNEL,
                        TunnelMsg::Ping { seq: self.ping_seq }.to_wire(),
                    );
                    ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_KEEPALIVE, self.ka_gen));
                }
            }
            _ => {}
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        if matches!(ev, LocalEvent::NodeRestarted) {
            // A crash does not clear the node's address aliases or
            // default-handler registration, and the gateway side of any
            // pre-crash lease is gone; tear everything down before
            // starting over so the restarted node does not keep NATing
            // through a dead tunnel.
            self.teardown(ctx);
            self.consecutive_failures = 0;
            match self.cfg.wired_public {
                Some(public) => ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                }),
                None => ctx.set_timer(SimDuration::from_millis(100), TAG_CHECK),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_node_reports_connected_immediately() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig {
            wired_public: Some(Addr::new(82, 130, 64, 1)),
            ..ConnectionProviderConfig::default()
        });
        assert!(cp.is_connected());
    }

    #[test]
    fn fresh_provider_is_disconnected() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig::default());
        assert!(!cp.is_connected());
    }
}
