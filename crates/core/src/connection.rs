//! The Connection Provider.
//!
//! Paper §2: "a Connection Provider that manages connections of the node
//! to the Internet when there is a gateway in the MANET. It periodically
//! checks whether it can find a gateway service (using MANET SLP) and
//! open\[s\] a layer two tunnel connection to the node offering the tunnel
//! server."
//!
//! Once a lease is held, the Connection Provider is the node's default
//! handler: Internet-bound datagrams the stack cannot route are captured,
//! source-NATed to the leased public address and encapsulated toward the
//! gateway; tunneled traffic from the gateway is decapsulated and
//! re-injected locally. It tells the rest of the node about connectivity
//! changes through the [`INTERNET_UP_EVENT`] / [`INTERNET_DOWN_EVENT`]
//! node-local events the SIPHoc proxy listens for.

use std::collections::BTreeMap;

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use siphoc_slp::manet::SharedRegistry;
use siphoc_slp::msg::SlpMsg;
use siphoc_slp::registry::rank_gateways;
use siphoc_slp::service::{service_types, ServiceEntry};

use crate::tunnel::TunnelMsg;

/// Node-local event: the node is attached to the Internet. Payload:
/// the public address, as text.
pub const INTERNET_UP_EVENT: &str = "siphoc.internet_up";
/// Node-local event: Internet attachment lost. No payload.
pub const INTERNET_DOWN_EVENT: &str = "siphoc.internet_down";

/// Port the Connection Provider uses for its SLP client exchanges.
const CP_SLP_PORT: u16 = 4271;

/// Connection Provider configuration.
#[derive(Debug, Clone)]
pub struct ConnectionProviderConfig {
    /// Period of the gateway-service check (paper: "periodically checks").
    pub check_interval: SimDuration,
    /// How long to wait for a lease reply before retrying.
    pub connect_timeout: SimDuration,
    /// Consecutive refresh failures before declaring the tunnel down.
    pub max_refresh_failures: u32,
    /// Ceiling for the exponential backoff applied to re-probes after
    /// repeated gateway failures (lease refusals, connect timeouts,
    /// refresh losses). The first retry still happens after
    /// `check_interval`; each further consecutive failure doubles the
    /// wait, capped here and jittered to avoid synchronized probing.
    pub backoff_max: SimDuration,
    /// The node's own wired public address, when it *is* a gateway — the
    /// provider then reports connectivity immediately and never tunnels.
    pub wired_public: Option<Addr>,
    /// Interval between tunnel liveness pings while Connected.
    /// `SimDuration::ZERO` disables keepalives entirely, restoring the
    /// lease-refresh-only liveness of the pre-handoff provider.
    pub keepalive_interval: SimDuration,
    /// Consecutive unanswered pings before the gateway is declared dead
    /// and a mid-call handoff begins. Detection latency is therefore
    /// `(keepalive_max_missed + 1) * keepalive_interval` in the worst
    /// case — ~4 s with the defaults, inside the 5 s handoff budget.
    pub keepalive_max_missed: u32,
    /// Number of *warm standby* leases to hold alongside the active one
    /// (make-before-break). Each standby is a live lease on a ranked
    /// `service:gateway` candidate, kept warm with its own keepalive and
    /// refresh chains, so a dead active gateway is replaced by promotion
    /// instead of a fresh handshake. `0` disables multi-homing and
    /// restores the cold-contact (break-before-make) failover.
    pub standby_target: u32,
    /// Period of the standby maintenance scan: expired or dead standbys
    /// are dropped and the warm set is replenished back to
    /// `standby_target` from the current gateway ranking.
    pub standby_refresh: SimDuration,
}

impl Default for ConnectionProviderConfig {
    fn default() -> ConnectionProviderConfig {
        ConnectionProviderConfig {
            check_interval: SimDuration::from_secs(5),
            connect_timeout: SimDuration::from_secs(2),
            max_refresh_failures: 2,
            backoff_max: SimDuration::from_secs(60),
            wired_public: None,
            keepalive_interval: SimDuration::from_secs(1),
            keepalive_max_missed: 3,
            standby_target: 1,
            standby_refresh: SimDuration::from_secs(10),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// No gateway known.
    Idle,
    /// SLP query outstanding.
    Probing { xid: u32 },
    /// TCONNECT sent, waiting for the lease.
    Connecting { gateway: SocketAddr, attempts: u32 },
    /// Tunnel established.
    Connected {
        gateway: SocketAddr,
        public: Addr,
        lease: SimDuration,
        refresh_failures: u32,
        refresh_outstanding: bool,
        missed_pings: u32,
    },
}

const TAG_CHECK: u64 = 1;
const TAG_CONNECT_TIMEOUT: u64 = 2;
const TAG_REFRESH: u64 = 3;
const TAG_KEEPALIVE: u64 = 4;
const TAG_STANDBY_SCAN: u64 = 5;
const TAG_STANDBY_KA: u64 = 6;
const TAG_STANDBY_REFRESH: u64 = 7;
const TAG_STANDBY_TIMEOUT: u64 = 8;

/// Timers cannot be cancelled, so the refresh and keepalive chains carry a
/// generation in the token's upper bits; a fired timer whose generation no
/// longer matches is a stale chain and is ignored. Standby chains carry
/// the standby's id instead — a fired timer whose id no longer names a
/// live standby is likewise stale.
const fn tok(tag: u64, gen: u64) -> u64 {
    tag | (gen << 8)
}

/// A warm standby: a live lease held on a non-active gateway, pre-warmed
/// so promotion at handoff time is a state flip, not a handshake.
#[derive(Debug, Clone)]
struct Standby {
    /// Distinguishes this standby's timer chains from any predecessor's.
    id: u64,
    /// The gateway's tunnel-server contact.
    gateway: SocketAddr,
    /// The node that advertised the gateway (hop ranking, liveness).
    origin: Addr,
    /// The leased public address once the standby is warm; `None` while
    /// the TCONNECT is still outstanding.
    public: Option<Addr>,
    /// Granted lease lifetime.
    lease: SimDuration,
    /// When the standby's lease lapses unless refreshed.
    lease_expires: SimTime,
    /// When the gateway's SLP advert lapses; a standby whose advert
    /// expired is dropped (`cp.standby_expired`) — the gateway stopped
    /// re-announcing and is not worth keeping warm.
    advert_expires: SimTime,
    /// Consecutive unanswered standby keepalive pings.
    missed_pings: u32,
}

/// A cold standby contact from the last probe: no lease held, just a
/// ranked fallback for when the registry has nothing better.
#[derive(Debug, Clone)]
struct ColdContact {
    contact: SocketAddr,
    origin: Addr,
    /// When the advert backing this contact lapses.
    expires: SimTime,
}

/// Orders standby contacts for a failover: fewest hops to the
/// advertising origin first (unreachable last), then the freshest advert,
/// then origin for a stable total order — the same desirability order as
/// `rank_gateways`, applied at failover time instead of insertion time.
fn rank_cold_contacts(contacts: &mut [ColdContact], mut hops_to: impl FnMut(Addr) -> Option<u8>) {
    contacts.sort_by_key(|c| {
        (
            hops_to(c.origin).unwrap_or(u8::MAX),
            std::cmp::Reverse(c.expires),
            c.origin,
        )
    });
}

/// Per-gateway health book: one struct owning both the handoff
/// blocklist (the gateway just watched die) and the attestation pins
/// (trust-on-first-use identity per gateway address). Keeping them
/// together makes the lifecycle explicit: the *dead* mark is transient —
/// cleared when the handoff resolves — while a *pin* is permanent, so a
/// restarted gateway that re-attests under its original key is
/// re-leasable, and one that comes back under a new key never is.
#[derive(Debug, Default)]
pub struct GatewayHealth {
    /// The gateway most recently declared dead. Its SLP adverts may
    /// outlive it in neighbor caches for a full lifetime; every candidate
    /// ranking skips it until the handoff resolves.
    dead: Option<Addr>,
    /// Gateway address → pinned advertiser identity (first signed advert
    /// seen). Defense-in-depth behind the SLP registry's origin pins.
    pins: BTreeMap<Addr, u64>,
}

impl GatewayHealth {
    /// Whether `addr` is the blocklisted dead gateway.
    pub fn is_dead(&self, addr: Addr) -> bool {
        self.dead == Some(addr)
    }

    /// Whether a gateway entry names the blocklisted dead one (by tunnel
    /// contact or by advertising origin).
    pub fn entry_dead(&self, e: &ServiceEntry) -> bool {
        self.is_dead(e.contact.addr) || self.is_dead(e.origin)
    }

    /// Blocklists `addr` for the duration of the current handoff.
    pub fn mark_dead(&mut self, addr: Addr) {
        self.dead = Some(addr);
    }

    /// Ends the blocklist: the handoff resolved (new lease, or declared
    /// outage). Pins persist — death is forgiven, key changes are not.
    pub fn clear_dead(&mut self) {
        self.dead = None;
    }

    /// Attests a signed gateway advert: pins the identity on first use;
    /// a pinned gateway presenting a *different* identity is marked dead
    /// and refused. Returns whether the gateway may be leased from.
    pub fn attest(&mut self, addr: Addr, identity: u64) -> bool {
        match self.pins.get(&addr) {
            Some(pinned) if *pinned != identity => {
                self.dead = Some(addr);
                false
            }
            _ => {
                self.pins.insert(addr, identity);
                true
            }
        }
    }

    /// The identity pinned for a gateway address, if any.
    pub fn pinned(&self, addr: Addr) -> Option<u64> {
        self.pins.get(&addr).copied()
    }
}

/// The Connection Provider process.
#[derive(Debug)]
pub struct ConnectionProvider {
    cfg: ConnectionProviderConfig,
    state: State,
    next_xid: u32,
    consecutive_failures: u32,
    handshake_span: SpanId,
    handshake_started_us: u64,
    /// Generation of the live keepalive timer chain.
    ka_gen: u64,
    /// Generation of the live lease-refresh timer chain.
    refresh_gen: u64,
    ping_seq: u64,
    /// Cold `service:gateway` contacts beyond the one we leased from —
    /// the fallback set a handoff re-ranks when no warm standby survives.
    standby: Vec<ColdContact>,
    /// Warm standby leases (make-before-break), at most
    /// `cfg.standby_target` of them.
    warm: Vec<Standby>,
    /// Id generator for standby timer chains.
    next_standby_id: u64,
    /// Generation of the live standby maintenance scan chain.
    scan_gen: u64,
    /// The node's MANET SLP registry, for ranking fresh gateway
    /// candidates at handoff time.
    registry: Option<SharedRegistry>,
    handoff_span: SpanId,
    handoff_started_us: u64,
    /// The public address held when the current handoff began; `Some`
    /// exactly while a handoff is in flight.
    handoff_from: Option<Addr>,
    /// Dead-gateway blocklist and attestation pins, one book.
    gw_health: GatewayHealth,
    /// Earliest time the next exhaustive gateway sweep may run. The
    /// registry only learns what floods past this node; when the warm set
    /// is short, the scan sweeps the network for additional gateways —
    /// throttled, since a single-gateway MANET would otherwise flood on
    /// every scan forever.
    next_sweep_at: SimTime,
}

impl ConnectionProvider {
    /// Creates a Connection Provider.
    pub fn new(cfg: ConnectionProviderConfig) -> ConnectionProvider {
        ConnectionProvider {
            cfg,
            state: State::Idle,
            next_xid: 0,
            consecutive_failures: 0,
            handshake_span: SpanId::NONE,
            handshake_started_us: 0,
            ka_gen: 0,
            refresh_gen: 0,
            ping_seq: 0,
            standby: Vec::new(),
            warm: Vec::new(),
            next_standby_id: 0,
            scan_gen: 0,
            registry: None,
            handoff_span: SpanId::NONE,
            handoff_started_us: 0,
            handoff_from: None,
            gw_health: GatewayHealth::default(),
            next_sweep_at: SimTime::ZERO,
        }
    }

    /// Attaches the node's shared MANET SLP registry so gateway handoff
    /// can rank live `service:gateway` candidates instead of re-probing.
    pub fn with_registry(mut self, registry: SharedRegistry) -> ConnectionProvider {
        self.registry = Some(registry);
        self
    }

    /// The gateway health book (handoff blocklist + attestation pins).
    pub fn gateway_health(&self) -> &GatewayHealth {
        &self.gw_health
    }

    /// Whether the node currently holds a tunnel lease (or is a gateway).
    pub fn is_connected(&self) -> bool {
        self.cfg.wired_public.is_some() || matches!(self.state, State::Connected { .. })
    }

    fn probe(&mut self, ctx: &mut Ctx<'_>) {
        self.next_xid += 1;
        let xid = self.next_xid;
        self.state = State::Probing { xid };
        ctx.stats().count("cp.probe", 1);
        let m = SlpMsg::SrvRqst {
            xid,
            service_type: service_types::GATEWAY.to_owned(),
            key: String::new(),
        };
        ctx.send_local(ports::SLP, CP_SLP_PORT, m.to_wire());
    }

    /// Schedules the next gateway re-check, backing off exponentially
    /// (with jitter) after consecutive failures so a gateway-less MANET
    /// is not flooded with synchronized probe traffic.
    fn schedule_recheck(&mut self, ctx: &mut Ctx<'_>) {
        let base = self.cfg.check_interval.as_micros().max(1);
        let cap = self.cfg.backoff_max.as_micros().max(base);
        let shift = self.consecutive_failures.min(16);
        let backoff = base.saturating_mul(1u64 << shift).min(cap);
        // Uniform in [backoff/2, backoff): desynchronizes nodes that all
        // lost the same gateway at the same instant.
        let delay = ctx.rng().range_u64((backoff / 2).max(1), backoff.max(2));
        ctx.set_timer(SimDuration::from_micros(delay), TAG_CHECK);
    }

    fn connect(&mut self, ctx: &mut Ctx<'_>, gateway: SocketAddr, attempts: u32) {
        self.state = State::Connecting { gateway, attempts };
        if attempts == 0 {
            self.handshake_span = ctx.span_enter(SpanCat::Tunnel, "tunnel.handshake");
            if ctx.obs().tracing() {
                let corr = gateway.addr.to_string();
                ctx.obs().span_corr(self.handshake_span, &corr);
            }
            self.handshake_started_us = ctx.now_us();
        }
        ctx.stats().count("cp.tconnect", 1);
        ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
        ctx.set_timer(self.cfg.connect_timeout, TAG_CONNECT_TIMEOUT);
    }

    fn teardown(&mut self, ctx: &mut Ctx<'_>) {
        // A handshake abandoned mid-flight (e.g. restart while Connecting)
        // must not linger as an open span.
        ctx.span_exit(self.handshake_span, false);
        self.handshake_span = SpanId::NONE;
        // Likewise a handoff in flight: give up on it cleanly (emits
        // INTERNET_DOWN, releases the default handler).
        self.fail_handoff(ctx);
        self.ka_gen += 1;
        self.refresh_gen += 1;
        self.standby.clear();
        if let State::Connected { public, .. } = self.state {
            ctx.remove_local_addr(public);
            ctx.set_default_handler(false);
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_DOWN_EVENT,
                data: Vec::new(),
            });
            ctx.stats().count("cp.tunnel_down", 1);
        }
        self.state = State::Idle;
    }

    /// Ranked `service:gateway` entries for every live advert the node
    /// knows, best first, excluding `exclude` (the gateway just declared
    /// dead).
    fn candidate_gateways(&mut self, ctx: &Ctx<'_>, exclude: Option<Addr>) -> Vec<ServiceEntry> {
        let Some(reg) = self.registry.clone() else {
            return Vec::new();
        };
        let now = ctx.now();
        let mut entries: Vec<ServiceEntry> = {
            let routes = ctx.routes_ref();
            reg.borrow()
                .gateway_candidates(now, |a| routes.lookup_specific(a, now).map(|r| r.hops))
        };
        entries.retain(|e| exclude != Some(e.contact.addr) && exclude != Some(e.origin));
        let mut kept = Vec::with_capacity(entries.len());
        for e in entries {
            if self.admit_gateway(&e) {
                kept.push(e);
            }
        }
        kept
    }

    /// Judges one offered gateway entry: signed adverts must pass
    /// attestation (trust-on-first-use identity pin — a pinned gateway
    /// that changed keys is marked dead here), and the handoff blocklist
    /// refuses the gateway just watched die. Unsigned entries skip
    /// attestation, keeping the legacy path byte-identical.
    fn admit_gateway(&mut self, e: &ServiceEntry) -> bool {
        if let Some(identity) = e.advertiser_identity() {
            if !self.gw_health.attest(e.contact.addr, identity) {
                return false;
            }
        }
        !self.gw_health.entry_dead(e)
    }

    /// Pops the best remaining cold standby contact, dropping entries for
    /// the gateway that just failed and contacts whose backing advert
    /// lapsed, then **re-ranking the survivors against current routes** —
    /// the ranking captured at probe time is stale by the time a failover
    /// needs it (nodes moved, routes changed, adverts refreshed).
    fn next_standby(&mut self, ctx: &mut Ctx<'_>, failed: Addr) -> Option<SocketAddr> {
        let now = ctx.now();
        self.standby
            .retain(|c| c.contact.addr != failed && c.origin != failed);
        let before = self.standby.len();
        self.standby.retain(|c| c.expires > now);
        let lapsed = before - self.standby.len();
        if lapsed > 0 {
            ctx.stats().count("cp.standby_expired", lapsed);
            ctx.obs().counter_add("cp.standby_expired", lapsed as u64);
        }
        {
            let routes = ctx.routes_ref();
            rank_cold_contacts(&mut self.standby, |a| {
                routes.lookup_specific(a, now).map(|r| r.hops)
            });
        }
        if self.standby.is_empty() {
            None
        } else {
            Some(self.standby.remove(0).contact)
        }
    }

    /// Records the tail of a gateway ranking as the cold fallback set.
    fn keep_cold(&mut self, entries: &[ServiceEntry], now: SimTime) {
        self.standby = entries
            .iter()
            .map(|e| ColdContact {
                contact: e.contact,
                origin: e.origin,
                expires: e.expires_at(now),
            })
            .collect();
    }

    /// Drops every warm standby (teardown, declared outage) and kills the
    /// maintenance scan chain. Nothing is released on the gateway side:
    /// standby leases are soft state and expire there.
    fn drop_standbys(&mut self, ctx: &mut Ctx<'_>) {
        let warm = self.warm.iter().filter(|s| s.public.is_some()).count();
        if warm > 0 {
            ctx.stats().count("cp.standby_drop", warm);
        }
        self.warm.clear();
        self.scan_gen += 1;
    }

    /// One standby maintenance pass: refresh advert lifetimes from the
    /// registry, expire standbys whose advert or lease lapsed, and
    /// replenish the warm set back to `standby_target` from the current
    /// gateway ranking. Runs on the `TAG_STANDBY_SCAN` chain while a
    /// lease is held.
    fn maintain_standbys(&mut self, ctx: &mut Ctx<'_>) {
        let State::Connected { gateway, .. } = &self.state else {
            return;
        };
        let active = gateway.addr;
        let now = ctx.now();
        let candidates = self.candidate_gateways(ctx, Some(active));
        // A steadily re-announced gateway must not age out of the warm
        // set: adopt the freshest advert lifetime the registry holds.
        for s in &mut self.warm {
            if let Some(e) = candidates.iter().find(|e| e.origin == s.origin) {
                s.advert_expires = s.advert_expires.max(e.expires_at(now));
            }
        }
        self.expire_standbys(ctx, now);
        let before = self.standby.len();
        self.standby.retain(|c| c.expires > now);
        let lapsed = before - self.standby.len();
        if lapsed > 0 {
            ctx.stats().count("cp.standby_expired", lapsed);
            ctx.obs().counter_add("cp.standby_expired", lapsed as u64);
        }
        // Replenish: best-ranked candidates first, cold contacts as a
        // last resort, skipping gateways already in the warm set.
        let mut pool: Vec<(SocketAddr, Addr, SimTime)> = candidates
            .iter()
            .map(|e| (e.contact, e.origin, e.expires_at(now)))
            .collect();
        for c in &self.standby {
            if c.contact.addr != active && !pool.iter().any(|(ct, ..)| ct.addr == c.contact.addr) {
                pool.push((c.contact, c.origin, c.expires));
            }
        }
        for (contact, origin, advert_expires) in pool {
            if self.warm.len() as u32 >= self.cfg.standby_target {
                break;
            }
            if self
                .warm
                .iter()
                .any(|s| s.gateway.addr == contact.addr || s.origin == origin)
            {
                continue;
            }
            if self.gw_health.is_dead(contact.addr) || self.gw_health.is_dead(origin) {
                continue;
            }
            self.next_standby_id += 1;
            let id = self.next_standby_id;
            self.warm.push(Standby {
                id,
                gateway: contact,
                origin,
                public: None,
                lease: SimDuration::ZERO,
                lease_expires: now,
                advert_expires,
                missed_pings: 0,
            });
            ctx.stats().count("cp.standby_connect", 1);
            ctx.send_to(contact, ports::TUNNEL, TunnelMsg::Connect.to_wire());
            ctx.set_timer(self.cfg.connect_timeout, tok(TAG_STANDBY_TIMEOUT, id));
        }
        // Still short of the target? The registry holds too few distinct
        // gateways — sweep the network for more. Answers are absorbed into
        // the registry as they flood back; a later scan warms them. (The
        // startup probe races every node's simultaneous discovery and is
        // answered by the *nearest* match, so a multi-homed node must keep
        // looking for alternatives it never heard of.)
        if (self.warm.len() as u32) < self.cfg.standby_target && now >= self.next_sweep_at {
            self.next_sweep_at = now + self.cfg.standby_refresh.max(SimDuration::from_secs(5));
            self.next_xid += 1;
            ctx.stats().count("cp.standby_sweep", 1);
            ctx.obs().counter_add("cp.standby_sweep", 1);
            let m = SlpMsg::SrvRqstX {
                xid: self.next_xid,
                service_type: service_types::GATEWAY.to_owned(),
                key: String::new(),
            };
            ctx.send_local(ports::SLP, CP_SLP_PORT, m.to_wire());
        }
    }

    /// Drops warm standbys whose SLP advert lifetime (or held lease)
    /// lapsed, with the `cp.standby_expired` counter.
    fn expire_standbys(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        let before = self.warm.len();
        self.warm
            .retain(|s| s.advert_expires > now && (s.public.is_none() || s.lease_expires > now));
        let lapsed = before - self.warm.len();
        if lapsed > 0 {
            ctx.stats().count("cp.standby_expired", lapsed);
            ctx.obs().counter_add("cp.standby_expired", lapsed as u64);
        }
    }

    /// Flips a warm standby into the active lease (make-before-break
    /// promotion): the standby tunnel is already up, leased and verified
    /// live, so the handoff completes in the same event that detected the
    /// death — no handshake on the critical path.
    fn promote(&mut self, ctx: &mut Ctx<'_>, s: Standby) {
        let public = s.public.expect("only warm standbys are promoted");
        let now = ctx.now();
        let lease = s.lease_expires.saturating_since(now);
        self.state = State::Connected {
            gateway: s.gateway,
            public,
            lease,
            refresh_failures: 0,
            refresh_outstanding: false,
            missed_pings: 0,
        };
        self.consecutive_failures = 0;
        ctx.add_local_addr(public);
        ctx.set_default_handler(true);
        ctx.stats().count("cp.promote", 1);
        ctx.obs().counter_add("cp.promote", 1);
        ctx.emit(LocalEvent::Custom {
            kind: INTERNET_UP_EVENT,
            data: public.to_string().into_bytes(),
        });
        // Re-anchor the refresh and liveness chains on the promoted
        // gateway; the standby's own chains died with its removal. The
        // immediate TCONNECT re-confirms the lease server-side.
        self.refresh_gen += 1;
        ctx.stats().count("cp.tconnect", 1);
        ctx.send_to(s.gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
        let refresh_in = lease.max(SimDuration::from_secs(2)) / 2;
        ctx.set_timer(refresh_in, tok(TAG_REFRESH, self.refresh_gen));
        if !self.cfg.keepalive_interval.is_zero() {
            self.ka_gen += 1;
            ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_KEEPALIVE, self.ka_gen));
        }
        if self.handoff_from.take().is_some() {
            ctx.span_exit(self.handoff_span, true);
            self.handoff_span = SpanId::NONE;
            let took = ctx.now_us().saturating_sub(self.handoff_started_us);
            ctx.obs().hist_record("cp.handoff_us", took);
            ctx.obs().hist_record("cp.promote_us", took);
            ctx.stats().count("cp.handoff_ok", 1);
            ctx.obs().counter_add("cp.handoff_ok", 1);
        }
    }

    /// The serving gateway stopped answering pings: declare it dead and
    /// immediately lease from the best ranked survivor. The default
    /// handler stays installed and no INTERNET_DOWN is emitted — a
    /// successful handoff looks to the upper layers like a lease
    /// renumbering, not an outage.
    fn begin_handoff(&mut self, ctx: &mut Ctx<'_>) {
        let State::Connected {
            gateway, public, ..
        } = &self.state
        else {
            return;
        };
        let (gateway, public) = (*gateway, *public);
        ctx.stats().count("cp.gateway_dead", 1);
        ctx.obs().counter_add("cp.gateway_dead", 1);
        self.handoff_span = ctx.span_enter(SpanCat::Tunnel, "tunnel.handoff");
        if ctx.obs().tracing() {
            let corr = gateway.addr.to_string();
            ctx.obs().span_corr(self.handoff_span, &corr);
        }
        self.handoff_started_us = ctx.now_us();
        // The old lease is dead with its gateway; stop answering for it.
        ctx.remove_local_addr(public);
        self.handoff_from = Some(public);
        self.ka_gen += 1;
        self.gw_health.mark_dead(gateway.addr);
        // First-hand death evidence beats the advert lifetime: drop the
        // dead gateway's cached SLP entries so a fallback lookup floods
        // for survivors instead of hitting the stale cache until expiry.
        if let Some(reg) = &self.registry {
            let purged = reg.borrow_mut().purge_origin(gateway.addr);
            if purged > 0 {
                ctx.stats().count("cp.slp_purged", purged);
            }
        }
        // Make-before-break: drop standbys that rode the dead gateway,
        // expire the stale, re-rank the survivors against *current*
        // routes (hops, then advert freshness) and promote the hottest
        // warm one — a pre-warmed lease makes the switch a state flip
        // with no handshake on the critical path.
        let now = ctx.now();
        let rode_dead = self
            .warm
            .iter()
            .filter(|s| {
                (s.gateway.addr == gateway.addr || s.origin == gateway.addr) && s.public.is_some()
            })
            .count();
        if rode_dead > 0 {
            ctx.stats().count("cp.standby_dead", rode_dead);
        }
        self.warm
            .retain(|s| s.gateway.addr != gateway.addr && s.origin != gateway.addr);
        self.expire_standbys(ctx, now);
        {
            let routes = ctx.routes_ref();
            self.warm.sort_by_key(|s| {
                (
                    routes
                        .lookup_specific(s.origin, now)
                        .map(|r| r.hops)
                        .unwrap_or(u8::MAX),
                    std::cmp::Reverse(s.advert_expires),
                    s.origin,
                )
            });
        }
        if let Some(i) = self.warm.iter().position(|s| s.public.is_some()) {
            let s = self.warm.remove(i);
            self.promote(ctx, s);
            return;
        }
        // No warm standby survived: break-before-make fallback through
        // the registry ranking, then the cold contacts, then a probe.
        let mut candidates = self.candidate_gateways(ctx, Some(gateway.addr));
        if candidates.is_empty() {
            // Stale SLP standby may still name the dead gateway's
            // neighbors; fall back to whatever the last probe ranked,
            // re-ranked against current routes.
            match self.next_standby(ctx, gateway.addr) {
                Some(best) => self.connect(ctx, best, 0),
                None => {
                    // No candidate at all — fall back to a fresh SLP
                    // probe. The handoff stays in flight (`handoff_from`
                    // kept): the probe is its continuation, and only an
                    // empty or exhausted probe declares the node offline.
                    self.probe(ctx);
                }
            }
            return;
        }
        let best = candidates.remove(0);
        self.keep_cold(&candidates, now);
        self.connect(ctx, best.contact, 0);
    }

    /// Gives up an in-flight handoff: the node is genuinely offline now,
    /// so release the default handler and tell the stack.
    fn fail_handoff(&mut self, ctx: &mut Ctx<'_>) {
        // Whatever the outcome, the warm set does not survive going
        // offline — standbys are maintained only alongside a live lease.
        self.drop_standbys(ctx);
        if self.handoff_from.take().is_some() {
            ctx.span_exit(self.handoff_span, false);
            self.handoff_span = SpanId::NONE;
            ctx.set_default_handler(false);
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_DOWN_EVENT,
                data: Vec::new(),
            });
            ctx.stats().count("cp.tunnel_down", 1);
        }
        // The blocklist exists to keep the *handoff* from re-picking the
        // gateway it just watched die. Once the outage is declared, normal
        // probing resumes — and must be allowed to find that same gateway
        // again after it restarts (its purged adverts can only reappear
        // through a fresh announcement). Attestation pins persist: the
        // restarted gateway is re-leasable only under its original key.
        self.gw_health.clear_dead();
    }

    fn on_lease(&mut self, ctx: &mut Ctx<'_>, from: SocketAddr, public: Addr, lifetime_secs: u32) {
        let lease = SimDuration::from_secs(lifetime_secs as u64);
        match &mut self.state {
            State::Connecting { gateway, .. } if gateway.addr == from.addr => {
                let gateway = *gateway;
                self.state = State::Connected {
                    gateway,
                    public,
                    lease,
                    refresh_failures: 0,
                    refresh_outstanding: false,
                    missed_pings: 0,
                };
                self.consecutive_failures = 0;
                // A fresh lease from a (different) gateway ends the
                // blocklist: if the dead one comes back it re-announces
                // and competes on equal footing again.
                self.gw_health.clear_dead();
                ctx.span_exit(self.handshake_span, true);
                self.handshake_span = SpanId::NONE;
                let took = ctx.now_us().saturating_sub(self.handshake_started_us);
                ctx.obs().hist_record("cp.handshake_us", took);
                ctx.add_local_addr(public);
                ctx.set_default_handler(true);
                ctx.stats().count("cp.tunnel_up", 1);
                ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                });
                self.refresh_gen += 1;
                ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                if !self.cfg.keepalive_interval.is_zero() {
                    self.ka_gen += 1;
                    ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_KEEPALIVE, self.ka_gen));
                }
                if self.handoff_from.take().is_some() {
                    ctx.span_exit(self.handoff_span, true);
                    self.handoff_span = SpanId::NONE;
                    let took = ctx.now_us().saturating_sub(self.handoff_started_us);
                    ctx.obs().hist_record("cp.handoff_us", took);
                    ctx.stats().count("cp.handoff_ok", 1);
                    ctx.obs().counter_add("cp.handoff_ok", 1);
                }
                // A standby lease on the now-active gateway merged into
                // the active one; count it as released, not leaked.
                let merged = self
                    .warm
                    .iter()
                    .filter(|s| s.gateway.addr == from.addr && s.public.is_some())
                    .count();
                if merged > 0 {
                    ctx.stats().count("cp.standby_drop", merged);
                }
                self.warm.retain(|s| s.gateway.addr != from.addr);
                // Multi-homing: start (or restart) the standby
                // maintenance chain that keeps `standby_target` warm
                // leases alongside this one.
                if self.cfg.standby_target > 0 && !self.cfg.standby_refresh.is_zero() {
                    self.scan_gen += 1;
                    ctx.set_timer(
                        SimDuration::from_millis(10),
                        tok(TAG_STANDBY_SCAN, self.scan_gen),
                    );
                }
            }
            State::Connected {
                gateway,
                public: cur_public,
                lease: cur_lease,
                refresh_outstanding,
                refresh_failures,
                missed_pings,
            } if gateway.addr == from.addr => {
                *refresh_outstanding = false;
                *refresh_failures = 0;
                // A lease grant is proof of life as good as a pong.
                *missed_pings = 0;
                // The grant is authoritative: adopt a renumbered public
                // address and a shortened (or lengthened) lifetime instead
                // of silently drifting from the server's view.
                let old_public = *cur_public;
                *cur_public = public;
                let lease_changed = *cur_lease != lease;
                *cur_lease = lease;
                if old_public != public {
                    ctx.remove_local_addr(old_public);
                    ctx.add_local_addr(public);
                    ctx.stats().count("cp.lease_renumbered", 1);
                    ctx.emit(LocalEvent::Custom {
                        kind: INTERNET_UP_EVENT,
                        data: public.to_string().into_bytes(),
                    });
                }
                if lease_changed {
                    self.refresh_gen += 1;
                    ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                }
            }
            _ => {
                // Not for the active tunnel: a standby warming up (first
                // grant) or refreshing. Handled outside the match so the
                // state borrow is released.
            }
        }
        if !self.standby_owns_lease(from) {
            return;
        }
        self.on_standby_lease(ctx, from, public, lease);
    }

    /// Whether a lease grant from `from` belongs to a warm-set entry (and
    /// not to the active/connecting tunnel, which consumed it above).
    fn standby_owns_lease(&self, from: SocketAddr) -> bool {
        self.warm.iter().any(|s| s.gateway.addr == from.addr)
    }

    /// A lease grant for a standby: record it warm. The granted public
    /// address is *held*, never installed — the node keeps exactly one
    /// active public alias, so pre-warming is invisible to the stack
    /// until promotion.
    fn on_standby_lease(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: SocketAddr,
        public: Addr,
        lease: SimDuration,
    ) {
        let now = ctx.now();
        let ka = self.cfg.keepalive_interval;
        let Some(s) = self.warm.iter_mut().find(|s| s.gateway.addr == from.addr) else {
            return;
        };
        let newly_warm = s.public.is_none();
        s.public = Some(public);
        s.lease = lease;
        s.lease_expires = now + lease;
        s.missed_pings = 0;
        let id = s.id;
        if newly_warm {
            ctx.stats().count("cp.standby_warm", 1);
            ctx.obs().counter_add("cp.standby_warm", 1);
            // The standby gets its own keepalive and refresh chains so
            // it is *verified* warm, not merely leased-once.
            if !ka.is_zero() {
                ctx.set_timer(ka, tok(TAG_STANDBY_KA, id));
            }
            ctx.set_timer(lease / 2, tok(TAG_STANDBY_REFRESH, id));
        }
    }

    /// Captured Internet-bound datagram: NAT the source and tunnel it.
    fn tunnel_out(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let State::Connected {
            gateway, public, ..
        } = &self.state
        else {
            ctx.stats().count("cp.no_tunnel_drop", dgram.wire_len());
            return;
        };
        let mut inner = dgram.clone();
        if !inner.src.addr.is_public() {
            inner.src.addr = *public;
        }
        let gateway = *gateway;
        let msg = TunnelMsg::Data { inner };
        ctx.stats().count("cp.tunneled_out", dgram.wire_len());
        ctx.send_to(gateway, ports::TUNNEL, msg.to_wire());
    }
}

impl Process for ConnectionProvider {
    fn name(&self) -> &'static str {
        "connection-provider"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(CP_SLP_PORT);
        if let Some(public) = self.cfg.wired_public {
            // Gateways are attached by definition; the tunnel port belongs
            // to their tunnel *server*.
            ctx.emit(LocalEvent::Custom {
                kind: INTERNET_UP_EVENT,
                data: public.to_string().into_bytes(),
            });
            return;
        }
        ctx.bind(ports::TUNNEL);
        let jitter = ctx
            .rng()
            .range_u64(0, self.cfg.check_interval.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), TAG_CHECK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        // SLP replies to our gateway probes.
        if dgram.dst.port == CP_SLP_PORT {
            if let Ok(SlpMsg::SrvRply { xid, entries }) = SlpMsg::parse(&dgram.payload) {
                if let State::Probing { xid: expect } = self.state {
                    if xid == expect {
                        // Rank every offered gateway (hops, then
                        // freshness): lease from the best, keep the rest
                        // as warm standby for handoff. Neighbor caches may
                        // still advertise the blocklisted dead gateway.
                        let mut entries: Vec<ServiceEntry> = entries
                            .into_iter()
                            .filter(|e| self.admit_gateway(e))
                            .collect::<Vec<_>>();
                        {
                            let now = ctx.now();
                            let routes = ctx.routes_ref();
                            rank_gateways(&mut entries, |a| {
                                routes.lookup_specific(a, now).map(|r| r.hops)
                            });
                        }
                        match entries.first() {
                            Some(gw) => {
                                let best = gw.contact;
                                let now = ctx.now();
                                self.keep_cold(&entries[1..], now);
                                self.connect(ctx, best, 0);
                            }
                            None => {
                                self.fail_handoff(ctx);
                                self.state = State::Idle;
                                self.consecutive_failures =
                                    self.consecutive_failures.saturating_add(1);
                                self.schedule_recheck(ctx);
                            }
                        }
                    }
                }
            }
            return;
        }
        // Tunnel port traffic or default-handler captures.
        if dgram.dst.port == ports::TUNNEL && dgram.dst.addr == ctx.addr() {
            match TunnelMsg::parse(&dgram.payload) {
                Some(TunnelMsg::Lease {
                    public,
                    lifetime_secs,
                }) => {
                    self.on_lease(ctx, dgram.src, public, lifetime_secs);
                }
                Some(TunnelMsg::Data { inner }) => {
                    ctx.stats().count("cp.tunneled_in", inner.wire_len());
                    ctx.reinject(inner);
                }
                Some(TunnelMsg::Pong { .. }) => {
                    let mut active = false;
                    if let State::Connected {
                        gateway,
                        missed_pings,
                        ..
                    } = &mut self.state
                    {
                        if gateway.addr == dgram.src.addr {
                            *missed_pings = 0;
                            active = true;
                        }
                    }
                    if active {
                        ctx.stats().count("cp.pong", 1);
                    } else if let Some(s) = self
                        .warm
                        .iter_mut()
                        .find(|s| s.gateway.addr == dgram.src.addr)
                    {
                        // A standby answering its keepalive: still warm.
                        s.missed_pings = 0;
                        ctx.stats().count("cp.standby_pong", 1);
                    }
                }
                Some(TunnelMsg::Connect)
                | Some(TunnelMsg::Ping { .. })
                | Some(TunnelMsg::Relay(_))
                | None => {
                    ctx.stats().count("cp.unexpected_msg", dgram.payload.len());
                }
            }
            return;
        }
        // Anything else delivered to us is a default-handler capture of an
        // Internet-bound datagram.
        self.tunnel_out(ctx, dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let gen = token >> 8;
        match token & 0xff {
            TAG_CHECK => match self.state {
                State::Idle => self.probe(ctx),
                State::Probing { .. } => {
                    // SLP lookup never answered (should not happen — the
                    // daemon always replies); retry.
                    self.probe(ctx);
                }
                _ => {}
            },
            TAG_CONNECT_TIMEOUT => {
                if let State::Connecting { gateway, attempts } = self.state {
                    if attempts < 2 {
                        self.connect(ctx, gateway, attempts + 1);
                    } else if let Some(next) = self.next_standby(ctx, gateway.addr) {
                        // This gateway never answered; advance through the
                        // warm-standby ranking before giving up.
                        ctx.span_exit(self.handshake_span, false);
                        self.handshake_span = SpanId::NONE;
                        ctx.stats().count("cp.standby_advance", 1);
                        self.connect(ctx, next, 0);
                    } else {
                        ctx.span_exit(self.handshake_span, false);
                        self.handshake_span = SpanId::NONE;
                        self.fail_handoff(ctx);
                        self.state = State::Idle;
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                    }
                }
            }
            TAG_REFRESH => {
                if gen != self.refresh_gen {
                    return;
                }
                let max_failures = self.cfg.max_refresh_failures;
                if let State::Connected {
                    gateway,
                    lease,
                    refresh_failures,
                    refresh_outstanding,
                    ..
                } = &mut self.state
                {
                    if *refresh_outstanding {
                        *refresh_failures += 1;
                    }
                    if *refresh_failures > max_failures {
                        self.teardown(ctx);
                        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
                        self.schedule_recheck(ctx);
                        return;
                    }
                    *refresh_outstanding = true;
                    let gateway = *gateway;
                    let lease = *lease;
                    ctx.stats().count("cp.tconnect", 1);
                    ctx.send_to(gateway, ports::TUNNEL, TunnelMsg::Connect.to_wire());
                    ctx.set_timer(lease / 2, tok(TAG_REFRESH, self.refresh_gen));
                }
            }
            TAG_KEEPALIVE => {
                if gen != self.ka_gen {
                    return;
                }
                let dead = matches!(
                    &self.state,
                    State::Connected { missed_pings, .. }
                        if *missed_pings >= self.cfg.keepalive_max_missed
                );
                if dead {
                    self.begin_handoff(ctx);
                    return;
                }
                if let State::Connected {
                    gateway,
                    missed_pings,
                    ..
                } = &mut self.state
                {
                    *missed_pings += 1;
                    let gateway = *gateway;
                    self.ping_seq += 1;
                    ctx.stats().count("cp.ping", 1);
                    ctx.send_to(
                        gateway,
                        ports::TUNNEL,
                        TunnelMsg::Ping { seq: self.ping_seq }.to_wire(),
                    );
                    ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_KEEPALIVE, self.ka_gen));
                }
            }
            TAG_STANDBY_SCAN => {
                if gen != self.scan_gen || self.cfg.standby_target == 0 {
                    return;
                }
                if matches!(self.state, State::Connected { .. }) {
                    self.maintain_standbys(ctx);
                }
                // The chain survives Probing/Connecting interludes (a
                // handoff in flight) and dies only by generation.
                ctx.set_timer(
                    self.cfg.standby_refresh,
                    tok(TAG_STANDBY_SCAN, self.scan_gen),
                );
            }
            TAG_STANDBY_KA => {
                // `gen` is the standby id; a missing id means the standby
                // was promoted, dropped or expired — the chain dies here.
                let Some(i) = self.warm.iter().position(|s| s.id == gen) else {
                    return;
                };
                if self.warm[i].missed_pings >= self.cfg.keepalive_max_missed {
                    self.warm.remove(i);
                    ctx.stats().count("cp.standby_dead", 1);
                    ctx.obs().counter_add("cp.standby_dead", 1);
                    // Replenished by the next maintenance scan.
                    return;
                }
                self.warm[i].missed_pings += 1;
                let gw = self.warm[i].gateway;
                self.ping_seq += 1;
                ctx.stats().count("cp.standby_ping", 1);
                ctx.send_to(
                    gw,
                    ports::TUNNEL,
                    TunnelMsg::Ping { seq: self.ping_seq }.to_wire(),
                );
                ctx.set_timer(self.cfg.keepalive_interval, tok(TAG_STANDBY_KA, gen));
            }
            TAG_STANDBY_REFRESH => {
                let Some(s) = self.warm.iter().find(|s| s.id == gen) else {
                    return;
                };
                let (gw, lease) = (s.gateway, s.lease);
                ctx.stats().count("cp.standby_refresh", 1);
                ctx.send_to(gw, ports::TUNNEL, TunnelMsg::Connect.to_wire());
                let refresh_in = lease.max(SimDuration::from_secs(2)) / 2;
                ctx.set_timer(refresh_in, tok(TAG_STANDBY_REFRESH, gen));
            }
            TAG_STANDBY_TIMEOUT => {
                // Only meaningful while the standby never warmed: the
                // TCONNECT went unanswered, so stop waiting for it.
                if let Some(i) = self
                    .warm
                    .iter()
                    .position(|s| s.id == gen && s.public.is_none())
                {
                    self.warm.remove(i);
                    ctx.stats().count("cp.standby_timeout", 1);
                }
            }
            _ => {}
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        if matches!(ev, LocalEvent::NodeRestarted) {
            // A crash does not clear the node's address aliases or
            // default-handler registration, and the gateway side of any
            // pre-crash lease is gone; tear everything down before
            // starting over so the restarted node does not keep NATing
            // through a dead tunnel.
            self.teardown(ctx);
            self.consecutive_failures = 0;
            match self.cfg.wired_public {
                Some(public) => ctx.emit(LocalEvent::Custom {
                    kind: INTERNET_UP_EVENT,
                    data: public.to_string().into_bytes(),
                }),
                None => ctx.set_timer(SimDuration::from_millis(100), TAG_CHECK),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_node_reports_connected_immediately() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig {
            wired_public: Some(Addr::new(82, 130, 64, 1)),
            ..ConnectionProviderConfig::default()
        });
        assert!(cp.is_connected());
    }

    #[test]
    fn fresh_provider_is_disconnected() {
        let cp = ConnectionProvider::new(ConnectionProviderConfig::default());
        assert!(!cp.is_connected());
    }

    fn cold(n: u32, now: SimTime, life: u64) -> ColdContact {
        ColdContact {
            contact: SocketAddr::new(Addr::manet(n), ports::TUNNEL),
            origin: Addr::manet(n),
            expires: now + SimDuration::from_secs(life),
        }
    }

    /// Regression: standby contacts used to be popped in insertion order,
    /// so a failover could chase a gateway that had drifted three hops
    /// away while a one-hop candidate sat later in the list. The ranking
    /// must be recomputed against current routes at failover time.
    #[test]
    fn cold_contacts_rerank_by_current_hops_not_insertion_order() {
        let now = SimTime::from_secs(100);
        // Inserted far-first (the ranking at probe time); by failover
        // time node 2 is nearest and node 3 is unreachable.
        let mut contacts = vec![cold(1, now, 30), cold(2, now, 30), cold(3, now, 30)];
        rank_cold_contacts(&mut contacts, |a| {
            if a == Addr::manet(1) {
                Some(3)
            } else if a == Addr::manet(2) {
                Some(1)
            } else {
                None
            }
        });
        assert_eq!(contacts[0].origin, Addr::manet(2), "nearest first");
        assert_eq!(contacts[1].origin, Addr::manet(1));
        assert_eq!(contacts[2].origin, Addr::manet(3), "unreachable last");
    }

    #[test]
    fn gateway_health_pins_on_first_use_and_kills_key_rotation() {
        let mut h = GatewayHealth::default();
        let gw = Addr::manet(5);
        assert!(h.attest(gw, 0xaaaa), "first use pins");
        assert_eq!(h.pinned(gw), Some(0xaaaa));
        assert!(h.attest(gw, 0xaaaa), "same key re-attests");
        assert!(!h.attest(gw, 0xbbbb), "rotated key refused");
        assert!(h.is_dead(gw), "rotation marks the gateway dead");
        // The pin survives; the original key alone can clear the way.
        h.clear_dead();
        assert!(h.attest(gw, 0xaaaa));
        assert!(!h.is_dead(gw));
    }

    #[test]
    fn gateway_health_death_is_transient_pins_are_not() {
        let mut h = GatewayHealth::default();
        let gw = Addr::manet(7);
        assert!(h.attest(gw, 0x1111));
        h.mark_dead(gw);
        assert!(h.is_dead(gw));
        // Handoff resolved: the restarted-and-reattested gateway is
        // re-leasable under its original identity.
        h.clear_dead();
        assert!(!h.is_dead(gw));
        assert!(h.attest(gw, 0x1111));
        assert_eq!(h.pinned(gw), Some(0x1111));
    }

    #[test]
    fn cold_contacts_tiebreak_on_advert_freshness() {
        let now = SimTime::from_secs(100);
        let mut contacts = vec![cold(1, now, 10), cold(2, now, 50)];
        rank_cold_contacts(&mut contacts, |_| Some(2));
        assert_eq!(
            contacts[0].origin,
            Addr::manet(2),
            "equal hops: fresher advert wins"
        );
    }
}
