//! Node assembly: deploying the full SIPHoc stack on a simulated node.
//!
//! This is the programmatic equivalent of installing the paper's 1.2 MB
//! software bundle on a laptop or iPAQ: one call spawns the five
//! components of Fig. 1 — VoIP application(s), SIPHoc proxy, MANET SLP,
//! Gateway Provider and Connection Provider — wired together exactly as
//! the architecture prescribes, plus the media plane.

use siphoc_simnet::mobility::Mobility;
use siphoc_simnet::net::Addr;
use siphoc_simnet::node::NodeConfig as SimNodeConfig;
use siphoc_simnet::node::NodeId;
use siphoc_simnet::world::World;

use siphoc_internet::dns::DnsDirectory;
use siphoc_media::session::{MediaConfig, MediaProcess, ReportLog};
use siphoc_routing::aodv::{AodvConfig, AodvProcess};
use siphoc_routing::dsdv::{DsdvConfig, DsdvProcess};
use siphoc_routing::olsr::{OlsrConfig, OlsrProcess};
use siphoc_sip::ua::{UaConfig, UaLogHandle, UserAgent};
use siphoc_slp::manet::{
    shared_registry, Dissemination, ManetSlpConfig, ManetSlpHandler, ManetSlpProcess,
    SharedRegistry,
};

use crate::adversary::{Adversary, AdversaryConfig};
use crate::connection::{ConnectionProvider, ConnectionProviderConfig};
use crate::gateway::{GatewayProvider, GatewayProviderConfig};
use crate::proxy::{SiphocProxy, SiphocProxyConfig};
use crate::tunnel::{TunnelServer, TunnelServerConfig};

use siphoc_simnet::ident::KeyPair;

use std::cell::RefCell;
use std::rc::Rc;

/// Which routing protocol (and thus SLP dissemination style) a node runs.
#[derive(Debug, Clone)]
pub enum RoutingProtocol {
    /// AODV with on-demand MANET SLP.
    Aodv(AodvConfig),
    /// OLSR with proactive MANET SLP.
    Olsr(OlsrConfig),
    /// DSDV with proactive MANET SLP (extension beyond the paper's two
    /// shipped handlers, exercising the plugin interface's generality).
    Dsdv(DsdvConfig),
}

impl RoutingProtocol {
    /// AODV with defaults.
    pub fn aodv() -> RoutingProtocol {
        RoutingProtocol::Aodv(AodvConfig::default())
    }

    /// OLSR with defaults.
    pub fn olsr() -> RoutingProtocol {
        RoutingProtocol::Olsr(OlsrConfig::default())
    }

    /// DSDV with defaults.
    pub fn dsdv() -> RoutingProtocol {
        RoutingProtocol::Dsdv(DsdvConfig::default())
    }

    fn dissemination(&self) -> Dissemination {
        match self {
            RoutingProtocol::Aodv(_) => Dissemination::OnDemand,
            RoutingProtocol::Olsr(_) | RoutingProtocol::Dsdv(_) => Dissemination::Proactive,
        }
    }

    fn slp_config(&self) -> ManetSlpConfig {
        match self {
            RoutingProtocol::Aodv(_) => ManetSlpConfig::on_demand(),
            RoutingProtocol::Olsr(_) | RoutingProtocol::Dsdv(_) => ManetSlpConfig::proactive(),
        }
    }
}

/// Specification of one SIPHoc node.
#[derive(Debug)]
pub struct NodeSpec {
    /// Initial position in meters.
    pub position: (f64, f64),
    /// Mobility model; `None` keeps the node static.
    pub mobility: Option<Mobility>,
    /// Routing protocol.
    pub routing: RoutingProtocol,
    /// VoIP applications to run (usually one; may be empty for pure
    /// relays).
    pub users: Vec<UaConfig>,
    /// Public wired-side address; `Some` makes the node a gateway running
    /// the Gateway Provider and tunnel server.
    pub gateway_public: Option<Addr>,
    /// Domain directory shared with the Internet substrate.
    pub dns: DnsDirectory,
    /// Whether to run the media plane.
    pub media: bool,
    /// Whether to run the Connection Provider. Disable only in
    /// experiments that must keep its periodic gateway lookups (and the
    /// binding gossip they carry) off the air.
    pub connection_provider: bool,
    /// Tunnel keepalive override for the Connection Provider:
    /// `(interval, max_missed_pings)`. `None` keeps the defaults; an
    /// interval of `SimDuration::ZERO` disables keepalives (and with them
    /// fast dead-gateway detection and mid-call handoff).
    pub keepalive: Option<(siphoc_simnet::time::SimDuration, u32)>,
    /// Standby-lease override for the Connection Provider:
    /// `(standby_target, refresh_cadence)`. `None` keeps the defaults; a
    /// target of `0` disables multi-homing and restores pure
    /// break-before-make failover.
    pub standby: Option<(u32, siphoc_simnet::time::SimDuration)>,
    /// When set on a gateway, its wired side is NAT'd: lease addresses
    /// are allocated through this TURN-style relay instead of being
    /// claimed locally.
    pub gateway_relay: Option<siphoc_simnet::net::SocketAddr>,
    /// Turns on the PKI-less defense layer: the SLP daemon signs local
    /// adverts with the node key and verifies + pins at cache insert,
    /// the proxy challenges REGISTERs, and user agents answer with
    /// self-certifying credentials. Off by default — insecure nodes take
    /// byte-identical code paths to the pre-security stack.
    pub secure: bool,
    /// Deploys a dormant [`Adversary`] on this node; the fault plan's
    /// `Compromise` action activates it. Only meaningful on plain MANET
    /// nodes (a rogue gateway binds the tunnel port a real gateway's
    /// tunnel server already owns).
    pub adversary: Option<AdversaryConfig>,
}

impl NodeSpec {
    /// A plain MANET node at `(x, y)` running AODV, no users.
    pub fn relay(x: f64, y: f64) -> NodeSpec {
        NodeSpec {
            position: (x, y),
            mobility: None,
            routing: RoutingProtocol::aodv(),
            users: Vec::new(),
            gateway_public: None,
            dns: DnsDirectory::new(),
            media: false,
            connection_provider: true,
            keepalive: None,
            standby: None,
            gateway_relay: None,
            secure: false,
            adversary: None,
        }
    }

    /// Enables the defense layer (signed + pinned SLP, REGISTER auth).
    pub fn with_security(mut self) -> NodeSpec {
        self.secure = true;
        self
    }

    /// Arms this node with a dormant adversary (activated by the fault
    /// plan's `Compromise` action). In secure worlds the attacker signs
    /// its forgeries with its own node key — the strongest attack the
    /// Dolev–Yao model allows.
    pub fn with_adversary(mut self, cfg: AdversaryConfig) -> NodeSpec {
        self.adversary = Some(cfg);
        self
    }

    /// Overrides the Connection Provider's tunnel keepalive behavior:
    /// ping every `interval`, declare the gateway dead after `max_missed`
    /// consecutive unanswered pings. `SimDuration::ZERO` disables
    /// keepalives entirely.
    pub fn with_keepalive(
        mut self,
        interval: siphoc_simnet::time::SimDuration,
        max_missed: u32,
    ) -> NodeSpec {
        self.keepalive = Some((interval, max_missed));
        self
    }

    /// Overrides the Connection Provider's multi-homing: hold warm leases
    /// on up to `target` standby gateways, refreshing the pool every
    /// `refresh`. `target = 0` disables standbys (break-before-make).
    pub fn with_standby(
        mut self,
        target: u32,
        refresh: siphoc_simnet::time::SimDuration,
    ) -> NodeSpec {
        self.standby = Some((target, refresh));
        self
    }

    /// Makes the node a NAT'd gateway: it advertises and serves tunnel
    /// leases as usual, but the lease addresses are allocated on (and all
    /// Internet traffic hairpins through) the TURN-style relay at
    /// `relay`.
    pub fn with_nat_gateway(
        mut self,
        public: Addr,
        relay: siphoc_simnet::net::SocketAddr,
    ) -> NodeSpec {
        self.gateway_public = Some(public);
        self.gateway_relay = Some(relay);
        self
    }

    /// Disables the Connection Provider (experiment isolation).
    pub fn without_connection_provider(mut self) -> NodeSpec {
        self.connection_provider = false;
        self
    }

    /// Adds a VoIP user (builder style).
    pub fn with_user(mut self, ua: UaConfig) -> NodeSpec {
        self.users.push(ua);
        self.media = true;
        self
    }

    /// Makes the node a gateway with the given public address.
    pub fn with_gateway(mut self, public: Addr) -> NodeSpec {
        self.gateway_public = Some(public);
        self
    }

    /// Sets the routing protocol.
    pub fn with_routing(mut self, routing: RoutingProtocol) -> NodeSpec {
        self.routing = routing;
        self
    }

    /// Sets the DNS directory.
    pub fn with_dns(mut self, dns: DnsDirectory) -> NodeSpec {
        self.dns = dns;
        self
    }

    /// Sets the mobility model.
    pub fn with_mobility(mut self, mobility: Mobility) -> NodeSpec {
        self.mobility = Some(mobility);
        self
    }
}

/// Handles to everything observable on a deployed SIPHoc node.
#[derive(Debug)]
pub struct SiphocNode {
    /// Simulator node id.
    pub id: NodeId,
    /// MANET address.
    pub addr: Addr,
    /// The node's MANET SLP registry (Fig. 4 dumps, assertions).
    pub registry: SharedRegistry,
    /// One event log per deployed user agent, in `users` order.
    pub ua_logs: Vec<UaLogHandle>,
    /// Media session reports, when the media plane runs.
    pub media_reports: Option<ReportLog>,
}

/// Deploys a SIPHoc node into the world (paper Fig. 1 composition).
pub fn deploy(world: &mut World, spec: NodeSpec) -> SiphocNode {
    let (x, y) = spec.position;
    let mut cfg = match spec.gateway_public {
        Some(public) => SimNodeConfig::gateway(x, y).with_public_alias(public),
        None => SimNodeConfig::manet(x, y),
    };
    if let Some(m) = spec.mobility {
        cfg = cfg.with_mobility(m);
    }
    let id = world.add_node(cfg);
    let addr = world.node(id).addr();
    // The node's self-certifying key: deterministic per address, so a
    // secure deployment needs no key-distribution step (and no RNG draw).
    let node_key = spec.secure.then(|| KeyPair::for_addr(addr.0));

    // Routing + MANET SLP handler (the libipq capture analogue).
    let registry = shared_registry();
    if spec.secure {
        registry.borrow_mut().set_require_signed(true);
    }
    let handler = Rc::new(RefCell::new(ManetSlpHandler::new(
        registry.clone(),
        spec.routing.dissemination(),
    )));
    match &spec.routing {
        RoutingProtocol::Aodv(c) => {
            world.spawn(
                id,
                Box::new(AodvProcess::new(c.clone()).with_handler(handler)),
            );
        }
        RoutingProtocol::Olsr(c) => {
            world.spawn(
                id,
                Box::new(OlsrProcess::new(c.clone()).with_handler(handler)),
            );
        }
        RoutingProtocol::Dsdv(c) => {
            world.spawn(
                id,
                Box::new(DsdvProcess::new(c.clone()).with_handler(handler)),
            );
        }
    }

    // MANET SLP daemon.
    let mut slp = ManetSlpProcess::new(spec.routing.slp_config(), registry.clone());
    if let Some(kp) = node_key {
        slp = slp.with_identity(kp);
    }
    world.spawn(id, Box::new(slp));

    // SIPHoc proxy.
    let proxy_cfg = SiphocProxyConfig {
        dns: spec.dns.clone(),
        auth: spec.secure,
        ..SiphocProxyConfig::default()
    };
    world.spawn(id, Box::new(SiphocProxy::new(proxy_cfg)));

    // Connection Provider (every node), Gateway Provider + tunnel server
    // (gateways only).
    if spec.connection_provider {
        let mut cp_cfg = ConnectionProviderConfig {
            wired_public: spec.gateway_public,
            ..ConnectionProviderConfig::default()
        };
        if let Some((interval, max_missed)) = spec.keepalive {
            cp_cfg.keepalive_interval = interval;
            cp_cfg.keepalive_max_missed = max_missed;
        }
        if let Some((target, refresh)) = spec.standby {
            cp_cfg.standby_target = target;
            cp_cfg.standby_refresh = refresh;
        }
        world.spawn(
            id,
            Box::new(ConnectionProvider::new(cp_cfg).with_registry(registry.clone())),
        );
    }
    if let Some(public) = spec.gateway_public {
        // Each gateway leases from its own public block (base + 100), so
        // multiple gateways never hand out colliding addresses.
        let tunnel_cfg = TunnelServerConfig {
            pool_base: Addr(public.0 + 100),
            relay: spec.gateway_relay,
            wired_public: Some(public),
            ..TunnelServerConfig::default()
        };
        world.spawn(id, Box::new(TunnelServer::new(tunnel_cfg)));
        world.spawn(
            id,
            Box::new(GatewayProvider::new(GatewayProviderConfig::default())),
        );
    }

    // Media plane.
    let media_reports = if spec.media {
        let rtp_port = spec.users.first().map(|u| u.rtp_port).unwrap_or(8000);
        let (media, reports) = MediaProcess::new(MediaConfig::pcmu(rtp_port));
        world.spawn(id, Box::new(media));
        Some(reports)
    } else {
        None
    };

    // Adversary (dormant until the fault plan compromises the node).
    if let Some(mut adv_cfg) = spec.adversary {
        if spec.secure && adv_cfg.identity.is_none() {
            adv_cfg.identity = node_key;
        }
        world.spawn(
            id,
            Box::new(Adversary::new(adv_cfg).with_registry(registry.clone())),
        );
    }

    // VoIP applications. Their "localhost" outbound proxy is this node's
    // SIPHoc proxy.
    let mut ua_logs = Vec::new();
    for mut ua_cfg in spec.users {
        if spec.secure && ua_cfg.identity.is_none() {
            // Per-user key so the AOR pin names the user, not the box.
            ua_cfg.identity = Some(KeyPair::for_name(&ua_cfg.aor.to_string()));
        }
        let (ua, log) = UserAgent::new(ua_cfg);
        world.spawn(id, Box::new(ua));
        ua_logs.push(log);
    }

    SiphocNode {
        id,
        addr,
        registry,
        ua_logs,
        media_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::prelude::*;

    #[test]
    fn deploy_spawns_expected_processes() {
        let mut w = World::new(WorldConfig::new(71).with_radio(RadioConfig::ideal()));
        let spec = NodeSpec::relay(0.0, 0.0);
        let n = deploy(&mut w, spec);
        let names = w.node(n.id).process_names().to_vec();
        assert!(names.contains(&"aodv"));
        assert!(names.contains(&"manet-slp"));
        assert!(names.contains(&"siphoc-proxy"));
        assert!(names.contains(&"connection-provider"));
        assert!(!names.contains(&"tunnel-server"));
    }

    #[test]
    fn secure_deploy_arms_defenses_and_adversary_stays_dormant() {
        let mut w = World::new(WorldConfig::new(73).with_radio(RadioConfig::ideal()));
        let spec = NodeSpec::relay(0.0, 0.0)
            .with_security()
            .with_adversary(AdversaryConfig::default());
        let n = deploy(&mut w, spec);
        assert!(n.registry.borrow().require_signed());
        let names = w.node(n.id).process_names().to_vec();
        assert!(names.contains(&"adversary"));
        // Insecure deploys keep the legacy policy.
        let plain = deploy(&mut w, NodeSpec::relay(10.0, 0.0));
        assert!(!plain.registry.borrow().require_signed());
    }

    #[test]
    fn gateway_deploy_adds_tunnel_and_provider() {
        let mut w = World::new(WorldConfig::new(72).with_radio(RadioConfig::ideal()));
        let spec = NodeSpec::relay(0.0, 0.0).with_gateway(Addr::new(82, 130, 64, 1));
        let n = deploy(&mut w, spec);
        let names = w.node(n.id).process_names().to_vec();
        assert!(names.contains(&"tunnel-server"));
        assert!(names.contains(&"gateway-provider"));
        assert!(w.node(n.id).has_wired());
        assert!(w
            .node(n.id)
            .local_addrs()
            .contains(&Addr::new(82, 130, 64, 1)));
    }
}
