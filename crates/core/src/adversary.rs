//! In-simulation adversaries: the attack half of the security experiments.
//!
//! A node carrying this process behaves honestly until the fault plan
//! delivers a [`COMPROMISE_EVENT`], after which it mounts one of the
//! [`MaliciousKind`] attacks against the SIPHoc control plane:
//!
//! - **Rogue gateway** — impersonates every `service:gateway` advert it
//!   has cached, rewriting the contact to itself with a far-future
//!   sequence number, and runs a fake tunnel server that grants bogus
//!   leases, answers keepalive pings (so victims believe the tunnel is
//!   healthy) and silently drops every tunneled datagram.
//! - **AOR hijack** — impersonates cached `service:sip` bindings the same
//!   way, so INVITEs for the victim AOR are routed to the attacker, where
//!   they are counted and blackholed.
//! - **Forged adverts** — both of the above at once: a cache-poisoning
//!   flood over every advert the attacker has seen.
//!
//! ## Dolev–Yao discipline
//!
//! The adversary fabricates, replays and drops messages, but it only ever
//! signs with its *own* key ([`AdversaryConfig::identity`]): nothing here
//! calls [`siphoc_simnet::ident::unmix64`] on a victim public key, which
//! is the modeled-unforgeability invariant documented in
//! `siphoc_simnet::ident` and DESIGN.md. Forged entries therefore carry
//! either no signature or a valid signature under the attacker's key —
//! exactly what a real network attacker without the victim's key could
//! produce — and the defense (verify + first-use pins at cache insert)
//! rejects them on both counts.
//!
//! Poisoning is injected through the attacker's **own** shared SLP
//! registry via `register_local`: the compromised node skips its own
//! verification (it is the attacker) and its unmodified SLP daemon then
//! disseminates the forgeries exactly like honest adverts, which is what
//! makes the attack realistic — the wire protocol is unchanged.

use siphoc_simnet::fault::{MaliciousKind, COMPROMISE_EVENT};
use siphoc_simnet::ident::KeyPair;
use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::SimDuration;

use siphoc_sip::msg::{Method, SipMessage};
use siphoc_slp::manet::SharedRegistry;
use siphoc_slp::service::{service_types, ServiceEntry};

use crate::tunnel::TunnelMsg;

use std::collections::{BTreeMap, BTreeSet};

/// Port the adversary parks hijacked SIP traffic on. Distinct from the
/// real proxy port so the attacker node's own (honest) proxy keeps
/// working — the forged adverts point here instead.
pub const HIJACK_PORT: u16 = 5999;

const TAG_POISON: u64 = 1;

/// Added to the impersonated entry's sequence number so the victim's
/// steadily-incrementing re-adverts never win the freshness race back.
const SEQ_BOOST: u64 = 1 << 40;

/// Adversary configuration.
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Re-poison cadence: how often forged entries are re-registered (and
    /// newly-cached honest adverts get impersonated too).
    pub repoison: SimDuration,
    /// The attacker's own keypair. Set in defense-on worlds so forgeries
    /// are validly signed *by the attacker* — the strongest attack the
    /// Dolev–Yao model allows. `None` sends unsigned forgeries.
    pub identity: Option<KeyPair>,
    /// Base of the bogus public-address pool handed out by the fake
    /// tunnel server (TEST-NET-3 by default; never routable).
    pub bogus_public: Addr,
}

impl Default for AdversaryConfig {
    fn default() -> AdversaryConfig {
        AdversaryConfig {
            repoison: SimDuration::from_secs(5),
            identity: None,
            bogus_public: Addr::new(203, 0, 113, 1),
        }
    }
}

/// The adversary process. Dormant until compromised. Gateway-targeting
/// kinds bind the tunnel port when they go rogue, which a real gateway's
/// tunnel server — and the Connection Provider's tunnel *client* on any
/// attached node — already owns; deploy those on plain MANET nodes
/// built `without_connection_provider` (the attacker shuts its own
/// client down before impersonating a server). SIP-targeting kinds use
/// a dedicated port and coexist with the full stack.
#[derive(Debug)]
pub struct Adversary {
    cfg: AdversaryConfig,
    registry: Option<SharedRegistry>,
    active: Option<MaliciousKind>,
    /// Forged entries by `(service_type, key, origin)`, re-registered
    /// every poison tick so their lifetimes never lapse.
    forged: BTreeMap<(String, String, Addr), ServiceEntry>,
    /// Call-IDs of INVITEs captured on the hijack port.
    hijacked: BTreeSet<String>,
    /// Fake leases handed out, keyed by client address (stable grants).
    leases: BTreeMap<Addr, Addr>,
}

impl Adversary {
    /// Creates a dormant adversary.
    pub fn new(cfg: AdversaryConfig) -> Adversary {
        Adversary {
            cfg,
            registry: None,
            active: None,
            forged: BTreeMap::new(),
            hijacked: BTreeSet::new(),
            leases: BTreeMap::new(),
        }
    }

    /// Attaches the node's shared SLP registry — the poisoning vector.
    pub fn with_registry(mut self, registry: SharedRegistry) -> Adversary {
        self.registry = Some(registry);
        self
    }

    /// The attack currently mounted, if any.
    pub fn active(&self) -> Option<MaliciousKind> {
        self.active
    }

    fn targets_gateways(kind: MaliciousKind) -> bool {
        matches!(
            kind,
            MaliciousKind::RogueGateway | MaliciousKind::ForgedAdverts
        )
    }

    fn targets_sip(kind: MaliciousKind) -> bool {
        matches!(
            kind,
            MaliciousKind::AorHijack | MaliciousKind::ForgedAdverts
        )
    }

    /// Impersonates every honest advert in the cache that matches the
    /// active attack, and refreshes previously forged entries.
    fn poison(&mut self, ctx: &mut Ctx<'_>) {
        let Some(kind) = self.active else { return };
        let Some(registry) = self.registry.clone() else {
            return;
        };
        let now = ctx.now();
        let own = ctx.addr();
        let mut reg = registry.borrow_mut();
        let mut fresh = 0usize;
        for e in reg.all_entries(now) {
            if e.contact.addr == own || e.origin == own {
                continue;
            }
            let port = if e.service_type == service_types::GATEWAY {
                if !Adversary::targets_gateways(kind) {
                    continue;
                }
                ports::TUNNEL
            } else if e.service_type == service_types::SIP {
                if !Adversary::targets_sip(kind) {
                    continue;
                }
                HIJACK_PORT
            } else {
                continue;
            };
            let triple = (e.service_type.clone(), e.key.clone(), e.origin);
            if self.forged.contains_key(&triple) {
                continue;
            }
            let entry = ServiceEntry {
                service_type: e.service_type.clone(),
                key: e.key.clone(),
                contact: SocketAddr::new(own, port),
                origin: e.origin,
                seq: e.seq + SEQ_BOOST,
                lifetime_secs: e.lifetime_secs.max(120),
                auth: None,
            };
            let entry = match &self.cfg.identity {
                Some(kp) => entry.signed(kp),
                None => entry,
            };
            self.forged.insert(triple, entry);
            fresh += 1;
        }
        for entry in self.forged.values() {
            reg.register_local(entry.clone(), now);
        }
        drop(reg);
        for _ in 0..fresh {
            ctx.stats().count("rogue.forged", 1);
        }
    }

    fn on_tunnel_port(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if !self.active.is_some_and(Adversary::targets_gateways) {
            return;
        }
        let Some(msg) = TunnelMsg::parse(&dgram.payload) else {
            return;
        };
        let own = ctx.addr();
        match msg {
            TunnelMsg::Connect => {
                let next = self.cfg.bogus_public.0 + self.leases.len() as u32;
                let public = *self
                    .leases
                    .entry(dgram.src.addr)
                    .or_insert_with(|| Addr(next));
                ctx.stats().count("rogue.lease", 1);
                let reply = TunnelMsg::Lease {
                    public,
                    lifetime_secs: 60,
                };
                ctx.send(Datagram::new(
                    SocketAddr::new(own, ports::TUNNEL),
                    dgram.src,
                    reply.to_wire(),
                ));
            }
            TunnelMsg::Ping { seq } => {
                // Answer keepalives so captured clients stay captured.
                ctx.stats().count("rogue.pong", 1);
                ctx.send(Datagram::new(
                    SocketAddr::new(own, ports::TUNNEL),
                    dgram.src,
                    TunnelMsg::Pong { seq }.to_wire(),
                ));
            }
            TunnelMsg::Data { .. } => {
                // The blackhole: tunneled traffic goes nowhere.
                ctx.stats().count("rogue.blackholed", 1);
            }
            TunnelMsg::Lease { .. } | TunnelMsg::Pong { .. } | TunnelMsg::Relay(_) => {}
        }
    }

    fn on_hijack_port(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if !self.active.is_some_and(Adversary::targets_sip) {
            return;
        }
        let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
            return;
        };
        ctx.stats().count("rogue.sip_blackholed", 1);
        let SipMessage::Request { method, .. } = &msg else {
            return;
        };
        if *method != Method::Invite {
            return;
        }
        let Some(call_id) = msg.call_id() else { return };
        if self.hijacked.insert(call_id.to_owned()) {
            // One count per call: retransmissions of a captured INVITE
            // are the transaction layer talking to the void.
            ctx.stats().count("rogue.hijacked_calls", 1);
        }
    }
}

impl Process for Adversary {
    fn name(&self) -> &'static str {
        "adversary"
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        let LocalEvent::Custom { kind, data } = ev else {
            return;
        };
        if *kind != COMPROMISE_EVENT {
            return;
        }
        let Some(mk) = data.first().copied().and_then(MaliciousKind::from_byte) else {
            return;
        };
        self.active = Some(mk);
        ctx.stats().count("rogue.active", 1);
        // Bind lazily: a dormant adversary leaves zero footprint, so runs
        // that never fire the compromise stay byte-identical.
        if Adversary::targets_gateways(mk) {
            ctx.bind(ports::TUNNEL);
        }
        if Adversary::targets_sip(mk) {
            ctx.bind(HIJACK_PORT);
        }
        self.poison(ctx);
        ctx.set_timer(self.cfg.repoison, TAG_POISON);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TAG_POISON && self.active.is_some() {
            self.poison(ctx);
            ctx.set_timer(self.cfg.repoison, TAG_POISON);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        match dgram.dst.port {
            ports::TUNNEL => self.on_tunnel_port(ctx, dgram),
            HIJACK_PORT => self.on_hijack_port(ctx, dgram),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siphoc_simnet::node::NodeId;
    use siphoc_simnet::process::Effect;
    use siphoc_simnet::rng::SimRng;
    use siphoc_simnet::route::RoutingTable;
    use siphoc_simnet::stats::NodeStats;
    use siphoc_simnet::time::SimTime;
    use siphoc_slp::manet::shared_registry;

    fn harness(
        f: impl FnOnce(&mut Ctx<'_>, &mut Adversary),
        adv: &mut Adversary,
    ) -> (NodeStats, Vec<Effect>) {
        let mut rng = SimRng::from_seed_and_stream(7, 0);
        let mut routes = RoutingTable::new();
        let mut stats = NodeStats::default();
        let mut obs = siphoc_simnet::obs::NodeObs::default();
        let mut effects = Vec::new();
        let mut ctx = Ctx::for_test(
            SimTime::ZERO,
            NodeId(1),
            Addr::manet(9),
            &mut rng,
            &mut routes,
            &mut stats,
            &mut obs,
            &mut effects,
        );
        f(&mut ctx, adv);
        (stats, effects)
    }

    fn compromise(kind: MaliciousKind) -> LocalEvent {
        LocalEvent::Custom {
            kind: COMPROMISE_EVENT,
            data: vec![kind.to_byte()],
        }
    }

    #[test]
    fn dormant_until_compromised() {
        let reg = shared_registry();
        let mut adv = Adversary::new(AdversaryConfig::default()).with_registry(reg.clone());
        let victim = ServiceEntry::gateway(
            SocketAddr::new(Addr::manet(2), ports::TUNNEL),
            Addr::manet(2),
            1,
            600,
        );
        reg.borrow_mut().absorb(victim, SimTime::ZERO);
        let (_, effects) = harness(|ctx, adv| adv.on_timer(ctx, TAG_POISON), &mut adv);
        assert!(adv.active().is_none());
        assert!(effects.is_empty());
        assert_eq!(reg.borrow().all_entries(SimTime::ZERO).len(), 1);
    }

    #[test]
    fn rogue_gateway_impersonates_cached_gateway_adverts() {
        let reg = shared_registry();
        let gw = Addr::manet(2);
        let victim = ServiceEntry::gateway(SocketAddr::new(gw, ports::TUNNEL), gw, 3, 600);
        reg.borrow_mut().absorb(victim, SimTime::ZERO);
        let mut adv = Adversary::new(AdversaryConfig::default()).with_registry(reg.clone());
        let (stats, _) = harness(
            |ctx, adv| adv.on_local_event(ctx, &compromise(MaliciousKind::RogueGateway)),
            &mut adv,
        );
        assert_eq!(stats.get("rogue.forged").packets, 1);
        let entries = reg.borrow().all_entries(SimTime::ZERO);
        let forged = entries
            .iter()
            .find(|e| e.service_type == service_types::GATEWAY)
            .expect("gateway entry");
        // Same origin (impersonation), attacker contact, boosted seq.
        assert_eq!(forged.origin, gw);
        assert_eq!(
            forged.contact,
            SocketAddr::new(Addr::manet(9), ports::TUNNEL)
        );
        assert!(forged.seq > SEQ_BOOST);
    }

    #[test]
    fn rogue_tunnel_grants_bogus_lease_and_blackholes_data() {
        let mut adv = Adversary::new(AdversaryConfig::default());
        let client = SocketAddr::new(Addr::manet(4), 9000);
        let me = SocketAddr::new(Addr::manet(9), ports::TUNNEL);
        let (stats, effects) = harness(
            |ctx, adv| {
                adv.on_local_event(ctx, &compromise(MaliciousKind::RogueGateway));
                let connect = Datagram::new(client, me, TunnelMsg::Connect.to_wire());
                adv.on_datagram(ctx, &connect);
                let inner = Datagram::new(
                    SocketAddr::new(Addr::manet(4), 5060),
                    SocketAddr::new(Addr::new(8, 8, 8, 8), 5060),
                    b"x".to_vec(),
                );
                let data = Datagram::new(client, me, TunnelMsg::Data { inner }.to_wire());
                adv.on_datagram(ctx, &data);
            },
            &mut adv,
        );
        assert_eq!(stats.get("rogue.lease").packets, 1);
        assert_eq!(stats.get("rogue.blackholed").packets, 1);
        let lease_sent = effects.iter().any(|e| match e {
            Effect::Send(d) => {
                TunnelMsg::parse(&d.payload).is_some_and(|m| matches!(m, TunnelMsg::Lease { .. }))
            }
            _ => false,
        });
        assert!(lease_sent, "fake lease reply expected");
    }

    #[test]
    fn hijacked_invites_counted_once_per_call() {
        let mut adv = Adversary::new(AdversaryConfig::default());
        let invite = concat!(
            "INVITE sip:bob@manet.example SIP/2.0\r\n",
            "Via: SIP/2.0/UDP 10.0.0.4:5060\r\n",
            "From: <sip:alice@manet.example>;tag=1\r\n",
            "To: <sip:bob@manet.example>\r\n",
            "Call-ID: call-h1\r\n",
            "CSeq: 1 INVITE\r\n",
            "\r\n"
        );
        let me = SocketAddr::new(Addr::manet(9), HIJACK_PORT);
        let from = SocketAddr::new(Addr::manet(4), 5060);
        let (stats, effects) = harness(
            |ctx, adv| {
                adv.on_local_event(ctx, &compromise(MaliciousKind::AorHijack));
                let d = Datagram::new(from, me, invite.as_bytes().to_vec());
                adv.on_datagram(ctx, &d);
                adv.on_datagram(ctx, &d); // retransmission
            },
            &mut adv,
        );
        assert_eq!(stats.get("rogue.hijacked_calls").packets, 1);
        assert_eq!(stats.get("rogue.sip_blackholed").packets, 2);
        // Signaling blackhole: no reply of any kind.
        assert!(!effects.iter().any(|e| matches!(e, Effect::Send(_))));
    }

    #[test]
    fn forged_entries_are_attacker_signed_when_identity_set() {
        let reg = shared_registry();
        let gw = Addr::manet(2);
        let honest = KeyPair::for_addr(gw.0);
        let victim =
            ServiceEntry::gateway(SocketAddr::new(gw, ports::TUNNEL), gw, 3, 600).signed(&honest);
        reg.borrow_mut().absorb(victim, SimTime::ZERO);
        let attacker = KeyPair::for_addr(Addr::manet(9).0);
        let cfg = AdversaryConfig {
            identity: Some(attacker),
            ..AdversaryConfig::default()
        };
        let mut adv = Adversary::new(cfg).with_registry(reg.clone());
        harness(
            |ctx, adv| adv.on_local_event(ctx, &compromise(MaliciousKind::ForgedAdverts)),
            &mut adv,
        );
        let entries = reg.borrow().all_entries(SimTime::ZERO);
        let forged = entries
            .iter()
            .find(|e| e.contact.addr == Addr::manet(9))
            .expect("forged entry");
        // Valid signature — under the attacker's key, not the victim's.
        assert!(forged.auth_valid());
        assert_eq!(forged.advertiser_identity(), Some(attacker.identity()),);
        assert_ne!(forged.advertiser_identity(), Some(honest.identity()));
    }
}
