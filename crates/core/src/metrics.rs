//! Footprint accounting and experiment aggregation helpers.
//!
//! Paper §4 reports a 1.2 MB system footprint ("four services and about
//! 20 shared libraries") fitting the iPAQ's 32 MB flash next to a 25 MB
//! OS. A simulator cannot re-measure ARM binary sizes; instead this module
//! accounts the footprint dimension the middleware actually *controls*:
//! the per-component runtime state each node carries, which is the scaling
//! quantity the deployment section cares about (F6 in `DESIGN.md`). The
//! static-code figures from the paper are restated alongside in
//! `EXPERIMENTS.md`.

use std::collections::BTreeMap;

use siphoc_simnet::node::NodeId;
use siphoc_simnet::stats::{Counter, NodeStats};
use siphoc_simnet::time::SimTime;
use siphoc_simnet::world::World;

use siphoc_slp::manet::SharedRegistry;

/// Estimated in-memory size of one node's middleware state, by component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FootprintReport {
    /// Bytes attributed to the routing table.
    pub routing_bytes: usize,
    /// Number of routing entries.
    pub routing_entries: usize,
    /// Bytes attributed to the MANET SLP registry.
    pub slp_bytes: usize,
    /// Number of SLP entries.
    pub slp_entries: usize,
}

/// Approximate in-memory cost of one forwarding-table entry: destination,
/// next hop, hops, expiry, seq plus map overhead.
pub const ROUTE_ENTRY_BYTES: usize = 48;

/// Approximate in-memory cost of one SLP entry: strings, contact, origin,
/// seq, expiry plus map overhead.
pub const SLP_ENTRY_BYTES: usize = 96;

/// Computes the footprint of one node.
pub fn node_footprint(
    world: &World,
    node: NodeId,
    registry: Option<&SharedRegistry>,
    now: SimTime,
) -> FootprintReport {
    let routing_entries = world.node(node).routes().len();
    let slp_entries = registry.map(|r| r.borrow().len()).unwrap_or(0);
    let _ = now;
    FootprintReport {
        routing_bytes: routing_entries * ROUTE_ENTRY_BYTES,
        routing_entries,
        slp_bytes: slp_entries * SLP_ENTRY_BYTES,
        slp_entries,
    }
}

/// A named series of `(x, y)` measurements — the exchange format between
/// experiment binaries and `EXPERIMENTS.md`.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Series label (e.g. `"aodv-cold"`).
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str) -> Series {
        Series {
            label: label.to_owned(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Renders as aligned text rows.
    pub fn render(&self, x_name: &str, y_name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# {}  ({x_name} -> {y_name})", self.label);
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x:>10.3}  {y:>12.4}");
        }
        out
    }
}

/// Aggregates a stats counter across all nodes of a world.
pub fn total_counter(world: &World, name: &str) -> Counter {
    let mut total = Counter::default();
    for id in world.node_ids() {
        total.merge(world.node(id).stats().get(name));
    }
    total
}

/// Aggregates counters by prefix across all nodes.
pub fn total_prefix(world: &World, prefix: &str) -> Counter {
    let mut total = Counter::default();
    for id in world.node_ids() {
        total.merge(world.node(id).stats().sum_prefix(prefix));
    }
    total
}

/// Collects every counter across all nodes into one map (for overhead
/// breakdown tables).
pub fn collect_all(world: &World) -> BTreeMap<&'static str, Counter> {
    let mut merged = NodeStats::default();
    for id in world.node_ids() {
        merged.merge(world.node(id).stats());
    }
    merged.iter().collect()
}

/// Mean of a slice, `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Percentile via nearest-rank (p in 0..=100), `None` when empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in measurements"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    Some(sorted[rank.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_rows() {
        let mut s = Series::new("aodv-cold");
        s.push(1.0, 42.5);
        s.push(2.0, 55.25);
        let text = s.render("hops", "ms");
        assert!(text.contains("aodv-cold"));
        assert!(text.contains("42.5"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn mean_and_percentile() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&v), Some(3.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn footprint_scales_with_entries() {
        let r = FootprintReport {
            routing_bytes: 10 * ROUTE_ENTRY_BYTES,
            routing_entries: 10,
            slp_bytes: 3 * SLP_ENTRY_BYTES,
            slp_entries: 3,
        };
        assert_eq!(r.routing_bytes, 480);
        assert_eq!(r.slp_bytes, 288);
    }
}
