//! The SIPHoc proxy.
//!
//! "A \[proxy\] with a standard SIP interface but implementing
//! MANET-specific functionality. Each \[proxy\] serves as an outbound SIP
//! proxy for the local VoIP application" (paper §2). Concretely, per the
//! paper's Fig. 3 walkthrough:
//!
//! 1. the local VoIP application registers with this proxy (step 1);
//! 2. the proxy advertises itself through MANET SLP as the responsible
//!    contact for the user (step 2, Fig. 4);
//! 3. call setup requests from the application are routed through the
//!    proxy (step 5), which consults MANET SLP for the callee (step 6);
//! 4. the resolved request is forwarded to the responsible remote proxy
//!    (step 7), which hands it to its local application (step 8).
//!
//! For Internet transparency (§3.2) the proxy additionally: forwards
//! registrations to the user's real provider whenever the Connection
//! Provider reports connectivity — with the Contact rewritten to the
//! leased public address — and falls back to the provider for callees
//! MANET SLP cannot resolve. SDP bodies crossing into the Internet get
//! their connection address rewritten to the public lease (the ALG step a
//! real L2-tunnel deployment gets for free from DHCP-assigned interface
//! addresses).
//!
//! Forwarding is stateless (RFC 3261 §16.11); reliability stays with the
//! user agents' transaction layers.

use std::collections::BTreeMap;

use siphoc_simnet::net::{ports, Addr, Datagram, SocketAddr};
use siphoc_simnet::obs::{SpanCat, SpanId};
use siphoc_simnet::process::{Ctx, LocalEvent, Process};
use siphoc_simnet::time::{SimDuration, SimTime};

use siphoc_internet::dns::DnsDirectory;
use siphoc_sip::auth::{self, RegisterAuth, RegisterAuthOutcome};
use siphoc_sip::msg::{Method, SipMessage, StatusCode};
use siphoc_sip::proxy::{
    prepare_forward_request, prepare_forward_response, response_target, stateless_response,
    ForwardDecision,
};
use siphoc_sip::registrar::BindingTable;
use siphoc_sip::sdp::Sdp;
use siphoc_sip::uri::{Aor, SipUri};
use siphoc_slp::msg::SlpMsg;
use siphoc_slp::service::service_types;

use crate::connection::{INTERNET_DOWN_EVENT, INTERNET_UP_EVENT};

/// Port the proxy uses for its SLP client exchanges.
const PROXY_SLP_PORT: u16 = 4270;

/// SIPHoc proxy configuration.
#[derive(Debug, Clone)]
pub struct SiphocProxyConfig {
    /// Domain directory for reaching Internet providers.
    pub dns: DnsDirectory,
    /// Default lifetime for local UA registrations.
    pub default_expiry: SimDuration,
    /// Lifetime of the proxy's MANET SLP advertisements.
    pub slp_lifetime: SimDuration,
    /// Challenge local REGISTERs with self-certifying identity auth
    /// (401/403, trust-on-first-use AOR pinning). Off by default: the
    /// legacy wire exchange stays byte-identical.
    pub auth: bool,
}

impl Default for SiphocProxyConfig {
    fn default() -> SiphocProxyConfig {
        SiphocProxyConfig {
            dns: DnsDirectory::new(),
            default_expiry: SimDuration::from_secs(3600),
            slp_lifetime: SimDuration::from_secs(120),
            auth: false,
        }
    }
}

#[derive(Debug)]
struct Parked {
    msg: SipMessage,
    span: SpanId,
}

const TAG_READVERT: u64 = 1;

/// The SIPHoc proxy process.
pub struct SiphocProxy {
    cfg: SiphocProxyConfig,
    local: BindingTable,
    /// Last REGISTER per AOR, replayed to the provider on connectivity.
    register_cache: BTreeMap<String, SipMessage>,
    pending: BTreeMap<u32, Parked>,
    next_xid: u32,
    internet: Option<Addr>,
    /// REGISTER challenge/pin state, lazily created on the first local
    /// REGISTER when `cfg.auth` is on (the nonce salt needs the node
    /// address, unavailable at construction).
    reg_auth: Option<RegisterAuth>,
}

impl std::fmt::Debug for SiphocProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiphocProxy")
            .field("local_bindings", &self.local.len())
            .field("pending_lookups", &self.pending.len())
            .field("internet", &self.internet)
            .finish_non_exhaustive()
    }
}

impl SiphocProxy {
    /// Creates a proxy.
    pub fn new(cfg: SiphocProxyConfig) -> SiphocProxy {
        SiphocProxy {
            cfg,
            local: BindingTable::new(),
            register_cache: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_xid: 0,
            internet: None,
            reg_auth: None,
        }
    }

    /// The identity pinned for an AOR by REGISTER auth, if any.
    pub fn pinned_aor_identity(&self, aor: &str) -> Option<u64> {
        self.reg_auth.as_ref()?.pinned_identity(aor)
    }

    /// The local registrations (tests / Fig. 4 style dumps).
    pub fn local_bindings(&self) -> &BindingTable {
        &self.local
    }

    fn is_local_source(&self, ctx: &Ctx<'_>, src: SocketAddr) -> bool {
        src.addr.is_loopback() || src.addr == ctx.addr() || Some(src.addr) == self.internet
    }

    /// Transmits a SIP message, choosing the correct source address: the
    /// public lease for Internet-bound traffic, the MANET address
    /// otherwise.
    fn transmit(&self, ctx: &mut Ctx<'_>, msg: &SipMessage, dst: SocketAddr) {
        let src_addr = if dst.addr.is_public() {
            self.internet.unwrap_or_else(|| ctx.addr())
        } else {
            ctx.addr()
        };
        let wire = msg.to_bytes();
        ctx.stats().count("proxy.tx", wire.len());
        let src = SocketAddr::new(src_addr, ports::SIPHOC_PROXY);
        ctx.send(Datagram::new(src, dst, wire));
    }

    /// The Via sent-by the proxy stamps when forwarding toward `dst`.
    fn sent_by_for(&self, ctx: &Ctx<'_>, dst: SocketAddr) -> SocketAddr {
        let addr = if dst.addr.is_public() {
            self.internet.unwrap_or_else(|| ctx.addr())
        } else {
            ctx.addr()
        };
        SocketAddr::new(addr, ports::SIPHOC_PROXY)
    }

    /// The ALG step for messages leaving toward the Internet: rewrites
    /// private SDP connection addresses *and* private Contact URIs to the
    /// public lease. A real layer-2 tunnel deployment gets the former for
    /// free from the DHCP-assigned tunnel interface address; the Contact
    /// rewrite points in-dialog requests from the Internet back at this
    /// proxy, which re-targets them to the local user.
    fn apply_internet_alg(&self, ctx: &Ctx<'_>, msg: &mut SipMessage, dst: SocketAddr) {
        if !dst.addr.is_public() {
            return;
        }
        let Some(public) = self.internet else {
            return;
        };
        if let Some(contact) = msg.contact() {
            let private = contact
                .uri
                .socket_addr(ports::SIP)
                .map(|sa| !sa.addr.is_public())
                .unwrap_or(false);
            if private {
                let user = contact.uri.user.unwrap_or_default();
                let rewritten =
                    SipUri::from_socket(Some(&user), SocketAddr::new(public, ports::SIPHOC_PROXY));
                msg.headers_mut().set("Contact", format!("<{rewritten}>"));
            }
        }
        let _ = ctx;
        let is_sdp = msg
            .headers()
            .get("Content-Type")
            .map(|ct| ct.eq_ignore_ascii_case("application/sdp"))
            .unwrap_or(false);
        if !is_sdp {
            return;
        }
        if let Ok(mut sdp) = msg.body().parse::<Sdp>() {
            if !sdp.addr.is_public() {
                sdp.addr = public;
                let text = sdp.to_string();
                msg.set_body(&text, Some("application/sdp"));
            }
        }
    }

    fn forward(&self, ctx: &mut Ctx<'_>, msg: SipMessage, dst: SocketAddr) {
        let sent_by = self.sent_by_for(ctx, dst);
        match prepare_forward_request(msg, sent_by) {
            ForwardDecision::Forward(mut fwd) => {
                self.apply_internet_alg(ctx, &mut fwd, dst);
                self.transmit(ctx, &fwd, dst);
            }
            ForwardDecision::Reject(_) => {
                ctx.stats().count("proxy.max_forwards_exhausted", 1);
            }
        }
    }

    fn respond(&self, ctx: &mut Ctx<'_>, req: &SipMessage, code: StatusCode) {
        if req.method() == Some(Method::Ack) {
            return;
        }
        let resp = stateless_response(req, code, ctx);
        if let Some(target) = response_target(req) {
            self.transmit(ctx, &resp, target);
        }
    }

    fn slp_request(&mut self, ctx: &mut Ctx<'_>, msg: SlpMsg) {
        ctx.send_local(ports::SLP, PROXY_SLP_PORT, msg.to_wire());
    }

    // ------------------------------------------------------------------
    // Registration (Fig. 3 steps 1–2)
    // ------------------------------------------------------------------

    fn on_local_register(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage) {
        if self.cfg.auth {
            let salt = u64::from(ctx.addr().0);
            let guard = self.reg_auth.get_or_insert_with(|| RegisterAuth::new(salt));
            match guard.check(&msg) {
                RegisterAuthOutcome::Accept { .. } => {}
                RegisterAuthOutcome::Challenge { nonce } => {
                    ctx.stats().count("proxy.auth_challenge", 1);
                    let mut resp = stateless_response(&msg, StatusCode::UNAUTHORIZED, ctx);
                    resp.headers_mut()
                        .push(auth::WWW_AUTHENTICATE, auth::Challenge { nonce });
                    if let Some(target) = response_target(&msg) {
                        self.transmit(ctx, &resp, target);
                    }
                    return;
                }
                RegisterAuthOutcome::Reject => {
                    ctx.stats().count("proxy.auth_reject", 1);
                    self.respond(ctx, &msg, StatusCode::FORBIDDEN);
                    return;
                }
            }
        }
        let now = ctx.now();
        let resp = self
            .local
            .handle_register(&msg, now, self.cfg.default_expiry);
        let accepted = resp.status() == Some(StatusCode::OK);
        if let Some(target) = response_target(&msg) {
            self.transmit(ctx, &resp, target);
        }
        if !accepted {
            return;
        }
        ctx.stats().count("proxy.register_local", 1);
        let Some(to) = msg.to_header() else { return };
        let aor = to.uri.aor();
        let expires = msg
            .contact()
            .and_then(|c| c.expires_param())
            .or_else(|| msg.expires());

        // Step 2: advertise (or withdraw) through MANET SLP — the proxy's
        // own endpoint is the responsible contact for the user (Fig. 4).
        self.next_xid += 1;
        let slp_msg = if expires == Some(0) {
            self.register_cache.remove(&aor.to_string());
            SlpMsg::SrvDeReg {
                xid: self.next_xid,
                service_type: service_types::SIP.to_owned(),
                key: aor.to_string(),
            }
        } else {
            self.register_cache.insert(aor.to_string(), msg.clone());
            SlpMsg::SrvReg {
                xid: self.next_xid,
                service_type: service_types::SIP.to_owned(),
                key: aor.to_string(),
                contact: SocketAddr::new(ctx.addr(), ports::SIPHOC_PROXY),
                lifetime_secs: self.cfg.slp_lifetime.as_micros() as u32 / 1_000_000,
            }
        };
        ctx.stats().count("proxy.slp_advertise", 1);
        self.slp_request(ctx, slp_msg);

        // §3.2: with Internet connectivity, also register at the real
        // provider under the public lease.
        if self.internet.is_some() && expires != Some(0) {
            self.forward_register_to_provider(ctx, &msg);
        }
    }

    fn forward_register_to_provider(&mut self, ctx: &mut Ctx<'_>, msg: &SipMessage) {
        let Some(public) = self.internet else { return };
        let Some(to) = msg.to_header() else { return };
        let domain = to.uri.aor().domain;
        let Some(provider) = self.cfg.dns.resolve(&domain) else {
            // The polyphone.ethz.ch case: the provider needs an outbound
            // proxy we have overwritten, so its domain is not a usable
            // next hop (open issue acknowledged in the paper).
            ctx.stats().count("proxy.provider_unresolvable", 1);
            return;
        };
        let mut fwd = msg.clone();
        let user = to.uri.aor().user;
        let contact_uri =
            SipUri::from_socket(Some(&user), SocketAddr::new(public, ports::SIPHOC_PROXY));
        fwd.headers_mut().set("Contact", format!("<{contact_uri}>"));
        ctx.stats().count("proxy.register_provider", 1);
        self.forward(ctx, fwd, SocketAddr::new(provider, ports::SIP));
    }

    // ------------------------------------------------------------------
    // Request routing (Fig. 3 steps 5–8)
    // ------------------------------------------------------------------

    /// Resolves the live local binding for `user`: the rewritten
    /// Request-URI and the socket to forward to. Resolving before moving
    /// the message keeps the forwarding path clone-free.
    fn local_target(&self, user: &str, now: SimTime) -> Option<(SipUri, SocketAddr)> {
        let binding = self
            .local
            .lookup_by_user(user)
            .and_then(|aor| self.local.lookup(aor, now))?;
        let dst = binding.contact.socket_addr(ports::SIP)?;
        Some((binding.contact.clone(), dst))
    }

    fn on_request(&mut self, ctx: &mut Ctx<'_>, mut msg: SipMessage, from: SocketAddr) {
        let local_src = self.is_local_source(ctx, from);
        // A corrupted datagram can parse as a response (or a request whose
        // mandatory parts were mangled); drop it rather than panic.
        let method = match &msg {
            SipMessage::Request { method, .. } => *method,
            SipMessage::Response { .. } => {
                ctx.stats().count("sip.malformed_dropped", 1);
                return;
            }
        };

        if method == Method::Register && local_src {
            self.on_local_register(ctx, msg);
            return;
        }

        // Route without cloning the message: resolve the target first,
        // then move the message along the chosen path.
        enum RouteTo {
            Local(SipUri, SocketAddr),
            Direct(SocketAddr),
            NotFound,
            Slp(Aor),
        }
        let now = ctx.now();
        let route = {
            let SipMessage::Request { uri, .. } = &msg else {
                unreachable!("responses rejected above")
            };
            // Numeric Request-URIs: either one of our own advertised
            // endpoints (deliver to the local user named in the URI) or a
            // direct forward.
            if let Some(dst) = uri.socket_addr(ports::SIP) {
                let ours = dst.addr == ctx.addr() || Some(dst.addr) == self.internet;
                if ours {
                    let user = uri.user.as_deref().unwrap_or("");
                    match self.local_target(user, now) {
                        Some((contact, dst)) => RouteTo::Local(contact, dst),
                        None => RouteTo::NotFound,
                    }
                } else {
                    RouteTo::Direct(dst)
                }
            } else {
                // Domain Request-URI.
                let aor = uri.aor();
                if self.local.lookup(&aor, now).is_some() {
                    match self.local_target(&aor.user, now) {
                        Some((contact, dst)) => RouteTo::Local(contact, dst),
                        None => RouteTo::NotFound,
                    }
                } else {
                    RouteTo::Slp(aor)
                }
            }
        };

        match route {
            RouteTo::Local(contact, dst) => {
                if let SipMessage::Request { uri, .. } = &mut msg {
                    *uri = contact;
                }
                ctx.stats().count("proxy.deliver_local", 1);
                self.forward(ctx, msg, dst);
            }
            RouteTo::Direct(dst) => self.forward(ctx, msg, dst),
            RouteTo::NotFound => self.respond(ctx, &msg, StatusCode::NOT_FOUND),
            RouteTo::Slp(aor) => {
                // Step 6: consult MANET SLP for the responsible proxy.
                self.next_xid += 1;
                let xid = self.next_xid;
                ctx.stats().count("proxy.slp_lookup", 1);
                let span = ctx.span_enter(SpanCat::Slp, "slp.resolve");
                if ctx.obs().tracing() {
                    if let Some(call_id) = msg.call_id() {
                        let corr = call_id.to_owned();
                        ctx.obs().span_corr(span, &corr);
                    }
                }
                self.pending.insert(xid, Parked { msg, span });
                self.slp_request(
                    ctx,
                    SlpMsg::SrvRqst {
                        xid,
                        service_type: service_types::SIP.to_owned(),
                        key: aor.to_string(),
                    },
                );
            }
        }
    }

    fn on_slp_reply(
        &mut self,
        ctx: &mut Ctx<'_>,
        xid: u32,
        entries: Vec<siphoc_slp::service::ServiceEntry>,
    ) {
        let Some(parked) = self.pending.remove(&xid) else {
            return;
        };
        let msg = parked.msg;
        // Ignore our own advertisement — local bindings were checked first.
        let own = ctx.addr();
        let target = entries.iter().find(|e| e.origin != own).map(|e| e.contact);
        if let Some(dst) = target {
            // Step 7: forward to the responsible remote proxy.
            ctx.span_exit(parked.span, true);
            ctx.stats().count("proxy.fwd_to_remote_proxy", 1);
            self.forward(ctx, msg, dst);
            return;
        }
        // MANET miss: try the Internet (§3.2).
        if self.internet.is_some() {
            if let SipMessage::Request { uri, .. } = &msg {
                if let Some(provider) = self.cfg.dns.resolve(&uri.host) {
                    ctx.span_exit(parked.span, true);
                    ctx.stats().count("proxy.fwd_to_provider", 1);
                    self.forward(ctx, msg, SocketAddr::new(provider, ports::SIP));
                    return;
                }
                ctx.stats().count("proxy.provider_unresolvable", 1);
            }
        }
        ctx.span_exit(parked.span, false);
        ctx.stats().count("proxy.lookup_failed", 1);
        self.respond(ctx, &msg, StatusCode::NOT_FOUND);
    }

    fn on_response(&mut self, ctx: &mut Ctx<'_>, msg: SipMessage) {
        let ours = msg
            .top_via()
            .map(|v| v.sent_by.addr == ctx.addr() || Some(v.sent_by.addr) == self.internet)
            .unwrap_or(false);
        if !ours {
            ctx.stats().count("proxy.misrouted_response", 1);
            return;
        }
        if let Some((mut fwd, target)) = prepare_forward_response(msg) {
            self.apply_internet_alg(ctx, &mut fwd, target);
            self.transmit(ctx, &fwd, target);
        }
    }

    /// Refreshes the SLP advertisements for all live local bindings.
    fn readvertise(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let adverts: Vec<String> = self
            .local
            .iter()
            .filter(|(aor, _)| self.local.lookup(aor, now).is_some())
            .map(|(aor, _)| aor.to_string())
            .collect();
        for key in adverts {
            self.next_xid += 1;
            let m = SlpMsg::SrvReg {
                xid: self.next_xid,
                service_type: service_types::SIP.to_owned(),
                key,
                contact: SocketAddr::new(ctx.addr(), ports::SIPHOC_PROXY),
                lifetime_secs: self.cfg.slp_lifetime.as_micros() as u32 / 1_000_000,
            };
            self.slp_request(ctx, m);
        }
    }
}

impl Process for SiphocProxy {
    fn name(&self) -> &'static str {
        "siphoc-proxy"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(ports::SIPHOC_PROXY);
        ctx.bind(PROXY_SLP_PORT);
        ctx.set_timer(self.cfg.slp_lifetime / 2, TAG_READVERT);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if dgram.dst.port == PROXY_SLP_PORT {
            match SlpMsg::parse(&dgram.payload) {
                Ok(SlpMsg::SrvRply { xid, entries }) => self.on_slp_reply(ctx, xid, entries),
                Ok(SlpMsg::SrvAck { .. }) => {}
                _ => ctx
                    .stats()
                    .count("proxy.slp_unexpected", dgram.payload.len()),
            }
            return;
        }
        let Ok(msg) = SipMessage::parse(&String::from_utf8_lossy(&dgram.payload)) else {
            ctx.stats().count("proxy.malformed", dgram.payload.len());
            return;
        };
        if msg.is_request() {
            self.on_request(ctx, msg, dgram.src);
        } else {
            self.on_response(ctx, msg);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TAG_READVERT {
            let now = ctx.now();
            self.local.sweep(now);
            ctx.obs()
                .gauge_set("sip.bindings", self.local.bindings_len() as f64);
            self.readvertise(ctx);
            ctx.set_timer(self.cfg.slp_lifetime / 2, TAG_READVERT);
        }
    }

    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        match ev {
            LocalEvent::Custom { kind, data } if *kind == INTERNET_UP_EVENT => {
                if let Ok(addr) = String::from_utf8_lossy(data).parse::<Addr>() {
                    self.internet = Some(addr);
                    ctx.stats().count("proxy.internet_up", 1);
                    // Register every cached local user at its provider.
                    let cached: Vec<SipMessage> = self.register_cache.values().cloned().collect();
                    for msg in cached {
                        self.forward_register_to_provider(ctx, &msg);
                    }
                }
            }
            LocalEvent::Custom { kind, .. } if *kind == INTERNET_DOWN_EVENT => {
                self.internet = None;
                ctx.stats().count("proxy.internet_down", 1);
            }
            LocalEvent::NodeRestarted => {
                for (_, parked) in std::mem::take(&mut self.pending) {
                    ctx.span_exit(parked.span, false);
                }
                ctx.set_timer(self.cfg.slp_lifetime / 2, TAG_READVERT);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_proxy_has_no_bindings_or_internet() {
        let p = SiphocProxy::new(SiphocProxyConfig::default());
        assert!(p.local_bindings().is_empty());
        assert!(p.internet.is_none());
    }
}
