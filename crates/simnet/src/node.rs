//! Nodes: the hosts of the simulated network.
//!
//! A node bundles a network stack (addresses, port bindings, forwarding
//! table, transmit queue) with the set of [`Process`]es running on it. Nodes
//! come in three kinds, mirroring the paper's deployment:
//!
//! * **MANET** nodes — radio only (the laptops/iPAQs),
//! * **wired** nodes — backbone only (Internet SIP providers, callers),
//! * **gateway-capable** nodes — both (the MANET node with Internet access).

use std::collections::VecDeque;

use crate::fasthash::FastMap;

use crate::mobility::Mobility;
use crate::net::{Addr, Datagram};
use crate::process::Process;
use crate::radio::Frame;
use crate::rng::SimRng;
use crate::route::RoutingTable;
use crate::stats::NodeStats;
use crate::time::SimTime;

/// Identifier of a node within a world; indexes are dense and start at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Configuration for a node added to a world.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub(crate) addr: Option<Addr>,
    pub(crate) public_alias: Option<Addr>,
    pub(crate) radio: bool,
    pub(crate) wired: bool,
    pub(crate) mobility: Mobility,
}

impl NodeConfig {
    /// A radio-only MANET node at the given position.
    pub fn manet(x: f64, y: f64) -> NodeConfig {
        NodeConfig {
            addr: None,
            public_alias: None,
            radio: true,
            wired: false,
            mobility: Mobility::fixed(x, y),
        }
    }

    /// A wired-only Internet host with the given public address.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a public address.
    pub fn wired(addr: Addr) -> NodeConfig {
        assert!(addr.is_public(), "wired nodes need a public address");
        NodeConfig {
            addr: Some(addr),
            public_alias: None,
            radio: false,
            wired: true,
            mobility: Mobility::fixed(0.0, 0.0),
        }
    }

    /// A MANET node that additionally has a wired Internet uplink (a
    /// gateway candidate in SIPHoc terms).
    pub fn gateway(x: f64, y: f64) -> NodeConfig {
        NodeConfig {
            addr: None,
            public_alias: None,
            radio: true,
            wired: true,
            mobility: Mobility::fixed(x, y),
        }
    }

    /// Gives the node a public alias address — the wired-side identity of
    /// a gateway. Backbone traffic for the alias is delivered to this
    /// node, and gateway-resident services use it as their public source.
    ///
    /// # Panics
    ///
    /// Panics (at `add_node` time) if `addr` is not public.
    pub fn with_public_alias(mut self, addr: Addr) -> NodeConfig {
        self.public_alias = Some(addr);
        self
    }

    /// Overrides the automatically assigned address.
    pub fn with_addr(mut self, addr: Addr) -> NodeConfig {
        self.addr = Some(addr);
        self
    }

    /// Replaces the mobility model (radio nodes only).
    pub fn with_mobility(mut self, mobility: Mobility) -> NodeConfig {
        self.mobility = mobility;
        self
    }
}

/// A datagram parked while an on-demand route is being discovered.
#[derive(Debug)]
pub(crate) struct PendingPacket {
    pub dgram: Datagram,
    pub deadline: SimTime,
}

/// Cache-hot per-node state, mirrored out of the [`Node`] arena into a
/// dense SoA-style vector (`World::hot`).
///
/// Radio fan-out touches `up` + position of every candidate receiver; at
/// city scale those reads dominate, and pulling them through the full
/// `Node` struct (several cache lines, pointer-rich) thrashes the cache.
/// `HotNode` packs exactly the broadcast-filter fields into 56 bytes.
///
/// Positions are interpolated by the same `mobility::leg_position`
/// function the authoritative `Mobility` model uses, so both paths are
/// bit-identical. Entries are rewritten only from sequential contexts
/// (`add_node`, `set_node_up`, replans, explicit moves) — never inside a
/// parallel window — so workers may read the arena as a plain shared
/// slice.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotNode {
    pub up: bool,
    pub has_radio: bool,
    /// Whether the node is on a waypoint leg (false = parked at `from`).
    moving: bool,
    from: (f64, f64),
    to: (f64, f64),
    start: SimTime,
    arrive: SimTime,
}

impl HotNode {
    /// Snapshots the hot fields of `n`.
    pub(crate) fn of(n: &Node) -> HotNode {
        match &n.mobility {
            Mobility::Static { pos } => HotNode {
                up: n.up,
                has_radio: n.has_radio,
                moving: false,
                from: *pos,
                to: *pos,
                start: SimTime::ZERO,
                arrive: SimTime::ZERO,
            },
            Mobility::RandomWaypoint { leg, .. } => HotNode {
                up: n.up,
                has_radio: n.has_radio,
                moving: true,
                from: leg.from,
                to: leg.to,
                start: leg.start,
                arrive: leg.arrive,
            },
        }
    }

    /// Position at `now`; identical to `Node::position(now)`.
    #[inline]
    pub(crate) fn position(&self, now: SimTime) -> (f64, f64) {
        if !self.moving {
            return self.from;
        }
        crate::mobility::leg_position(self.from, self.to, self.start, self.arrive, now)
    }
}

/// A host in the simulated network. Public accessors expose read-only state
/// for tests and experiment harnesses; mutation happens through the world.
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) addr: Addr,
    pub(crate) local_addrs: Vec<Addr>,
    pub(crate) has_radio: bool,
    pub(crate) has_wired: bool,
    pub(crate) up: bool,
    pub(crate) mobility: Mobility,
    pub(crate) procs: Vec<Option<Box<dyn Process>>>,
    pub(crate) proc_names: Vec<&'static str>,
    pub(crate) port_bindings: FastMap<u16, usize>,
    pub(crate) addr_handlers: FastMap<Addr, usize>,
    pub(crate) default_handler: Option<usize>,
    pub(crate) routes: RoutingTable,
    pub(crate) pending: FastMap<Addr, Vec<PendingPacket>>,
    pub(crate) tx_queue: VecDeque<Frame>,
    pub(crate) tx_busy: bool,
    pub(crate) tx_until: SimTime,
    pub(crate) rng: SimRng,
    pub(crate) stats: NodeStats,
    pub(crate) obs: siphoc_obs::NodeObs,
}

impl Node {
    pub(crate) fn new(id: NodeId, addr: Addr, cfg: NodeConfig, rng: SimRng) -> Node {
        Node {
            id,
            addr,
            local_addrs: vec![addr],
            has_radio: cfg.radio,
            has_wired: cfg.wired,
            up: true,
            mobility: cfg.mobility,
            procs: Vec::new(),
            proc_names: Vec::new(),
            port_bindings: FastMap::default(),
            addr_handlers: FastMap::default(),
            default_handler: None,
            routes: RoutingTable::new(),
            pending: FastMap::default(),
            tx_queue: VecDeque::new(),
            tx_busy: false,
            tx_until: SimTime::ZERO,
            rng,
            stats: NodeStats::default(),
            obs: siphoc_obs::NodeObs::default(),
        }
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's primary address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Every address the node currently answers to (primary plus aliases
    /// such as a leased tunnel address).
    pub fn local_addrs(&self) -> &[Addr] {
        &self.local_addrs
    }

    /// Whether `addr` is delivered locally on this node.
    pub fn is_local_addr(&self, addr: Addr) -> bool {
        addr.is_loopback()
            || self.local_addrs.contains(&addr)
            || self.addr_handlers.contains_key(&addr)
    }

    /// Whether the node has a radio interface.
    pub fn has_radio(&self) -> bool {
        self.has_radio
    }

    /// Whether the node has a wired (Internet) interface.
    pub fn has_wired(&self) -> bool {
        self.has_wired
    }

    /// Whether the node is powered on.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The node's forwarding table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// The node's traffic counters.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// The node's observability shard (metrics + spans). A no-op shell
    /// unless the `obs` feature is enabled.
    pub fn obs(&self) -> &siphoc_obs::NodeObs {
        &self.obs
    }

    /// Position at `now` (radio nodes; wired nodes report their fixed
    /// placeholder position).
    pub fn position(&self, now: SimTime) -> (f64, f64) {
        self.mobility.position(now)
    }

    /// Names of the processes hosted on this node, in spawn order.
    pub fn process_names(&self) -> &[&'static str] {
        &self.proc_names
    }

    /// Number of datagrams parked awaiting route discovery.
    pub fn pending_packets(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("radio", &self.has_radio)
            .field("wired", &self.has_wired)
            .field("up", &self.up)
            .field("procs", &self.proc_names)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_kinds_set_interfaces() {
        let m = NodeConfig::manet(1.0, 2.0);
        assert!(m.radio && !m.wired);
        let w = NodeConfig::wired(Addr::new(82, 1, 1, 1));
        assert!(!w.radio && w.wired);
        let g = NodeConfig::gateway(0.0, 0.0);
        assert!(g.radio && g.wired);
    }

    #[test]
    #[should_panic(expected = "public address")]
    fn wired_config_rejects_manet_addr() {
        let _ = NodeConfig::wired(Addr::manet(0));
    }

    #[test]
    fn hot_node_positions_match_mobility_exactly() {
        use crate::mobility::{Area, Mobility, WaypointParams};
        use crate::time::SimDuration;
        let mut rng = SimRng::from_seed_and_stream(7, 7);
        let params = WaypointParams::new(1.0, 9.0, SimDuration::from_secs(1));
        let area = Area::new(300.0, 300.0);
        let mob = Mobility::random_waypoint((5.0, 5.0), params, area, SimTime::ZERO, &mut rng);
        let mut n = Node::new(
            NodeId(0),
            Addr::manet(0),
            NodeConfig::manet(0.0, 0.0).with_mobility(mob),
            SimRng::from_seed_and_stream(0, 0),
        );
        n.up = false;
        let h = HotNode::of(&n);
        assert!(!h.up && h.has_radio);
        for us in [0u64, 1, 500_000, 1_234_567, 60_000_000] {
            let t = SimTime::from_micros(us);
            // Bit-identical, not approximately equal: trace digests
            // depend on the hot arena never diverging from the model.
            assert_eq!(h.position(t), n.position(t));
        }
        let stat = HotNode::of(&Node::new(
            NodeId(1),
            Addr::manet(1),
            NodeConfig::manet(3.0, 4.0),
            SimRng::from_seed_and_stream(1, 1),
        ));
        assert_eq!(stat.position(SimTime::from_secs(42)), (3.0, 4.0));
    }

    #[test]
    fn node_answers_to_aliases_and_loopback() {
        let cfg = NodeConfig::manet(0.0, 0.0);
        let mut n = Node::new(
            NodeId(0),
            Addr::manet(0),
            cfg,
            SimRng::from_seed_and_stream(0, 0),
        );
        assert!(n.is_local_addr(Addr::manet(0)));
        assert!(n.is_local_addr(Addr::LOOPBACK));
        assert!(!n.is_local_addr(Addr::manet(1)));
        n.local_addrs.push(Addr::new(82, 1, 1, 9));
        assert!(n.is_local_addr(Addr::new(82, 1, 1, 9)));
    }
}
