//! Self-certifying node identities for the adversarial experiments.
//!
//! The SIPHoc testbed trusted every SLP advert and REGISTER it heard. The
//! defense layer (signed adverts, challenge REGISTER auth, gateway
//! attestation) needs a signature primitive, but the simulator must stay
//! dependency-free and deterministic. This module provides a *modeled*
//! signature scheme in the spirit of PKI-less / identity-based SIP
//! authentication (arXiv 1002.1160): a principal's identifier is the hash
//! of its public key, so no certificate authority is needed — possession
//! of the matching secret key is what a signature proves.
//!
//! ## The modeling fiction
//!
//! The "keypair" is 64 bits: `pk = mix64(sk)` where `mix64` is an
//! invertible bit mixer, and `sign(sk, msg) = h64(sk ‖ msg)`. `mix64` is
//! trivially invertible in code, so this scheme has **no computational
//! security whatsoever**. Unforgeability is enforced by construction
//! instead: attacker processes in the simulation are Dolev–Yao
//! adversaries — they may observe, replay, drop and fabricate messages
//! from material they legitimately hold, but no attacker code ever calls
//! [`unmix64`] on a victim's public key. The invariant is auditable by
//! grepping the adversary implementations; see DESIGN.md § threat model.
//!
//! Everything here is a pure function of its inputs: deriving keys,
//! signing and verifying draw no randomness and touch no simulator state,
//! so enabling signatures cannot perturb the RNG streams of runs that
//! never verify anything.

/// FNV-1a over a byte slice. Stable across platforms and runs.
#[inline]
#[must_use]
pub fn h64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: an invertible 64-bit bit mixer.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Exact inverse of [`mix64`]. Exists so [`verify`] can be stateless; no
/// adversary code may call this on a key it does not own (the Dolev–Yao
/// constraint documented in the module header).
#[inline]
#[must_use]
pub fn unmix64(mut x: u64) -> u64 {
    x ^= x >> 31;
    x ^= x >> 62;
    x = x.wrapping_mul(0x3196_42b2_d24d_8ec3);
    x ^= x >> 27;
    x ^= x >> 54;
    x = x.wrapping_mul(0x96de_1b17_3f11_9089);
    x ^= x >> 30;
    x ^= x >> 60;
    x
}

fn sig_over(sk: u64, msg: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + msg.len());
    buf.extend_from_slice(&sk.to_le_bytes());
    buf.extend_from_slice(msg);
    h64(&buf)
}

/// A modeled signing keypair. The secret half never leaves the struct;
/// honest code passes [`KeyPair::public`] around and keeps the pair
/// itself local to the signing process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    sk: u64,
}

impl KeyPair {
    /// Derives a keypair from a 64-bit secret.
    #[must_use]
    pub fn from_secret(sk: u64) -> KeyPair {
        KeyPair { sk }
    }

    /// The canonical keypair of the node holding address bits `addr`.
    ///
    /// Deterministic so deployments need no key-distribution step and no
    /// RNG draw: the world seed does not flow in, matching the
    /// self-certifying model where a key is minted once per principal.
    #[must_use]
    pub fn for_addr(addr: u32) -> KeyPair {
        KeyPair {
            sk: mix64(0x51F0_C0DE_0000_0000 | addr as u64),
        }
    }

    /// The canonical keypair of the principal named `name` (an AOR, a
    /// service URL — any stable string identifier). Deterministic for the
    /// same reason as [`KeyPair::for_addr`].
    #[must_use]
    pub fn for_name(name: &str) -> KeyPair {
        KeyPair {
            sk: mix64(0x51F0_1DE0_0000_0000 ^ h64(name.as_bytes())),
        }
    }

    /// The public key.
    #[must_use]
    pub fn public(&self) -> u64 {
        mix64(self.sk)
    }

    /// The self-certifying identity: the hash of the public key. This is
    /// what gets pinned — two keys collide only if their hashes do.
    #[must_use]
    pub fn identity(&self) -> u64 {
        identity_of(self.public())
    }

    /// Signs a message.
    #[must_use]
    pub fn sign(&self, msg: &[u8]) -> u64 {
        sig_over(self.sk, msg)
    }
}

/// Verifies `sig` over `msg` under `pk`. Stateless and deterministic.
#[must_use]
pub fn verify(pk: u64, msg: &[u8], sig: u64) -> bool {
    sig_over(unmix64(pk), msg) == sig
}

/// The self-certifying identity derived from a public key.
#[must_use]
pub fn identity_of(pk: u64) -> u64 {
    h64(&pk.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_round_trips() {
        for x in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(unmix64(mix64(x)), x);
            assert_eq!(mix64(unmix64(x)), x);
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = KeyPair::for_addr(0x0a00_0001);
        let sig = kp.sign(b"hello");
        assert!(verify(kp.public(), b"hello", sig));
        assert!(!verify(kp.public(), b"hellO", sig));
        assert!(!verify(kp.public(), b"hello", sig ^ 1));
    }

    #[test]
    fn different_principals_cannot_cross_verify() {
        let a = KeyPair::for_addr(1);
        let b = KeyPair::for_addr(2);
        assert_ne!(a.public(), b.public());
        assert_ne!(a.identity(), b.identity());
        let sig = a.sign(b"msg");
        assert!(!verify(b.public(), b"msg", sig));
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(KeyPair::for_addr(7), KeyPair::for_addr(7));
        assert_eq!(
            KeyPair::for_addr(7).sign(b"x"),
            KeyPair::for_addr(7).sign(b"x")
        );
    }
}
