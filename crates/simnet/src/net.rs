//! Network addressing and datagrams.
//!
//! The simulator models an IPv4-like address space:
//!
//! * `10.0.0.0/8` — MANET node addresses,
//! * `82.0.0.0/8` and `192.0.0.0/8` — "public Internet" addresses,
//! * `127.0.0.1` — node-local loopback (inter-process messages on one node),
//! * `255.255.255.255` — the link-local broadcast address (one radio hop).
//!
//! Transport is a UDP-like unreliable datagram service: a [`Datagram`] carries
//! a payload between two [`SocketAddr`]s and is either delivered whole or
//! lost.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// An IPv4-like network address.
///
/// # Examples
///
/// ```
/// use siphoc_simnet::net::Addr;
///
/// let a: Addr = "10.0.0.7".parse()?;
/// assert!(a.is_manet());
/// assert_eq!(a.to_string(), "10.0.0.7");
/// # Ok::<(), siphoc_simnet::net::ParseAddrError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl Addr {
    /// The node-local loopback address `127.0.0.1`.
    pub const LOOPBACK: Addr = Addr(0x7f00_0001);

    /// The link-local broadcast address `255.255.255.255`.
    ///
    /// Datagrams sent here reach every node within one radio hop; they are
    /// never forwarded.
    pub const BROADCAST: Addr = Addr(0xffff_ffff);

    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Addr = Addr(0);

    /// Builds an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Addr {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The conventional address of the `index`-th MANET node: `10.0.0.(index+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^24 - 1`, which would overflow the `10/8` block.
    pub fn manet(index: u32) -> Addr {
        assert!(index < (1 << 24) - 1, "MANET address index out of range");
        Addr((10 << 24) | (index + 1))
    }

    /// Returns `true` for addresses in the MANET block `10.0.0.0/8`.
    pub const fn is_manet(self) -> bool {
        self.0 >> 24 == 10
    }

    /// Returns `true` for public (Internet) addresses — anything that is not
    /// MANET, loopback, broadcast or unspecified.
    pub const fn is_public(self) -> bool {
        !self.is_manet()
            && !self.is_loopback()
            && self.0 != Addr::BROADCAST.0
            && self.0 != Addr::UNSPECIFIED.0
    }

    /// Returns `true` for `127.0.0.0/8`.
    pub const fn is_loopback(self) -> bool {
        self.0 >> 24 == 127
    }

    /// Returns `true` for the link-local broadcast address.
    pub const fn is_broadcast(self) -> bool {
        self.0 == Addr::BROADCAST.0
    }

    /// Returns the four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error returned when parsing an [`Addr`] or [`SocketAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAddrError {
    input: String,
}

impl fmt::Display for ParseAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseAddrError {}

impl FromStr for Addr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError {
            input: s.to_owned(),
        };
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for octet in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            *octet = part.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        let [a, b, c, d] = octets;
        Ok(Addr::new(a, b, c, d))
    }
}

/// A transport endpoint: address plus UDP-like port.
///
/// # Examples
///
/// ```
/// use siphoc_simnet::net::{Addr, SocketAddr};
///
/// let sa = SocketAddr::new(Addr::manet(0), 5060);
/// assert_eq!(sa.to_string(), "10.0.0.1:5060");
/// assert_eq!("10.0.0.1:5060".parse::<SocketAddr>()?, sa);
/// # Ok::<(), siphoc_simnet::net::ParseAddrError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketAddr {
    /// The network address.
    pub addr: Addr,
    /// The port number.
    pub port: u16,
}

impl SocketAddr {
    /// Creates a socket address from its parts.
    pub const fn new(addr: Addr, port: u16) -> SocketAddr {
        SocketAddr { addr, port }
    }
}

impl fmt::Display for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

impl fmt::Debug for SocketAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for SocketAddr {
    type Err = ParseAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAddrError {
            input: s.to_owned(),
        };
        let (addr, port) = s.rsplit_once(':').ok_or_else(err)?;
        Ok(SocketAddr {
            addr: addr.parse()?,
            port: port.parse().map_err(|_| err())?,
        })
    }
}

/// Well-known port numbers used across the stack.
pub mod ports {
    /// AODV routing control traffic (RFC 3561).
    pub const AODV: u16 = 654;
    /// OLSR routing control traffic (RFC 3626).
    pub const OLSR: u16 = 698;
    /// Service Location Protocol (RFC 2608).
    pub const SLP: u16 = 427;
    /// SIP signaling (RFC 3261).
    pub const SIP: u16 = 5060;
    /// The local SIPHoc proxy listens here for the node's own VoIP
    /// application (the "outbound proxy = localhost" of paper Fig. 2).
    pub const SIPHOC_PROXY: u16 = 5060;
    /// SIPHoc layer-2 tunnel server (gateway side).
    pub const TUNNEL: u16 = 7077;
    /// Base port for RTP media sessions; RTCP uses `RTP + 1`.
    pub const RTP_BASE: u16 = 8000;
}

/// Per-datagram time-to-live used when a datagram is forwarded hop by hop.
pub const DEFAULT_TTL: u8 = 64;

/// Number of bytes of UDP/IP header overhead accounted per datagram when
/// computing on-air frame sizes (8 bytes UDP + 20 bytes IP).
pub const UDP_IP_OVERHEAD: usize = 28;

/// Shared, immutable payload bytes.
///
/// A broadcast frame is delivered to every receiver in radio range and,
/// when capture is on, recorded in the packet trace — historically each of
/// those copies cloned the full byte vector. `Payload` wraps the bytes in
/// an [`Arc`] so cloning is a reference-count bump; the only mutation in
/// the stack (fault injection's bit corruption) goes through the
/// copy-on-write [`Payload::make_mut`].
///
/// The wrapper dereferences to `[u8]`, so slice-style reads
/// (`&dgram.payload`, `.len()`, `.starts_with(..)`, `.to_vec()`) work
/// unchanged, and it compares transparently against byte slices, arrays
/// and `Vec<u8>` in assertions.
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// An empty payload.
    pub fn empty() -> Payload {
        Payload(Arc::from(&[][..]))
    }

    /// The payload bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Mutable access for in-place edits, copy-on-write: if the bytes are
    /// shared with other datagram copies (or trace entries), they are
    /// cloned first so those copies keep observing the original bytes.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.0).is_none() {
            self.0 = Arc::from(&self.0[..]);
        }
        Arc::get_mut(&mut self.0).expect("freshly copied payload is uniquely owned")
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload(v.into())
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload(Arc::from(v))
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload(Arc::from(&v[..]))
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload(Arc::from(&v[..]))
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

// Serde transparency (bytes serialize exactly like `Vec<u8>`). Gated
// behind an off-by-default feature: nothing in the stack serializes
// datagrams today, and the offline build container only carries
// resolution stubs of serde.
#[cfg(feature = "payload-serde")]
impl Serialize for Payload {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.0.iter())
    }
}

#[cfg(feature = "payload-serde")]
impl<'de> Deserialize<'de> for Payload {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Payload, D::Error> {
        Vec::<u8>::deserialize(deserializer).map(Payload::from)
    }
}

/// An unreliable, unordered datagram — the only transport the simulator
/// offers, mirroring the paper's UDP-based deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Origin endpoint.
    pub src: SocketAddr,
    /// Destination endpoint.
    pub dst: SocketAddr,
    /// Remaining hops before the datagram is discarded.
    pub ttl: u8,
    /// Opaque payload bytes, shared between clones of this datagram.
    pub payload: Payload,
}

impl Datagram {
    /// Creates a datagram with the default TTL.
    pub fn new(src: SocketAddr, dst: SocketAddr, payload: impl Into<Payload>) -> Datagram {
        Datagram {
            src,
            dst,
            ttl: DEFAULT_TTL,
            payload: payload.into(),
        }
    }

    /// Total simulated wire size: payload plus UDP/IP overhead.
    pub fn wire_len(&self) -> usize {
        self.payload.len() + UDP_IP_OVERHEAD
    }
}

/// Layer-2 destination of a radio frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Dst {
    /// Unicast to the neighbor owning this address (802.11 acked/retried).
    Unicast(Addr),
    /// Local broadcast to every node in range (unacknowledged).
    Broadcast,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_classification() {
        assert!(Addr::manet(0).is_manet());
        assert!(!Addr::manet(0).is_public());
        assert!(Addr::new(82, 130, 1, 1).is_public());
        assert!(Addr::LOOPBACK.is_loopback());
        assert!(Addr::BROADCAST.is_broadcast());
        assert!(!Addr::UNSPECIFIED.is_public());
    }

    #[test]
    fn addr_display_and_parse_round_trip() {
        for s in ["10.0.0.1", "82.130.64.9", "255.255.255.255", "127.0.0.1"] {
            let a: Addr = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
    }

    #[test]
    fn addr_parse_rejects_malformed() {
        assert!("10.0.0".parse::<Addr>().is_err());
        assert!("10.0.0.0.1".parse::<Addr>().is_err());
        assert!("10.0.0.256".parse::<Addr>().is_err());
        assert!("ten.zero.zero.one".parse::<Addr>().is_err());
    }

    #[test]
    fn socket_addr_round_trip() {
        let sa: SocketAddr = "10.0.0.3:427".parse().unwrap();
        assert_eq!(sa.addr, Addr::manet(2));
        assert_eq!(sa.port, 427);
        assert_eq!(sa.to_string(), "10.0.0.3:427");
        assert!("10.0.0.3".parse::<SocketAddr>().is_err());
        assert!("10.0.0.3:notaport".parse::<SocketAddr>().is_err());
    }

    #[test]
    fn manet_addresses_are_sequential() {
        assert_eq!(Addr::manet(0).to_string(), "10.0.0.1");
        assert_eq!(Addr::manet(255).to_string(), "10.0.1.0");
    }

    #[test]
    fn datagram_wire_len_includes_headers() {
        let d = Datagram::new(
            SocketAddr::new(Addr::manet(0), 1000),
            SocketAddr::new(Addr::manet(1), 2000),
            vec![0u8; 160],
        );
        assert_eq!(d.wire_len(), 188);
        assert_eq!(d.ttl, DEFAULT_TTL);
    }
}
