//! Traffic and event counters.
//!
//! Every node keeps a [`NodeStats`] with named counters; experiment
//! harnesses aggregate them across the world to produce the overhead series
//! (experiment E3 in `DESIGN.md`). Counter names are dotted paths such as
//! `"aodv.rreq"` or `"drop.no_route"` so related counters group naturally.

use std::collections::BTreeMap;
use std::fmt;

/// A single packet/byte counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Number of packets (or events) counted.
    pub packets: u64,
    /// Total bytes attributed to the counter.
    pub bytes: u64,
}

impl Counter {
    /// Adds one packet of `bytes` bytes.
    pub fn add(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: Counter) {
        self.packets += other.packets;
        self.bytes += other.bytes;
    }
}

/// Named counters for one node.
///
/// # Examples
///
/// ```
/// use siphoc_simnet::stats::NodeStats;
///
/// let mut stats = NodeStats::default();
/// stats.count("aodv.rreq", 48);
/// stats.count("aodv.rreq", 48);
/// assert_eq!(stats.get("aodv.rreq").packets, 2);
/// assert_eq!(stats.get("aodv.rreq").bytes, 96);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    counters: BTreeMap<&'static str, Counter>,
}

impl NodeStats {
    /// Adds one packet of `bytes` bytes to the named counter.
    pub fn count(&mut self, name: &'static str, bytes: usize) {
        self.counters.entry(name).or_default().add(bytes);
    }

    /// Returns the named counter (zero if never touched).
    pub fn get(&self, name: &str) -> Counter {
        self.counters.get(name).copied().unwrap_or_default()
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> Counter {
        let mut total = Counter::default();
        for (name, c) in &self.counters {
            if name.starts_with(prefix) {
                total.merge(*c);
            }
        }
        total
    }

    /// Iterates over `(name, counter)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Counter)> + '_ {
        self.counters.iter().map(|(n, c)| (*n, *c))
    }

    /// Merges all counters of `other` into this instance.
    pub fn merge(&mut self, other: &NodeStats) {
        for (name, c) in other.iter() {
            self.counters.entry(name).or_default().merge(c);
        }
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.counters.clear();
    }
}

impl fmt::Display for NodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() {
            return writeln!(f, "(no traffic)");
        }
        writeln!(f, "{:<28} {:>10} {:>12}", "counter", "packets", "bytes")?;
        for (name, c) in &self.counters {
            writeln!(f, "{:<28} {:>10} {:>12}", name, c.packets, c.bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sum_groups_counters() {
        let mut s = NodeStats::default();
        s.count("aodv.rreq", 10);
        s.count("aodv.rrep", 20);
        s.count("olsr.hello", 30);
        let aodv = s.sum_prefix("aodv.");
        assert_eq!(aodv.packets, 2);
        assert_eq!(aodv.bytes, 30);
        assert_eq!(s.sum_prefix("").bytes, 60);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = NodeStats::default();
        a.count("x", 1);
        let mut b = NodeStats::default();
        b.count("x", 2);
        b.count("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x").bytes, 3);
        assert_eq!(a.get("x").packets, 2);
        assert_eq!(a.get("y").bytes, 3);
    }

    #[test]
    fn display_is_never_empty() {
        let s = NodeStats::default();
        assert!(!s.to_string().is_empty());
    }
}
