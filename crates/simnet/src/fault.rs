//! Deterministic fault injection: the chaos plan.
//!
//! The paper's headline scenario is an emergency-response MANET where any
//! node may crash, move away or rejoin at any time, yet calls keep working.
//! This module turns that failure model into a reusable, seed-deterministic
//! *chaos plan*: a [`FaultPlan`] is a schedule of topology faults (crashes,
//! restarts, link cuts, partitions) plus a set of probabilistic per-link
//! packet faults (duplication, reordering, corruption, blackholing) that
//! [`crate::world::World`] executes alongside the regular event queue.
//!
//! Everything is deterministic: the schedule itself is explicit data, the
//! Poisson churn generator draws from a caller-supplied [`SimRng`], and the
//! world applies probabilistic packet faults from its own dedicated fault
//! RNG stream. Two runs with the same seed and the same plan produce
//! identical traces.
//!
//! Every injected fault is visible in [`crate::stats::NodeStats`] under the
//! `fault.` prefix (`fault.crash`, `fault.blackhole`, `fault.corrupt`, …),
//! so experiments can report exactly how much chaos a run absorbed.
//!
//! # Example
//!
//! ```
//! use siphoc_simnet::prelude::*;
//! use siphoc_simnet::fault::{FaultPlan, LinkSelector, PacketFaultKind};
//!
//! let mut world = World::new(WorldConfig::new(7));
//! let a = world.add_node(NodeConfig::manet(0.0, 0.0));
//! let b = world.add_node(NodeConfig::manet(50.0, 0.0));
//!
//! let plan = FaultPlan::new()
//!     .crash_at(SimTime::from_secs(10), b)
//!     .restart_at(SimTime::from_secs(15), b)
//!     .partition_at(SimTime::from_secs(20), vec![a])
//!     .heal_at(SimTime::from_secs(30))
//!     .packet_fault(
//!         LinkSelector::All,
//!         PacketFaultKind::Corrupt,
//!         0.01,
//!         SimTime::ZERO,
//!         SimTime::MAX,
//!     );
//! world.install_fault_plan(plan);
//! world.run_for(SimDuration::from_secs(40));
//! ```

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What a per-link packet fault does to a matching frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PacketFaultKind {
    /// Deliver the frame twice (the second copy slightly later), as a
    /// retransmitting or echo-prone link would. Exercises duplicate
    /// suppression in the transaction layer.
    Duplicate,
    /// Add an extra uniform delay in `[0, max_extra]` to the delivery,
    /// letting later frames overtake this one.
    Reorder {
        /// Upper bound of the extra delivery delay.
        max_extra: SimDuration,
    },
    /// Flip a few payload bytes before delivery. Exercises parser
    /// totality and malformed-message counters up the stack.
    Corrupt,
    /// Silently drop the frame after a successful link-layer exchange —
    /// loss the radio's retry logic never sees.
    Blackhole,
}

/// Which transmitter→receiver radio links a packet fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every radio link in the world.
    All,
    /// Both directions between a pair of nodes.
    Pair(NodeId, NodeId),
    /// Frames transmitted by one node, to any receiver.
    From(NodeId),
}

impl LinkSelector {
    /// Whether a frame from `tx` to `rx` matches this selector.
    pub fn matches(&self, tx: NodeId, rx: NodeId) -> bool {
        match *self {
            LinkSelector::All => true,
            LinkSelector::Pair(a, b) => (tx == a && rx == b) || (tx == b && rx == a),
            LinkSelector::From(a) => tx == a,
        }
    }
}

/// A probabilistic packet fault on selected links, active inside a time
/// window. Sampled independently per frame (and, for broadcasts, per
/// receiver) from the world's dedicated fault RNG stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketFault {
    /// Links the fault applies to.
    pub on: LinkSelector,
    /// What happens to an afflicted frame.
    pub kind: PacketFaultKind,
    /// Per-frame probability of the fault firing, clamped to `[0, 1]`.
    pub probability: f64,
    /// Start of the active window (inclusive).
    pub from: SimTime,
    /// End of the active window (exclusive); [`SimTime::MAX`] keeps the
    /// fault active forever.
    pub until: SimTime,
}

impl PacketFault {
    /// Whether the fault is active at `now` for a frame from `tx` to `rx`.
    pub fn applies(&self, now: SimTime, tx: NodeId, rx: NodeId) -> bool {
        self.from <= now && now < self.until && self.on.matches(tx, rx)
    }
}

/// Discriminator of the [`crate::process::LocalEvent::Custom`] signal a
/// node receives when a scheduled [`FaultAction::Compromise`] fires. The
/// event's `data` is one byte: the [`MaliciousKind`] as `u8`.
pub const COMPROMISE_EVENT: &str = "fault.compromise";

/// What a compromised node starts doing — the *malicious* fault family.
///
/// Unlike the benign faults above, these do not change world state
/// directly: the world counts the activation (`fault.compromise`) and
/// delivers a [`COMPROMISE_EVENT`] local event to the node, and it is the
/// node's (pre-deployed, dormant) adversary processes that act on it.
/// The attacker implementations live in `siphoc-core`'s `adversary`
/// module, next to the wire formats they abuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaliciousKind {
    /// Advertise `service:gateway`, hand out bogus leases and blackhole
    /// (while snooping) every tunneled datagram.
    RogueGateway,
    /// Spoof REGISTERs for a victim AOR and advertise the hijacked
    /// binding so calls route to the attacker.
    AorHijack,
    /// Flood forged SLP adverts (forged origin, inflated sequence
    /// numbers) to poison every on-demand cache in radio range.
    ForgedAdverts,
}

impl MaliciousKind {
    /// Wire byte carried in the [`COMPROMISE_EVENT`] payload.
    pub fn to_byte(self) -> u8 {
        match self {
            MaliciousKind::RogueGateway => 1,
            MaliciousKind::AorHijack => 2,
            MaliciousKind::ForgedAdverts => 3,
        }
    }

    /// Decodes the [`COMPROMISE_EVENT`] payload byte.
    pub fn from_byte(b: u8) -> Option<MaliciousKind> {
        match b {
            1 => Some(MaliciousKind::RogueGateway),
            2 => Some(MaliciousKind::AorHijack),
            3 => Some(MaliciousKind::ForgedAdverts),
            _ => None,
        }
    }
}

/// One scheduled topology fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Power a node down (its queues, routes and pending traffic drop).
    NodeCrash(NodeId),
    /// Power a node back up; its processes see
    /// [`crate::process::LocalEvent::NodeRestarted`].
    NodeRestart(NodeId),
    /// Administratively cut the radio link between two nodes (both
    /// directions). The transmitter's retries fail as if out of range.
    LinkDown(NodeId, NodeId),
    /// Restore a previously cut link.
    LinkUp(NodeId, NodeId),
    /// Split the world: every radio link between `island` members and the
    /// rest is cut. Replaces any previous partition.
    Partition(
        /// The island's members.
        Vec<NodeId>,
    ),
    /// Remove the partition and every explicit link cut.
    Heal,
    /// Turn a node malicious: counted under `fault.compromise` and
    /// delivered to the node's processes as a [`COMPROMISE_EVENT`] local
    /// event carrying the [`MaliciousKind`] byte.
    Compromise(NodeId, MaliciousKind),
}

/// A deterministic schedule of fault events plus per-link packet faults.
///
/// Build one with the chainable constructors, then hand it to
/// [`crate::world::World::install_fault_plan`]. Events execute at their
/// scheduled time in the world's event loop; packet faults are consulted on
/// every radio frame delivery inside their time window.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, FaultAction)>,
    packet_faults: Vec<PacketFault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules an arbitrary fault action.
    pub fn at(mut self, time: SimTime, action: FaultAction) -> FaultPlan {
        self.events.push((time, action));
        self
    }

    /// Schedules a node crash.
    pub fn crash_at(self, time: SimTime, node: NodeId) -> FaultPlan {
        self.at(time, FaultAction::NodeCrash(node))
    }

    /// Schedules a node restart.
    pub fn restart_at(self, time: SimTime, node: NodeId) -> FaultPlan {
        self.at(time, FaultAction::NodeRestart(node))
    }

    /// Schedules an administrative link cut between two nodes.
    pub fn link_down_at(self, time: SimTime, a: NodeId, b: NodeId) -> FaultPlan {
        self.at(time, FaultAction::LinkDown(a, b))
    }

    /// Schedules the restoration of a cut link.
    pub fn link_up_at(self, time: SimTime, a: NodeId, b: NodeId) -> FaultPlan {
        self.at(time, FaultAction::LinkUp(a, b))
    }

    /// Schedules a partition isolating `island` from every other node.
    pub fn partition_at(self, time: SimTime, island: Vec<NodeId>) -> FaultPlan {
        self.at(time, FaultAction::Partition(island))
    }

    /// Schedules the heal of all partitions and link cuts.
    pub fn heal_at(self, time: SimTime) -> FaultPlan {
        self.at(time, FaultAction::Heal)
    }

    /// Schedules a node compromise of the given malicious kind.
    pub fn compromise_at(self, time: SimTime, node: NodeId, kind: MaliciousKind) -> FaultPlan {
        self.at(time, FaultAction::Compromise(node, kind))
    }

    /// Adds a probabilistic per-link packet fault.
    pub fn packet_fault(
        mut self,
        on: LinkSelector,
        kind: PacketFaultKind,
        probability: f64,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.packet_faults.push(PacketFault {
            on,
            kind,
            probability,
            from,
            until,
        });
        self
    }

    /// Generates Poisson churn for `nodes` inside `[from, until)`: each
    /// node alternates exponentially distributed up-times (mean
    /// `mean_up_secs`) and down-times (mean `mean_down_secs`). Every node
    /// is guaranteed to be back up by `until`, so churn windows end with
    /// the full population alive.
    ///
    /// Draws come from the caller's `rng`, so the same seed and stream
    /// reproduce the same churn schedule.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not strictly positive (via
    /// [`SimRng::exp_secs`]).
    pub fn with_poisson_churn(
        mut self,
        nodes: &[NodeId],
        mean_up_secs: f64,
        mean_down_secs: f64,
        from: SimTime,
        until: SimTime,
        rng: &mut SimRng,
    ) -> FaultPlan {
        for &node in nodes {
            let mut t = from + SimDuration::from_secs_f64(rng.exp_secs(mean_up_secs));
            while t < until {
                self.events.push((t, FaultAction::NodeCrash(node)));
                let down = SimDuration::from_secs_f64(rng.exp_secs(mean_down_secs));
                let back = (t + down).min(until);
                self.events.push((back, FaultAction::NodeRestart(node)));
                t = back + SimDuration::from_secs_f64(rng.exp_secs(mean_up_secs));
            }
        }
        self
    }

    /// The scheduled fault events, in insertion order.
    pub fn events(&self) -> &[(SimTime, FaultAction)] {
        &self.events
    }

    /// The configured packet faults.
    pub fn packet_faults(&self) -> &[PacketFault] {
        &self.packet_faults
    }

    /// Total number of scheduled events and packet-fault rules.
    pub fn len(&self) -> usize {
        self.events.len() + self.packet_faults.len()
    }

    /// `true` when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.packet_faults.is_empty()
    }
}

/// Flips 1–3 payload bytes in place (XOR with a non-zero mask, so the
/// payload always actually changes). No-op on empty payloads.
pub(crate) fn corrupt_payload(payload: &mut [u8], rng: &mut SimRng) {
    if payload.is_empty() {
        return;
    }
    let flips = 1 + (rng.next_u64() % 3);
    for _ in 0..flips {
        let i = rng.range_u64(0, payload.len() as u64) as usize;
        payload[i] ^= (rng.next_u64() % 255 + 1) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_selector_matching() {
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(LinkSelector::All.matches(a, b));
        assert!(LinkSelector::Pair(a, b).matches(a, b));
        assert!(
            LinkSelector::Pair(a, b).matches(b, a),
            "pairs are symmetric"
        );
        assert!(!LinkSelector::Pair(a, b).matches(a, c));
        assert!(LinkSelector::From(a).matches(a, c));
        assert!(!LinkSelector::From(a).matches(c, a));
    }

    #[test]
    fn packet_fault_window_is_half_open() {
        let f = PacketFault {
            on: LinkSelector::All,
            kind: PacketFaultKind::Blackhole,
            probability: 1.0,
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        };
        let (a, b) = (NodeId(0), NodeId(1));
        assert!(!f.applies(SimTime::from_secs(9), a, b));
        assert!(f.applies(SimTime::from_secs(10), a, b));
        assert!(f.applies(SimTime::from_micros(19_999_999), a, b));
        assert!(!f.applies(SimTime::from_secs(20), a, b));
    }

    #[test]
    fn churn_is_deterministic_and_alternates() {
        fn gen(seed: u64) -> Vec<(SimTime, FaultAction)> {
            let mut rng = SimRng::from_seed_and_stream(seed, 1);
            FaultPlan::new()
                .with_poisson_churn(
                    &[NodeId(3), NodeId(4)],
                    10.0,
                    3.0,
                    SimTime::from_secs(5),
                    SimTime::from_secs(120),
                    &mut rng,
                )
                .events()
                .to_vec()
        }
        let a = gen(42);
        assert_eq!(a, gen(42), "same seed, same churn");
        assert_ne!(a, gen(43), "different seed, different churn");
        // Per node: strictly alternating crash/restart, ending up.
        for node in [NodeId(3), NodeId(4)] {
            let seq: Vec<&FaultAction> = a
                .iter()
                .filter(|(_, act)| {
                    matches!(act, FaultAction::NodeCrash(n) | FaultAction::NodeRestart(n) if *n == node)
                })
                .map(|(_, act)| act)
                .collect();
            assert!(!seq.is_empty(), "window long enough to produce churn");
            assert_eq!(seq.len() % 2, 0, "every crash has a restart");
            for pair in seq.chunks(2) {
                assert!(matches!(pair[0], FaultAction::NodeCrash(_)));
                assert!(matches!(pair[1], FaultAction::NodeRestart(_)));
            }
        }
        // Restarts never overshoot the window end.
        for (t, act) in &a {
            if matches!(act, FaultAction::NodeRestart(_)) {
                assert!(*t <= SimTime::from_secs(120));
            }
        }
    }

    #[test]
    fn corrupt_payload_changes_bytes() {
        let mut rng = SimRng::from_seed_and_stream(9, 9);
        let original = vec![0u8; 64];
        let mut payload = original.clone();
        corrupt_payload(&mut payload, &mut rng);
        assert_ne!(payload, original);
        assert_eq!(payload.len(), original.len());
        let mut empty: Vec<u8> = Vec::new();
        corrupt_payload(&mut empty, &mut rng);
        assert!(empty.is_empty());
    }

    #[test]
    fn malicious_kind_byte_round_trips() {
        for kind in [
            MaliciousKind::RogueGateway,
            MaliciousKind::AorHijack,
            MaliciousKind::ForgedAdverts,
        ] {
            assert_eq!(MaliciousKind::from_byte(kind.to_byte()), Some(kind));
        }
        assert_eq!(MaliciousKind::from_byte(0), None);
        assert_eq!(MaliciousKind::from_byte(99), None);
    }

    #[test]
    fn compromise_schedules_like_any_fault() {
        let plan = FaultPlan::new().compromise_at(
            SimTime::from_secs(9),
            NodeId(2),
            MaliciousKind::RogueGateway,
        );
        assert_eq!(plan.events().len(), 1);
        assert!(matches!(
            plan.events()[0],
            (
                t,
                FaultAction::Compromise(NodeId(2), MaliciousKind::RogueGateway)
            ) if t == SimTime::from_secs(9)
        ));
    }

    #[test]
    fn builder_orders_and_counts() {
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(1), NodeId(0))
            .restart_at(SimTime::from_secs(2), NodeId(0))
            .link_down_at(SimTime::from_secs(3), NodeId(0), NodeId(1))
            .link_up_at(SimTime::from_secs(4), NodeId(0), NodeId(1))
            .partition_at(SimTime::from_secs(5), vec![NodeId(0)])
            .heal_at(SimTime::from_secs(6))
            .packet_fault(
                LinkSelector::All,
                PacketFaultKind::Duplicate,
                0.5,
                SimTime::ZERO,
                SimTime::MAX,
            );
        assert_eq!(plan.events().len(), 6);
        assert_eq!(plan.packet_faults().len(), 1);
        assert_eq!(plan.len(), 7);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }
}
