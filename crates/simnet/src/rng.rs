//! Deterministic random-number streams.
//!
//! Every stochastic decision in the simulator (radio loss, MAC backoff,
//! mobility waypoints, workload arrivals) draws from a [`SimRng`] derived
//! from the world seed, so a simulation with a given seed is exactly
//! reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG stream.
///
/// Streams are created by [`SimRng::from_seed_and_stream`], which mixes a
/// global seed with a stream label so that independent components receive
/// decorrelated but reproducible streams.
///
/// # Examples
///
/// ```
/// use siphoc_simnet::rng::SimRng;
///
/// let mut a = SimRng::from_seed_and_stream(42, 1);
/// let mut b = SimRng::from_seed_and_stream(42, 1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Derives a stream from a global seed and a stream label.
    pub fn from_seed_and_stream(seed: u64, stream: u64) -> SimRng {
        // SplitMix64 finalizer decorrelates adjacent (seed, stream) pairs.
        let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng {
            inner: SmallRng::seed_from_u64(z),
        }
    }

    /// Derives a fresh child stream from this one.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.next_u64();
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Returns the next `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Returns a uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Samples an exponentially distributed span with the given mean, in
    /// seconds. Used for Poisson arrival processes in workloads.
    ///
    /// # Panics
    ///
    /// Panics if `mean_secs` is not positive.
    pub fn exp_secs(&mut self, mean_secs: f64) -> f64 {
        assert!(mean_secs > 0.0, "mean must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean_secs * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_identical() {
        let mut a = SimRng::from_seed_and_stream(7, 3);
        let mut b = SimRng::from_seed_and_stream(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::from_seed_and_stream(7, 3);
        let mut b = SimRng::from_seed_and_stream(7, 4);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed_and_stream(1, 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_secs_has_roughly_correct_mean() {
        let mut r = SimRng::from_seed_and_stream(9, 9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp_secs(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} too far from 2.0");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::from_seed_and_stream(5, 5);
        for _ in 0..1000 {
            let v = r.range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&v));
            let u = r.range_u64(10, 20);
            assert!((10..20).contains(&u));
        }
    }
}
