//! Per-node IP-style forwarding table.
//!
//! The forwarding table is owned by the node's network stack and *managed* by
//! whichever routing protocol process runs on the node (AODV installs routes
//! on demand, OLSR keeps them proactively). This mirrors the split between
//! the kernel FIB and the user-space routing daemon in the paper's Linux
//! deployment.

use std::collections::BTreeMap;
use std::fmt;

use crate::net::Addr;
use crate::time::SimTime;

/// A single route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Next hop toward the destination (a direct radio neighbor).
    pub next_hop: Addr,
    /// Path length in hops, 1 for direct neighbors.
    pub hops: u8,
    /// Entry becomes invalid at this instant ([`SimTime::MAX`] = no expiry).
    pub expires: SimTime,
    /// Destination sequence number (AODV freshness; 0 when unused).
    pub seq: u32,
}

/// The forwarding table of one node.
///
/// # Examples
///
/// ```
/// use siphoc_simnet::route::{Route, RoutingTable};
/// use siphoc_simnet::net::Addr;
/// use siphoc_simnet::time::SimTime;
///
/// let mut table = RoutingTable::new();
/// let dst = Addr::manet(5);
/// table.insert(dst, Route { next_hop: Addr::manet(1), hops: 2, expires: SimTime::MAX, seq: 0 });
/// assert_eq!(table.lookup(dst, SimTime::ZERO).unwrap().hops, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: BTreeMap<Addr, Route>,
    default_route: Option<Route>,
    keepalive: Option<crate::time::SimDuration>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Installs or replaces the route for `dst`.
    pub fn insert(&mut self, dst: Addr, route: Route) {
        self.entries.insert(dst, route);
    }

    /// Removes the route for `dst`, returning it if present.
    pub fn remove(&mut self, dst: Addr) -> Option<Route> {
        self.entries.remove(&dst)
    }

    /// Looks up an unexpired route for `dst` at time `now`.
    ///
    /// Falls back to the default route when no specific entry exists.
    pub fn lookup(&self, dst: Addr, now: SimTime) -> Option<Route> {
        match self.entries.get(&dst) {
            Some(r) if r.expires > now => Some(*r),
            _ => match self.default_route {
                Some(r) if r.expires > now => Some(r),
                _ => None,
            },
        }
    }

    /// Sets the keepalive extension for routes that carry data traffic.
    ///
    /// Reactive protocols (AODV) call this with their active-route
    /// timeout: RFC 3561 §6.2 requires an entry's lifetime to be pushed
    /// out each time the route forwards a packet, so routes in active use
    /// never expire mid-flow. Proactive protocols leave it unset — their
    /// periodic updates already refresh entries.
    pub fn set_keepalive(&mut self, extend: Option<crate::time::SimDuration>) {
        self.keepalive = extend;
    }

    /// Looks up an unexpired route for `dst` and, when a keepalive
    /// extension is configured, pushes the entry's expiry out to
    /// `now + keepalive`. The forwarding path uses this so data traffic
    /// keeps its own routes alive.
    pub fn lookup_active(&mut self, dst: Addr, now: SimTime) -> Option<Route> {
        if let Some(extend) = self.keepalive {
            if let Some(r) = self.entries.get_mut(&dst) {
                if r.expires > now {
                    let refreshed = now + extend;
                    if r.expires < refreshed {
                        r.expires = refreshed;
                    }
                    return Some(*r);
                }
            }
        }
        self.lookup(dst, now)
    }

    /// Looks up a specific (non-default) unexpired route for `dst`.
    pub fn lookup_specific(&self, dst: Addr, now: SimTime) -> Option<Route> {
        match self.entries.get(&dst) {
            Some(r) if r.expires > now => Some(*r),
            _ => None,
        }
    }

    /// Returns a mutable reference to the entry for `dst`, if present
    /// (expired entries included, so callers can refresh them).
    pub fn get_mut(&mut self, dst: Addr) -> Option<&mut Route> {
        self.entries.get_mut(&dst)
    }

    /// Sets or clears the default route (used by the Connection Provider to
    /// point Internet-bound traffic at the SIPHoc tunnel).
    pub fn set_default(&mut self, route: Option<Route>) {
        self.default_route = route;
    }

    /// Returns the default route, if one is installed and unexpired.
    pub fn default_route(&self, now: SimTime) -> Option<Route> {
        match self.default_route {
            Some(r) if r.expires > now => Some(r),
            _ => None,
        }
    }

    /// Drops every entry whose next hop is `neighbor`, returning the
    /// affected destinations. Routing protocols call this on link breaks.
    pub fn invalidate_via(&mut self, neighbor: Addr) -> Vec<Addr> {
        let dead: Vec<Addr> = self
            .entries
            .iter()
            .filter(|(_, r)| r.next_hop == neighbor)
            .map(|(d, _)| *d)
            .collect();
        for d in &dead {
            self.entries.remove(d);
        }
        dead
    }

    /// Removes all expired entries.
    pub fn purge_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, r| r.expires > now);
        if let Some(r) = self.default_route {
            if r.expires <= now {
                self.default_route = None;
            }
        }
    }

    /// Removes every entry including the default route.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.default_route = None;
    }

    /// Number of specific (non-default) entries, including expired ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no specific entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(destination, route)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Addr, &Route)> {
        self.entries.iter()
    }
}

impl fmt::Display for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rows: Vec<_> = self.entries.iter().collect();
        rows.sort_by_key(|(d, _)| **d);
        writeln!(f, "destination      next-hop         hops seq")?;
        for (dst, r) in rows {
            writeln!(
                f,
                "{:<16} {:<16} {:<4} {}",
                dst.to_string(),
                r.next_hop.to_string(),
                r.hops,
                r.seq
            )?;
        }
        if let Some(r) = self.default_route {
            writeln!(
                f,
                "default          {:<16} {:<4} {}",
                r.next_hop.to_string(),
                r.hops,
                r.seq
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn route(next: u32, hops: u8, expires: SimTime) -> Route {
        Route {
            next_hop: Addr::manet(next),
            hops,
            expires,
            seq: 0,
        }
    }

    #[test]
    fn lookup_respects_expiry() {
        let mut t = RoutingTable::new();
        let dst = Addr::manet(9);
        t.insert(dst, route(1, 2, SimTime::from_secs(10)));
        assert!(t.lookup(dst, SimTime::from_secs(5)).is_some());
        assert!(t.lookup(dst, SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn default_route_is_fallback_only() {
        let mut t = RoutingTable::new();
        let dst = Addr::manet(9);
        t.set_default(Some(route(3, 1, SimTime::MAX)));
        assert_eq!(
            t.lookup(dst, SimTime::ZERO).unwrap().next_hop,
            Addr::manet(3)
        );
        t.insert(dst, route(1, 2, SimTime::MAX));
        assert_eq!(
            t.lookup(dst, SimTime::ZERO).unwrap().next_hop,
            Addr::manet(1)
        );
    }

    #[test]
    fn invalidate_via_removes_matching_entries() {
        let mut t = RoutingTable::new();
        t.insert(Addr::manet(5), route(1, 2, SimTime::MAX));
        t.insert(Addr::manet(6), route(1, 3, SimTime::MAX));
        t.insert(Addr::manet(7), route(2, 1, SimTime::MAX));
        let mut dead = t.invalidate_via(Addr::manet(1));
        dead.sort();
        assert_eq!(dead, vec![Addr::manet(5), Addr::manet(6)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn purge_expired_removes_stale_entries_and_default() {
        let mut t = RoutingTable::new();
        let now = SimTime::from_secs(100);
        t.insert(Addr::manet(1), route(1, 1, SimTime::from_secs(50)));
        t.insert(Addr::manet(2), route(2, 1, now + SimDuration::from_secs(1)));
        t.set_default(Some(route(3, 1, SimTime::from_secs(50))));
        t.purge_expired(now);
        assert_eq!(t.len(), 1);
        assert!(t.default_route(now).is_none());
    }

    #[test]
    fn lookup_active_extends_expiry_only_with_keepalive() {
        let mut t = RoutingTable::new();
        let dst = Addr::manet(9);
        t.insert(dst, route(1, 2, SimTime::from_secs(10)));
        // Without keepalive: plain lookup, no refresh.
        assert!(t.lookup_active(dst, SimTime::from_secs(5)).is_some());
        assert!(t.lookup_active(dst, SimTime::from_secs(10)).is_none());

        t.insert(dst, route(1, 2, SimTime::from_secs(10)));
        t.set_keepalive(Some(SimDuration::from_secs(6)));
        assert!(t.lookup_active(dst, SimTime::from_secs(9)).is_some());
        // Use at t=9 pushed the expiry to t=15.
        assert!(t.lookup(dst, SimTime::from_secs(14)).is_some());
        assert!(t.lookup(dst, SimTime::from_secs(15)).is_none());
        // An already-expired route is not resurrected.
        assert!(t.lookup_active(dst, SimTime::from_secs(20)).is_none());
    }

    #[test]
    fn display_lists_routes() {
        let mut t = RoutingTable::new();
        t.insert(Addr::manet(5), route(1, 2, SimTime::MAX));
        let s = t.to_string();
        assert!(s.contains("10.0.0.6"));
        assert!(s.contains("10.0.0.2"));
    }
}
