//! The process (agent) model.
//!
//! The paper's system runs as "five components running as independent
//! operating system processes within a node". The simulator mirrors this: a
//! node hosts any number of [`Process`] implementations that communicate only
//! through datagrams (including loopback datagrams between processes on the
//! same node) and node-local [`LocalEvent`] signals — the analogue of the
//! netlink/ioctl channels the Linux deployment used.
//!
//! Processes are driven by callbacks and act on the world exclusively through
//! the [`Ctx`] handed to each callback. Side effects (sends, timers) are
//! applied by the world after the callback returns, keeping dispatch
//! re-entrancy-free and deterministic.

use crate::net::{Addr, Datagram, L2Dst, SocketAddr};
use crate::rng::SimRng;
use crate::route::RoutingTable;
use crate::stats::NodeStats;
use crate::time::{SimDuration, SimTime};

use crate::node::NodeId;

/// A protocol or application process hosted on a node.
///
/// All callbacks default to no-ops so implementations only override what
/// they react to. Implementations should treat timer tokens they no longer
/// expect as stale and ignore them — timers cannot be cancelled.
pub trait Process {
    /// Short name used in traces and diagnostics (e.g. `"aodv"`, `"proxy"`).
    fn name(&self) -> &'static str;

    /// Called once when the process is started.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// Called for every datagram delivered to a port this process has bound.
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        let _ = (ctx, dgram);
    }

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called for node-local events emitted by other processes on this node
    /// or by the network stack.
    fn on_local_event(&mut self, ctx: &mut Ctx<'_>, ev: &LocalEvent) {
        let _ = (ctx, ev);
    }
}

/// Node-local signals between processes and the network stack.
///
/// These model the kernel notifications (`libipq` verdicts, route change
/// netlink messages, 802.11 TX status) the real deployment relied on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalEvent {
    /// The stack has a packet for `dst` but no route; an on-demand routing
    /// protocol should start discovery.
    RouteNeeded {
        /// Destination lacking a route.
        dst: Addr,
    },
    /// A route toward `dst` was installed.
    RouteAdded {
        /// Destination now reachable.
        dst: Addr,
    },
    /// The route toward `dst` was lost (link break / RERR).
    RouteLost {
        /// Destination no longer reachable.
        dst: Addr,
    },
    /// A layer-2 unicast to `neighbor` exhausted its retries — the 802.11
    /// TX-failure feedback AODV uses for link-break detection.
    LinkTxFailed {
        /// The unreachable neighbor.
        neighbor: Addr,
    },
    /// The node was powered back up after a failure; processes should re-arm
    /// their periodic timers.
    NodeRestarted,
    /// Free-form signal between cooperating processes.
    Custom {
        /// Discriminator understood by the receiver.
        kind: &'static str,
        /// Opaque payload.
        data: Vec<u8>,
    },
}

/// Side effects queued by a [`Ctx`]; applied by the world after dispatch.
/// Public only so external unit tests can hold the effect buffer
/// [`Ctx::for_test`] borrows; not part of the stable API.
#[doc(hidden)]
#[derive(Debug)]
pub enum Effect {
    Bind(u16),
    Send(Datagram),
    SendLink { dst: L2Dst, dgram: Datagram },
    SetTimer { delay: SimDuration, token: u64 },
    Emit(LocalEvent),
    AddLocalAddr(Addr),
    RemoveLocalAddr(Addr),
    ClaimPublicAddr(Addr),
    ReleasePublicAddr(Addr),
    SetDefaultHandler(bool),
    Reinject(Datagram),
}

/// The capability handle a process uses to observe and act on its node.
///
/// `Ctx` is constructed by the world for the duration of one callback.
/// Mutations of the routing table are applied synchronously; everything else
/// (sends, timers, local events) takes effect when the callback returns.
#[derive(Debug)]
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) addr: Addr,
    pub(crate) has_wired: bool,
    #[allow(dead_code)]
    pub(crate) proc_index: usize,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) routes: &'a mut RoutingTable,
    pub(crate) stats: &'a mut NodeStats,
    pub(crate) obs: &'a mut siphoc_obs::NodeObs,
    pub(crate) effects: &'a mut Vec<Effect>,
}

impl<'a> Ctx<'a> {
    /// Builds a context over borrowed parts — test support for unit
    /// testing [`Process`] implementations outside a running world.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn for_test(
        now: SimTime,
        node: NodeId,
        addr: Addr,
        rng: &'a mut SimRng,
        routes: &'a mut RoutingTable,
        stats: &'a mut NodeStats,
        obs: &'a mut siphoc_obs::NodeObs,
        effects: &'a mut Vec<Effect>,
    ) -> Ctx<'a> {
        Ctx {
            now,
            node,
            addr,
            has_wired: false,
            proc_index: 0,
            rng,
            routes,
            stats,
            obs,
            effects,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The hosting node's identifier.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// The node's primary network address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Whether the hosting node has a wired Internet uplink (gateway
    /// candidates in SIPHoc terms).
    pub fn has_wired(&self) -> bool {
        self.has_wired
    }

    /// The node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The node's forwarding table (shared with the network stack).
    pub fn routes(&mut self) -> &mut RoutingTable {
        self.routes
    }

    /// Read-only view of the forwarding table.
    pub fn routes_ref(&self) -> &RoutingTable {
        self.routes
    }

    /// The node's traffic counters.
    pub fn stats(&mut self) -> &mut NodeStats {
        self.stats
    }

    /// The node's observability shard: typed metrics and span tracing.
    /// Every method is a no-op shell unless the `obs` feature is on, so
    /// instrumentation sites need no `cfg` guards.
    pub fn obs(&mut self) -> &mut siphoc_obs::NodeObs {
        self.obs
    }

    /// Current sim time in microseconds — the timestamp unit spans use.
    pub fn now_us(&self) -> u64 {
        self.now.as_micros()
    }

    /// Opens an observability span at the current sim time. Returns
    /// `SpanId::NONE` (and records nothing) unless tracing is enabled on an
    /// obs build, so call sites need no guards.
    pub fn span_enter(
        &mut self,
        cat: siphoc_obs::SpanCat,
        name: &'static str,
    ) -> siphoc_obs::SpanId {
        let t = self.now.as_micros();
        self.obs.span_enter(cat, name, t)
    }

    /// Closes a span at the current sim time; safe on `SpanId::NONE`.
    pub fn span_exit(&mut self, id: siphoc_obs::SpanId, ok: bool) {
        let t = self.now.as_micros();
        self.obs.span_exit(id, t, ok);
    }

    /// Records a zero-duration instant event at the current sim time.
    pub fn span_instant(
        &mut self,
        cat: siphoc_obs::SpanCat,
        name: &'static str,
        corr: Option<&str>,
    ) {
        let t = self.now.as_micros();
        self.obs.span_instant(cat, name, t, corr);
    }

    /// Binds a UDP-like port to this process. Datagrams addressed to the
    /// node on that port are delivered to [`Process::on_datagram`].
    ///
    /// Binding a port already bound by another process on the node panics at
    /// apply time: port collisions are configuration bugs.
    pub fn bind(&mut self, port: u16) {
        self.effects.push(Effect::Bind(port));
    }

    /// Sends a datagram through the node's network stack: loopback, radio
    /// (with multihop forwarding), wired uplink or tunnel — whatever the
    /// stack's forwarding rules select.
    pub fn send(&mut self, dgram: Datagram) {
        self.effects.push(Effect::Send(dgram));
    }

    /// Convenience for [`Ctx::send`]: builds the datagram with this node's
    /// primary address as source.
    pub fn send_to(&mut self, dst: SocketAddr, src_port: u16, payload: Vec<u8>) {
        let src = SocketAddr::new(self.addr, src_port);
        self.send(Datagram::new(src, dst, payload));
    }

    /// Sends a datagram to another process on this same node via loopback.
    pub fn send_local(&mut self, dst_port: u16, src_port: u16, payload: Vec<u8>) {
        let src = SocketAddr::new(Addr::LOOPBACK, src_port);
        let dst = SocketAddr::new(Addr::LOOPBACK, dst_port);
        self.send(Datagram::new(src, dst, payload));
    }

    /// Transmits a raw layer-2 frame, bypassing the forwarding table.
    /// Routing protocols use this for link-local control traffic.
    pub fn send_link(&mut self, dst: L2Dst, dgram: Datagram) {
        self.effects.push(Effect::SendLink { dst, dgram });
    }

    /// Schedules [`Process::on_timer`] with `token` after `delay`.
    ///
    /// Timers cannot be cancelled; keep per-token generation counters and
    /// ignore stale firings instead.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::SetTimer { delay, token });
    }

    /// Emits a node-local event to every *other* process on this node.
    pub fn emit(&mut self, ev: LocalEvent) {
        self.effects.push(Effect::Emit(ev));
    }

    /// Adds an alias address to this node (e.g. the public address leased to
    /// a tunnel client); datagrams to it are then delivered locally.
    pub fn add_local_addr(&mut self, addr: Addr) {
        self.effects.push(Effect::AddLocalAddr(addr));
    }

    /// Removes an alias address added with [`Ctx::add_local_addr`].
    pub fn remove_local_addr(&mut self, addr: Addr) {
        self.effects.push(Effect::RemoveLocalAddr(addr));
    }

    /// Claims a public address on behalf of this process: the world routes
    /// backbone traffic for `addr` to this node, and the stack hands any
    /// datagram addressed to it to this process regardless of port. Used by
    /// the gateway's tunnel server for leased client addresses.
    pub fn claim_public_addr(&mut self, addr: Addr) {
        self.effects.push(Effect::ClaimPublicAddr(addr));
    }

    /// Releases a claim made with [`Ctx::claim_public_addr`].
    pub fn release_public_addr(&mut self, addr: Addr) {
        self.effects.push(Effect::ReleasePublicAddr(addr));
    }

    /// Registers (or unregisters) this process as the node's default
    /// handler: datagrams the stack cannot route (public destination, no
    /// uplink) are delivered to it instead of being dropped. The SIPHoc
    /// Connection Provider's tunnel client uses this to capture
    /// Internet-bound traffic, mirroring the paper's default route onto the
    /// tunnel interface.
    pub fn set_default_handler(&mut self, enabled: bool) {
        self.effects.push(Effect::SetDefaultHandler(enabled));
    }

    /// Re-injects a datagram into the node's forwarding path as if it had
    /// just been produced locally. Tunnel endpoints use this to forward
    /// decapsulated traffic.
    pub fn reinject(&mut self, dgram: Datagram) {
        self.effects.push(Effect::Reinject(dgram));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;

    impl Process for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    #[test]
    fn default_callbacks_are_noops() {
        // Exercises the default Process impls through a minimal Ctx.
        let mut rng = SimRng::from_seed_and_stream(0, 0);
        let mut routes = RoutingTable::new();
        let mut stats = NodeStats::default();
        let mut obs = siphoc_obs::NodeObs::default();
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            node: NodeId(0),
            addr: Addr::manet(0),
            has_wired: false,
            proc_index: 0,
            rng: &mut rng,
            routes: &mut routes,
            stats: &mut stats,
            obs: &mut obs,
            effects: &mut effects,
        };
        let mut p = Probe;
        p.on_start(&mut ctx);
        p.on_timer(&mut ctx, 1);
        p.on_local_event(&mut ctx, &LocalEvent::NodeRestarted);
        assert!(effects.is_empty());
    }

    #[test]
    fn ctx_queues_effects() {
        let mut rng = SimRng::from_seed_and_stream(0, 0);
        let mut routes = RoutingTable::new();
        let mut stats = NodeStats::default();
        let mut obs = siphoc_obs::NodeObs::default();
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            node: NodeId(3),
            addr: Addr::manet(3),
            has_wired: false,
            proc_index: 1,
            rng: &mut rng,
            routes: &mut routes,
            stats: &mut stats,
            obs: &mut obs,
            effects: &mut effects,
        };
        ctx.bind(5060);
        ctx.send_to(SocketAddr::new(Addr::manet(1), 5060), 5060, b"hi".to_vec());
        ctx.set_timer(SimDuration::from_secs(1), 42);
        ctx.emit(LocalEvent::RouteNeeded {
            dst: Addr::manet(9),
        });
        assert_eq!(effects.len(), 4);
        match &effects[1] {
            Effect::Send(d) => {
                assert_eq!(d.src.addr, Addr::manet(3));
                assert_eq!(d.payload, b"hi");
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn send_local_uses_loopback_endpoints() {
        let mut rng = SimRng::from_seed_and_stream(0, 0);
        let mut routes = RoutingTable::new();
        let mut stats = NodeStats::default();
        let mut obs = siphoc_obs::NodeObs::default();
        let mut effects = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            node: NodeId(0),
            addr: Addr::manet(0),
            has_wired: false,
            proc_index: 0,
            rng: &mut rng,
            routes: &mut routes,
            stats: &mut stats,
            obs: &mut obs,
            effects: &mut effects,
        };
        ctx.send_local(427, 5555, b"q".to_vec());
        match &effects[0] {
            Effect::Send(d) => {
                assert!(d.src.addr.is_loopback());
                assert!(d.dst.addr.is_loopback());
                assert_eq!(d.dst.port, 427);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }
}
