//! Sharded single-world execution: conservative-lookahead windows,
//! conflict components, deterministic replay.
//!
//! [`World::run_until_threads`] runs the same event-for-event simulation
//! as [`World::run_until`], byte-identically — same trace, same `(time,
//! seq)` order, same event count — while executing independent regions of
//! the world on worker threads. The algorithm, in three steps per
//! *window*:
//!
//! 1. **Window.** Pop every queued event in `[t0, t0 + h_min)` where `t0`
//!    is the next event time and `h_min = mac_overhead + prop_delay` is
//!    the cheapest possible radio hop. Within such a window an event's
//!    causal cone can cross between nodes at most through *one* radio
//!    delivery layer (any further hop costs at least a full MAC overhead
//!    and lands at or beyond the window end), so all its effects stay
//!    inside one radio disk around its node — the *one-disk-expansion*
//!    bound that makes conflict analysis local.
//!
//! 2. **Components.** Union-find the popped events: events sharing a
//!    node, events whose radio disks can overlap (coarse cells of
//!    3×range: disks of radius ≤ 1.25×range can only meet across
//!    same-or-adjacent cells), and every event on or near a wired node
//!    (the wired backbone shares one global address map, so all its
//!    readers and writers serialize in a single "wired" component). Each
//!    component's events — plus any within-window children they spawn —
//!    touch a node set disjoint from every other component's, so
//!    components execute concurrently with no synchronization at all.
//!
//! 3. **Replay.** Workers record, per executed event, its trace entries,
//!    address-map operations and children (in birth order, split into
//!    within-window ones they executed themselves and future ones). The
//!    coordinator then replays the records in global `(time, seq)` order
//!    on a merge heap, assigning child sequence numbers from the world
//!    counter exactly where the sequential loop would have — which is
//!    what reconstructs the identical schedule, trace, and queue state.
//!
//! Windows that the analysis cannot prove independent — packet faults
//! active, carrier sense on (its deferral scans read neighbors'
//! `tx_until` across components), fault/replan events present, the
//! spatial index due for a rebuild, or simply too few events to be worth
//! fanning out — fall back to the sequential engine for that window, so
//! correctness never rests on the fast path.
//!
//! # Sharing caveat
//!
//! Worker threads touch disjoint node sets, which makes the usual `Send`
//! bounds unnecessary *provided* process state is node-local (the `Ctx`
//! contract). Processes on different nodes must not share interior-
//! mutable state (`Rc`/`RefCell`) with each other; the stock stack and
//! scenario builders construct per-node state and satisfy this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use crate::exec::{
    event_nodes, ChildSlot, Engine, EngineOut, EngineScratch, Event, GridAccess, MapAccess, MapOp,
    NodesAccess, Rec, WorkerOut,
};
use crate::fasthash::FastMap;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::world::World;

/// Don't fan out windows smaller than this; the bucket/replay machinery
/// would cost more than it saves.
const PAR_MIN_WINDOW_EVENTS: usize = 4;

/// Rank offset separating within-window children from window-initial
/// events in a worker's execution heap. Initial events rank by their true
/// global sequence number; children rank by birth order above this
/// ceiling — sound because every child's eventual sequence number exceeds
/// every pre-window one (the counter only grows), and birth order within
/// a bucket matches the sequential assignment order (workers execute
/// bucket events in the sequential order, and each event births children
/// in the same intra-event order).
const CHILD_RANK_BASE: u64 = u64::MAX / 2;

/// One popped window-initial event with its original queue key.
struct Init {
    time: SimTime,
    seq: u64,
    event: Option<Event>,
}

/// Per-bucket execution state, reused across windows.
#[derive(Default)]
struct Bucket {
    inits: Vec<Init>,
    /// Execution heap: `(time, rank, index)`; `rank < CHILD_RANK_BASE`
    /// means `index` is an init, otherwise a child slot.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    children: Vec<ChildSlot>,
    out: WorkerOut,
    eng: EngineOut,
}

impl Bucket {
    fn reset(&mut self) {
        self.inits.clear();
        self.heap.clear();
        self.children.clear();
        self.out.clear();
        self.eng.clear();
    }
}

/// Everything a worker needs to execute one bucket of one window. Plain
/// pointers/copies so the struct can cross the task channel without
/// borrowing the world; validity is a protocol invariant (the coordinator
/// blocks on the done channel before touching the world again).
struct WindowShared {
    cfg: *const crate::world::WorldConfig,
    nodes_ptr: *mut crate::node::Node,
    nodes_len: usize,
    radio_ids_ptr: *const NodeId,
    radio_ids_len: usize,
    link_cuts: *const std::collections::BTreeSet<(u32, u32)>,
    partition: *const Option<std::collections::BTreeSet<u32>>,
    addr_map: *const FastMap<crate::net::Addr, NodeId>,
    grid: *const crate::grid::NeighborGrid,
    trace_enabled: bool,
    /// Exclusive end of the window: children at `time >= end` are future.
    end: SimTime,
}

struct Task {
    shared: *const WindowShared,
    bucket: *mut Bucket,
}

// SAFETY: the coordinator guarantees (a) the pointed-to data outlives the
// task (it blocks on worker completion before the window state is
// dropped or the world mutated) and (b) no two live tasks' buckets
// overlap, and bucket node sets are disjoint (conflict components).
unsafe impl Send for Task {}

/// Executes every event of one bucket in sequential-equivalent order,
/// recording outputs for replay.
///
/// # Safety
///
/// `shared`'s pointers must be valid, the bucket's component must be
/// node-disjoint from every other concurrently running bucket, and no
/// other thread may mutate world state for the duration of the call.
unsafe fn run_bucket(shared: &WindowShared, b: &mut Bucket, scratch: &mut EngineScratch) {
    let mut born: u64 = 0;
    for (i, init) in b.inits.iter().enumerate() {
        b.heap.push(Reverse((init.time, init.seq, i as u32)));
    }
    while let Some(Reverse((time, rank, idx))) = b.heap.pop() {
        let event = if rank < CHILD_RANK_BASE {
            b.inits[idx as usize]
                .event
                .take()
                .expect("init executed twice")
        } else {
            match std::mem::replace(&mut b.children[idx as usize], ChildSlot::Taken) {
                ChildSlot::Pending(ev) => ev,
                _ => unreachable!("child slot executed twice"),
            }
        };
        let trace_start = b.out.trace.len() as u32;
        let child_start = b.children.len() as u32;
        let map_start = b.eng.map_ops.len() as u32;
        {
            let mut engine = Engine {
                cfg: &*shared.cfg,
                now: time,
                nodes: NodesAccess::from_raw(shared.nodes_ptr, shared.nodes_len),
                radio_ids: std::slice::from_raw_parts(shared.radio_ids_ptr, shared.radio_ids_len),
                link_cuts: &*shared.link_cuts,
                partition: &*shared.partition,
                // Windows with packet faults never parallelize.
                packet_faults: &[],
                fault_rng: None,
                map: MapAccess::Overlay(&*shared.addr_map),
                grid: GridAccess::Frozen(&*shared.grid),
                trace_enabled: shared.trace_enabled,
                scratch,
                out: &mut b.eng,
            };
            engine.dispatch_and_flush(event);
        }
        b.out.trace.append(&mut b.eng.trace);
        for (t, ev) in b.eng.children.drain(..) {
            if t < shared.end {
                let slot = b.children.len() as u32;
                b.children.push(ChildSlot::Pending(ev));
                b.heap.push(Reverse((t, CHILD_RANK_BASE + born, slot)));
                born += 1;
            } else {
                b.children.push(ChildSlot::Future(t, ev));
            }
        }
        let rec_idx = b.out.recs.len() as u32;
        b.out.recs.push(Rec {
            time,
            events_delta: b.eng.events_delta,
            trace_range: (trace_start, b.out.trace.len() as u32),
            child_range: (child_start, b.children.len() as u32),
            map_range: (map_start, b.eng.map_ops.len() as u32),
        });
        b.eng.events_delta = 0;
        if rank < CHILD_RANK_BASE {
            b.out.init_recs.push((rank, rec_idx));
        } else {
            b.children[idx as usize] = ChildSlot::Inline(rec_idx);
        }
    }
    // Map ops stay in the engine buffer during the bucket so overlay
    // lookups see earlier claims; hand them to the replay output now.
    std::mem::swap(&mut b.out.map_ops, &mut b.eng.map_ops);
}

/// Scratch state for per-window conflict analysis, reused across windows.
#[derive(Default)]
struct Analysis {
    /// Union-find parents over `inits.len() + 1` entries; the last entry
    /// is the virtual root of the wired component.
    parent: Vec<u32>,
    /// Epoch-stamped node → first-init map (avoids an O(nodes) clear per
    /// window).
    node_stamp: Vec<u32>,
    node_first: Vec<u32>,
    epoch: u32,
    /// Coarse spatial cells (3 × radio range) → first occupant.
    cells: FastMap<(i64, i64), u32>,
    /// Root → bucket assignment for this window.
    bucket_of_root: FastMap<u32, usize>,
}

impl Analysis {
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins (no ranks needed at these
            // sizes, and the winner must not depend on call order).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

impl World {
    /// As [`run_until`](World::run_until), but executes independent
    /// regions of the world on up to `threads` threads. The result —
    /// packet trace, event count, queue state, every node's RNG — is
    /// byte-identical to the single-threaded run; see the
    /// [module docs](crate::shard) for the windowing argument.
    /// `threads <= 1` is exactly `run_until`.
    ///
    /// Processes on different nodes must not share interior-mutable
    /// state with each other (node-local state only — the `Ctx`
    /// contract); the stock protocol stack satisfies this.
    pub fn run_until_threads(&mut self, t: SimTime, threads: usize) {
        let threads = threads.clamp(1, 64);
        let h_min = self.cfg.radio.mac_overhead + self.cfg.radio.prop_delay;
        // The lookahead bound needs a positive minimum hop cost; a
        // degenerate radio config gets the plain sequential loop.
        if threads == 1 || h_min.is_zero() {
            self.run_until(t);
            return;
        }

        // Wired radio nodes participate in radio fan-outs *and* the
        // global address map, so any event whose disk can reach one joins
        // the wired component. Interface flags are fixed at creation.
        let wired_radio: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.has_wired && n.has_radio)
            .map(|n| n.id)
            .collect();

        let mut analysis = Analysis::default();
        let mut inits: Vec<Init> = Vec::new();
        let mut buckets: Vec<Bucket> = (0..threads).map(|_| Bucket::default()).collect();
        let mut coord_scratch = EngineScratch::default();

        let n_workers = threads - 1;
        let (done_tx, done_rx) = mpsc::channel::<()>();

        std::thread::scope(|scope| {
            // Task senders live inside the scope: dropping them after the
            // window loop is what lets the workers' `recv` fail and the
            // scope join.
            let mut task_txs: Vec<mpsc::Sender<Task>> = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let (tx, rx) = mpsc::channel::<Task>();
                task_txs.push(tx);
                let done = done_tx.clone();
                scope.spawn(move || {
                    let mut scratch = EngineScratch::default();
                    while let Ok(task) = rx.recv() {
                        // SAFETY: see `Task`'s Send justification; the
                        // coordinator upholds the window protocol.
                        unsafe { run_bucket(&*task.shared, &mut *task.bucket, &mut scratch) };
                        if done.send(()).is_err() {
                            break;
                        }
                    }
                });
            }

            while let Some(Reverse(q)) = self.queue.peek() {
                if q.time > t {
                    break;
                }
                let t0 = q.time;
                let end = SimTime::from_micros(
                    (t0 + h_min)
                        .as_micros()
                        .min(t.as_micros().saturating_add(1)),
                );

                // Pop the window's initial events.
                inits.clear();
                while let Some(Reverse(q)) = self.queue.peek() {
                    if q.time >= end {
                        break;
                    }
                    let Reverse(q) = self.queue.pop().expect("peeked entry vanished");
                    let event = self.take_slot(q.slot);
                    inits.push(Init {
                        time: q.time,
                        seq: q.seq,
                        event: Some(event),
                    });
                }

                let parallel = self.window_eligible(&inits, t0, end)
                    && self.partition_window(&mut analysis, &inits, t0, &wired_radio, threads);

                if !parallel {
                    self.seq_windows += 1;
                    for init in inits.drain(..) {
                        self.requeue(init.time, init.seq, init.event.expect("init taken"));
                    }
                    self.run_window_sequential(end);
                    continue;
                }
                self.par_windows += 1;

                // Distribute inits to their component's bucket.
                for b in buckets.iter_mut() {
                    b.reset();
                }
                let wired_root = analysis.find(inits.len() as u32);
                let wired_bucket = analysis.bucket_of_root.get(&wired_root).copied();
                for (i, init) in inits.drain(..).enumerate() {
                    let root = analysis.find(i as u32);
                    let b = analysis.bucket_of_root[&root];
                    buckets[b].inits.push(init);
                }

                let shared = WindowShared {
                    cfg: &self.cfg,
                    nodes_ptr: self.nodes.as_mut_ptr(),
                    nodes_len: self.nodes.len(),
                    radio_ids_ptr: self.radio_ids.as_ptr(),
                    radio_ids_len: self.radio_ids.len(),
                    link_cuts: &self.link_cuts,
                    partition: &self.partition,
                    addr_map: &self.addr_map,
                    grid: &self.grid,
                    trace_enabled: self.trace.is_enabled(),
                    end,
                };

                // Fan the non-empty buckets out; bucket 0 runs here.
                let bucket_base = buckets.as_mut_ptr();
                let mut outstanding = 0usize;
                for w in 1..threads {
                    // SAFETY: disjoint elements of `buckets`; the borrow
                    // is released when the done channel confirms below.
                    let bp = unsafe { bucket_base.add(w) };
                    if unsafe { (*bp).inits.is_empty() } {
                        continue;
                    }
                    task_txs[w - 1]
                        .send(Task {
                            shared: &shared,
                            bucket: bp,
                        })
                        .expect("worker thread died");
                    outstanding += 1;
                }
                if !buckets[0].inits.is_empty() {
                    // SAFETY: bucket 0 is never sent to a worker; the
                    // shared window state is valid for this call.
                    unsafe { run_bucket(&shared, &mut buckets[0], &mut coord_scratch) };
                }
                for _ in 0..outstanding {
                    done_rx.recv().expect("worker thread died");
                }

                self.replay_window(&mut buckets, wired_bucket);
            }
            drop(task_txs);
        });
        self.now = t;
    }

    /// As [`run_for`](World::run_for) with [`run_until_threads`].
    pub fn run_for_threads(&mut self, d: crate::time::SimDuration, threads: usize) {
        self.run_until_threads(self.now + d, threads);
    }

    /// Cheap structural checks: can this window even be considered for
    /// parallel execution?
    fn window_eligible(&mut self, inits: &[Init], t0: SimTime, end: SimTime) -> bool {
        if inits.len() < PAR_MIN_WINDOW_EVENTS {
            return false;
        }
        // Packet faults draw from one global RNG stream in strict event
        // order; carrier sense reads neighbors' `tx_until` across
        // components. Both serialize the world.
        if !self.packet_faults.is_empty() || self.cfg.radio.carrier_sense {
            return false;
        }
        // Global-state events (fault application, mobility replans)
        // mutate what every worker reads; run such windows sequentially.
        if inits.iter().any(|i| {
            matches!(
                i.event.as_ref().expect("init taken"),
                Event::Fault(_) | Event::Replan { .. }
            )
        }) {
            return false;
        }
        if self.cfg.use_spatial_index {
            // Freeze the grid for the window: rebuild now if a query
            // inside it would have (rebuild timing is trace-invisible —
            // queries yield exact-filtered supersets — so rebuilding at
            // the window boundary is free). If even a fresh build can't
            // cover the window (degenerate drift), serialize.
            self.grid.ensure_fresh(&self.nodes, t0);
            let last = SimTime::from_micros(end.as_micros().saturating_sub(1));
            if self.grid.needs_rebuild(last) {
                return false;
            }
        }
        true
    }

    /// Builds conflict components over the window's initial events and
    /// assigns them to buckets. Returns false when the window collapses
    /// into too few components to be worth fanning out.
    fn partition_window(
        &mut self,
        a: &mut Analysis,
        inits: &[Init],
        t0: SimTime,
        wired_radio: &[NodeId],
        threads: usize,
    ) -> bool {
        let n = inits.len() as u32;
        let wired_root = n;
        a.parent.clear();
        a.parent.extend(0..=n);
        a.epoch = a.epoch.wrapping_add(1);
        if a.epoch == 0 {
            // Wrapped: stale stamps could collide; reset them all.
            a.node_stamp.clear();
            a.epoch = 1;
        }
        if a.node_stamp.len() < self.nodes.len() {
            a.node_stamp.resize(self.nodes.len(), 0);
            a.node_first.resize(self.nodes.len(), 0);
        }
        a.cells.clear();

        // Conflict radius: an event's writes stay within one radio disk
        // of its node, and drift-inflated disks reach at most 1.25 ×
        // range (the grid rebuild budget bounds drift at 0.25 × range).
        // Two disks can therefore only overlap when their centers are
        // within 2.5 × range — always same-or-adjacent cells at 3 ×.
        let cell = 3.0 * self.cfg.radio.range.max(1e-9);
        // Seed wired radio nodes as cell occupants of the wired
        // component, so any event whose disk could reach one (and with
        // it, the shared address map via an inline gateway delivery)
        // serializes with the backbone.
        for &id in wired_radio {
            let pos = self.nodes[id.0 as usize].mobility.position(t0);
            let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
            if let Some(&first) = a.cells.get(&c) {
                a.union(first, wired_root);
            } else {
                a.cells.insert(c, wired_root);
            }
        }

        for (i, init) in inits.iter().enumerate() {
            let i = i as u32;
            let event = init.event.as_ref().expect("init taken");
            for &node in event_nodes(event) {
                let ni = node.0 as usize;
                // Same node ⇒ same component.
                if a.node_stamp[ni] == a.epoch {
                    a.union(i, a.node_first[ni]);
                } else {
                    a.node_stamp[ni] = a.epoch;
                    a.node_first[ni] = i;
                }
                let nd = &self.nodes[ni];
                // Backbone participants serialize with the wired
                // component (shared address map).
                if nd.has_wired {
                    a.union(i, wired_root);
                }
                // Overlapping radio disks ⇒ same component.
                if nd.has_radio {
                    let pos = nd.mobility.position(t0);
                    let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            if let Some(&first) = a.cells.get(&(c.0 + dx, c.1 + dy)) {
                                a.union(i, first);
                            }
                        }
                    }
                    a.cells.entry(c).or_insert(i);
                }
            }
        }

        // Assign components to buckets round-robin in first-appearance
        // order. (Any assignment is correct — replay re-establishes the
        // global order — this one just spreads load deterministically.)
        a.bucket_of_root.clear();
        let mut next_bucket = 0usize;
        let mut components = 0usize;
        for i in 0..=n {
            let root = a.find(i);
            if let std::collections::hash_map::Entry::Vacant(e) = a.bucket_of_root.entry(root) {
                e.insert(next_bucket);
                next_bucket = (next_bucket + 1) % threads;
                components += 1;
            }
        }
        // The wired root always counts as a component even when no init
        // touches it; require at least two *real* ones.
        components >= 3
            || (components == 2 && {
                let wr = a.find(wired_root);
                (0..n).any(|i| a.find(i) == wr)
            })
    }

    /// Sequential fallback for one window: run every event strictly
    /// before `end` through the ordinary engine.
    fn run_window_sequential(&mut self, end: SimTime) {
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.time >= end {
                break;
            }
            let Reverse(q) = self.queue.pop().expect("peeked entry vanished");
            debug_assert!(q.time >= self.now, "event queue went backwards");
            self.now = q.time;
            let event = self.take_slot(q.slot);
            self.dispatch_sequential(event);
        }
    }

    /// Merges worker outputs back into the world in exact sequential
    /// order, reconstructing the `(time, seq)` schedule the
    /// single-threaded loop would have produced.
    fn replay_window(&mut self, buckets: &mut [Bucket], wired_bucket: Option<usize>) {
        // Heap over (time, true_seq, bucket, rec): initial events carry
        // their original seq; children get theirs assigned from the world
        // counter when their parent's record is replayed — in birth
        // order, which is exactly when the sequential loop would have
        // assigned them.
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, usize, u32)>> = BinaryHeap::new();
        for (b, bucket) in buckets.iter().enumerate() {
            for &(seq, rec) in &bucket.out.init_recs {
                heap.push(Reverse((bucket.out.recs[rec as usize].time, seq, b, rec)));
            }
        }
        while let Some(Reverse((time, _seq, b, rec_idx))) = heap.pop() {
            self.now = time;
            let rec = buckets[b].out.recs[rec_idx as usize];
            self.events += rec.events_delta;
            for i in rec.trace_range.0..rec.trace_range.1 {
                let entry = buckets[b].out.trace[i as usize].clone();
                self.trace.record(entry);
            }
            if rec.map_range.0 != rec.map_range.1 {
                debug_assert_eq!(
                    Some(b),
                    wired_bucket,
                    "address-map mutation outside the wired component"
                );
                for i in rec.map_range.0..rec.map_range.1 {
                    match buckets[b].out.map_ops[i as usize] {
                        MapOp::Insert(addr, node) => {
                            self.addr_map.insert(addr, node);
                        }
                        MapOp::Remove(addr) => {
                            self.addr_map.remove(&addr);
                        }
                    }
                }
            }
            for i in rec.child_range.0..rec.child_range.1 {
                match std::mem::replace(&mut buckets[b].children[i as usize], ChildSlot::Taken) {
                    ChildSlot::Future(t, ev) => self.schedule_at(t, ev),
                    ChildSlot::Inline(child_rec) => {
                        let seq = self.seq;
                        self.seq += 1;
                        heap.push(Reverse((
                            buckets[b].out.recs[child_rec as usize].time,
                            seq,
                            b,
                            child_rec,
                        )));
                    }
                    ChildSlot::Pending(..) | ChildSlot::Taken => {
                        unreachable!("unexecuted or doubly-replayed child")
                    }
                }
            }
        }
    }
}
