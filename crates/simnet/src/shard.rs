//! Sharded single-world execution: conservative-lookahead windows,
//! conflict components, deterministic replay, cross-window work
//! stealing.
//!
//! [`World::run_until_threads`] runs the same event-for-event simulation
//! as [`World::run_until`], byte-identically — same trace, same `(time,
//! seq)` order, same event count — while executing independent regions of
//! the world on worker threads. The algorithm, in three steps per
//! *window*:
//!
//! 1. **Window.** Pop every queued event in `[t0, t0 + h_min)` where `t0`
//!    is the next event time and `h_min = mac_overhead + prop_delay` is
//!    the cheapest possible radio hop. Within such a window an event's
//!    causal cone can cross between nodes at most through *one* radio
//!    delivery layer (any further hop costs at least a full MAC overhead
//!    and lands at or beyond the window end), so all its effects stay
//!    inside one radio disk around its node — the *one-disk-expansion*
//!    bound that makes conflict analysis local.
//!
//! 2. **Components.** Union-find the popped events: events sharing a
//!    node, events whose radio disks can overlap (coarse cells of
//!    3×range: disks of radius ≤ 1.25×range can only meet across
//!    same-or-adjacent cells), and every event on or near a wired node
//!    (the wired backbone shares one global address map, so all its
//!    readers and writers serialize in a single "wired" component). Each
//!    component's events — plus any within-window children they spawn —
//!    touch a node set disjoint from every other component's, so
//!    components execute concurrently with no synchronization at all.
//!
//! 3. **Replay.** Workers record, per executed event, its trace entries,
//!    address-map operations and children (in birth order, split into
//!    within-window ones they executed themselves and future ones). The
//!    coordinator then replays the records in global `(time, seq)` order
//!    on a merge heap, assigning child sequence numbers from the world
//!    counter exactly where the sequential loop would have — which is
//!    what reconstructs the identical schedule, trace, and queue state.
//!
//! Windows that the analysis cannot prove independent — packet faults
//! active, carrier sense on (its deferral scans read neighbors'
//! `tx_until` across components), fault/replan events present, the
//! spatial index due for a rebuild, or simply too few events to be worth
//! fanning out — fall back to the sequential engine for that window, so
//! correctness never rests on the fast path.
//!
//! # Work stealing
//!
//! Workers that exhaust their bucket don't idle at the window barrier.
//! After partitioning a parallel window, the coordinator pre-pops the
//! events of the *next* lookahead range `[end, steal_end)` (one more
//! `h_min`, clipped to the run target) and runs a second conflict
//! analysis over them with widened margins: candidate components merge
//! when their coarse cells are within a Chebyshev distance of 2, and a
//! component is rejected outright if any of its nodes touches the wired
//! backbone, carries SIP-layer address state (extra local addresses or
//! address handlers, whose map entries the current window may rewrite),
//! is itself a current-window node, or sits within two cells of any
//! occupied current-window cell. What survives is provably untouchable
//! by the window being executed *and* by anything scheduled later (fault
//! and replan events are born only in sequential contexts, and their
//! presence in the stolen range cancels the steal). Surviving components
//! go into a shared pool; every worker — and the coordinator — claims
//! them through an atomic cursor once its own bucket drains.
//!
//! Stolen results are not applied at the barrier: node-local state has
//! already advanced (that is safe — nothing else may touch those nodes
//! before `steal_end`), but the world-observable effects — clock, event
//! count, trace entries, child scheduling, sequence-number assignment —
//! are *parked* in a stash keyed by the events' original `(time, seq)`
//! and drained exactly where the sequential loop would have executed
//! them: before the next window if they precede it, interleaved into
//! sequential fallback and replay merges otherwise. Windows that follow
//! an outstanding steal are clipped to `steal_end` so no event the
//! stolen range didn't see can slip inside it. Stealing is an
//! opportunistic fast path; correctness never depends on it firing.
//!
//! # Sharing caveat
//!
//! Worker threads touch disjoint node sets, which makes the usual `Send`
//! bounds unnecessary *provided* process state is node-local (the `Ctx`
//! contract). Processes on different nodes must not share interior-
//! mutable state (`Rc`/`RefCell`) with each other; the stock stack and
//! scenario builders construct per-node state and satisfy this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

use crate::exec::{
    event_nodes, ChildSlot, Engine, EngineOut, EngineScratch, Event, GridAccess, MapAccess, MapOp,
    NodesAccess, Rec, StashGroup, WorkerOut,
};
use crate::fasthash::FastMap;
use crate::node::{HotNode, NodeId};
use crate::parallel::WorkCursor;
use crate::time::SimTime;
use crate::world::World;

/// Don't fan out windows smaller than this; the bucket/replay machinery
/// would cost more than it saves.
const PAR_MIN_WINDOW_EVENTS: usize = 4;

/// Rank offset separating within-window children from window-initial
/// events in a worker's execution heap. Initial events rank by their true
/// global sequence number; children rank by birth order above this
/// ceiling — sound because every child's eventual sequence number exceeds
/// every pre-window one (the counter only grows), and birth order within
/// a bucket matches the sequential assignment order (workers execute
/// bucket events in the sequential order, and each event births children
/// in the same intra-event order).
const CHILD_RANK_BASE: u64 = u64::MAX / 2;

/// One popped window-initial event with its original queue key.
struct Init {
    time: SimTime,
    seq: u64,
    event: Option<Event>,
}

/// Per-bucket execution state, reused across windows. Serves both the
/// window's own components and stolen next-range components; the two
/// differ only in `end`.
#[derive(Default)]
struct Bucket {
    inits: Vec<Init>,
    /// Execution heap: `(time, rank, index)`; `rank < CHILD_RANK_BASE`
    /// means `index` is an init, otherwise a child slot.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    children: Vec<ChildSlot>,
    out: WorkerOut,
    eng: EngineOut,
    /// Exclusive end of this bucket's range: children at `time >= end`
    /// are future. Window `end` for primary buckets, `steal_end` for
    /// stolen ones.
    end: SimTime,
}

impl Bucket {
    fn reset(&mut self) {
        self.inits.clear();
        self.heap.clear();
        self.children.clear();
        self.out.clear();
        self.eng.clear();
    }
}

/// Everything a worker needs to execute one bucket of one window. Plain
/// pointers/copies so the struct can cross the task channel without
/// borrowing the world; validity is a protocol invariant (the coordinator
/// blocks on the done channel before touching the world again).
struct WindowShared {
    cfg: *const crate::world::WorldConfig,
    nodes_ptr: *mut crate::node::Node,
    nodes_len: usize,
    radio_ids_ptr: *const NodeId,
    radio_ids_len: usize,
    link_cuts: *const std::collections::BTreeSet<(u32, u32)>,
    partition: *const Option<std::collections::BTreeSet<u32>>,
    addr_map: *const FastMap<crate::net::Addr, NodeId>,
    grid: *const crate::grid::NeighborGrid,
    hot_ptr: *const HotNode,
    hot_len: usize,
    trace_enabled: bool,
    /// Steal pool: an atomic take-a-number cursor over `steal_tasks`.
    /// Each stolen bucket is claimed (and thus mutated) by exactly one
    /// thread; the buckets are node-disjoint from every primary bucket
    /// and from each other.
    steal_cursor: *const WorkCursor,
    steal_tasks: *const *mut Bucket,
    steal_tasks_len: usize,
}

struct Task {
    shared: *const WindowShared,
    /// This worker's primary bucket, or null when it only participates
    /// in the steal pool.
    bucket: *mut Bucket,
}

// SAFETY: the coordinator guarantees (a) the pointed-to data outlives the
// task (it blocks on worker completion before the window state is
// dropped or the world mutated) and (b) no two live tasks' buckets
// overlap, stolen buckets are claimed at most once (atomic cursor), and
// bucket node sets are disjoint (conflict components).
unsafe impl Send for Task {}

/// Executes every event of one bucket in sequential-equivalent order,
/// recording outputs for replay.
///
/// # Safety
///
/// `shared`'s pointers must be valid, the bucket's component must be
/// node-disjoint from every other concurrently running bucket, and no
/// other thread may mutate world state for the duration of the call.
unsafe fn run_bucket(shared: &WindowShared, b: &mut Bucket, scratch: &mut EngineScratch) {
    let mut born: u64 = 0;
    for (i, init) in b.inits.iter().enumerate() {
        b.heap.push(Reverse((init.time, init.seq, i as u32)));
    }
    while let Some(Reverse((time, rank, idx))) = b.heap.pop() {
        let event = if rank < CHILD_RANK_BASE {
            b.inits[idx as usize]
                .event
                .take()
                .expect("init executed twice")
        } else {
            match std::mem::replace(&mut b.children[idx as usize], ChildSlot::Taken) {
                ChildSlot::Pending(ev) => ev,
                _ => unreachable!("child slot executed twice"),
            }
        };
        let trace_start = b.out.trace.len() as u32;
        let child_start = b.children.len() as u32;
        let map_start = b.eng.map_ops.len() as u32;
        {
            let mut engine = Engine {
                cfg: &*shared.cfg,
                now: time,
                nodes: NodesAccess::from_raw(shared.nodes_ptr, shared.nodes_len),
                radio_ids: std::slice::from_raw_parts(shared.radio_ids_ptr, shared.radio_ids_len),
                link_cuts: &*shared.link_cuts,
                partition: &*shared.partition,
                // Windows with packet faults never parallelize.
                packet_faults: &[],
                fault_rng: None,
                map: MapAccess::Overlay(&*shared.addr_map),
                grid: GridAccess::Frozen(&*shared.grid),
                hot: std::slice::from_raw_parts(shared.hot_ptr, shared.hot_len),
                trace_enabled: shared.trace_enabled,
                scratch,
                out: &mut b.eng,
            };
            engine.dispatch_and_flush(event);
        }
        b.out.trace.append(&mut b.eng.trace);
        for (t, ev) in b.eng.children.drain(..) {
            if t < b.end {
                let slot = b.children.len() as u32;
                b.children.push(ChildSlot::Pending(ev));
                b.heap.push(Reverse((t, CHILD_RANK_BASE + born, slot)));
                born += 1;
            } else {
                b.children.push(ChildSlot::Future(t, ev));
            }
        }
        let rec_idx = b.out.recs.len() as u32;
        b.out.recs.push(Rec {
            time,
            events_delta: b.eng.events_delta,
            trace_range: (trace_start, b.out.trace.len() as u32),
            child_range: (child_start, b.children.len() as u32),
            map_range: (map_start, b.eng.map_ops.len() as u32),
        });
        b.eng.events_delta = 0;
        if rank < CHILD_RANK_BASE {
            b.out.init_recs.push((rank, rec_idx));
        } else {
            b.children[idx as usize] = ChildSlot::Inline(rec_idx);
        }
    }
    // Map ops stay in the engine buffer during the bucket so overlay
    // lookups see earlier claims; hand them to the replay output now.
    std::mem::swap(&mut b.out.map_ops, &mut b.eng.map_ops);
}

/// Claims and executes stolen buckets from the window's steal pool until
/// it is exhausted.
///
/// # Safety
///
/// Same contract as [`run_bucket`]; additionally the steal pointers in
/// `shared` must be valid for the duration of the window.
unsafe fn run_steals(shared: &WindowShared, scratch: &mut EngineScratch) {
    if shared.steal_tasks_len == 0 {
        return;
    }
    let cursor = &*shared.steal_cursor;
    let tasks = std::slice::from_raw_parts(shared.steal_tasks, shared.steal_tasks_len);
    while let Some(i) = cursor.claim() {
        // SAFETY: the cursor hands out each index exactly once, so this
        // thread is the sole owner of `tasks[i]`.
        run_bucket(shared, &mut *tasks[i], scratch);
    }
}

/// Scratch state for per-window conflict analysis, reused across windows.
/// One instance partitions the window itself; a second, independent
/// instance analyzes steal candidates (probing the first for exclusion).
#[derive(Default)]
struct Analysis {
    /// Union-find parents over `inits.len() + 1` entries; the last entry
    /// is the virtual root of the wired component.
    parent: Vec<u32>,
    /// Epoch-stamped node → first-init map (avoids an O(nodes) clear per
    /// window).
    node_stamp: Vec<u32>,
    node_first: Vec<u32>,
    epoch: u32,
    /// Coarse spatial cells (3 × radio range) → first occupant.
    cells: FastMap<(i64, i64), u32>,
    /// Root → bucket assignment for this window.
    bucket_of_root: FastMap<u32, usize>,
}

impl Analysis {
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller root wins (no ranks needed at these
            // sizes, and the winner must not depend on call order).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

impl World {
    /// As [`run_until`](World::run_until), but executes independent
    /// regions of the world on up to `threads` threads. The result —
    /// packet trace, event count, queue state, every node's RNG — is
    /// byte-identical to the single-threaded run; see the
    /// [module docs](crate::shard) for the windowing argument.
    /// `threads <= 1` is exactly `run_until`.
    ///
    /// Processes on different nodes must not share interior-mutable
    /// state with each other (node-local state only — the `Ctx`
    /// contract); the stock protocol stack satisfies this.
    pub fn run_until_threads(&mut self, t: SimTime, threads: usize) {
        let threads = threads.clamp(1, 64);
        let h_min = self.cfg.radio.mac_overhead + self.cfg.radio.prop_delay;
        // The lookahead bound needs a positive minimum hop cost; a
        // degenerate radio config gets the plain sequential loop.
        if threads == 1 || h_min.is_zero() {
            self.run_until(t);
            return;
        }

        // Wired radio nodes participate in radio fan-outs *and* the
        // global address map, so any event whose disk can reach one joins
        // the wired component. Interface flags are fixed at creation.
        let wired_radio: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.has_wired && n.has_radio)
            .map(|n| n.id)
            .collect();

        let mut analysis = Analysis::default();
        let mut steal_analysis = Analysis::default();
        let mut inits: Vec<Init> = Vec::new();
        let mut steal_inits: Vec<Init> = Vec::new();
        let mut buckets: Vec<Bucket> = (0..threads).map(|_| Bucket::default()).collect();
        let mut steal_buckets: Vec<Bucket> = Vec::new();
        let mut coord_scratch = EngineScratch::default();
        // Exclusive end of the range covered by outstanding stolen
        // results; meaningful only while the stash is non-empty.
        let mut stash_cap = SimTime::ZERO;

        let n_workers = threads - 1;
        let (done_tx, done_rx) = mpsc::channel::<()>();

        std::thread::scope(|scope| {
            // Task senders live inside the scope: dropping them after the
            // window loop is what lets the workers' `recv` fail and the
            // scope join.
            let mut task_txs: Vec<mpsc::Sender<Task>> = Vec::with_capacity(n_workers);
            for _ in 0..n_workers {
                let (tx, rx) = mpsc::channel::<Task>();
                task_txs.push(tx);
                let done = done_tx.clone();
                scope.spawn(move || {
                    let mut scratch = EngineScratch::default();
                    while let Ok(task) = rx.recv() {
                        // SAFETY: see `Task`'s Send justification; the
                        // coordinator upholds the window protocol.
                        unsafe {
                            let shared = &*task.shared;
                            if !task.bucket.is_null() {
                                run_bucket(shared, &mut *task.bucket, &mut scratch);
                            }
                            run_steals(shared, &mut scratch);
                        }
                        if done.send(()).is_err() {
                            break;
                        }
                    }
                });
            }

            loop {
                // Stolen-ahead results that precede every queued event
                // apply first: their future children may belong inside
                // the very window about to be popped.
                if !self.stash.heap.is_empty() {
                    let head = self.queue.peek().map(|r| (r.0.time, r.0.seq));
                    self.drain_stash_until(head);
                }
                let Some(Reverse(q)) = self.queue.peek() else {
                    break;
                };
                if q.time > t {
                    break;
                }
                let t0 = q.time;
                let mut end = SimTime::from_micros(
                    (t0 + h_min)
                        .as_micros()
                        .min(t.as_micros().saturating_add(1)),
                );
                // Outstanding stolen results mean node state up to
                // `stash_cap` is already final but their children are
                // not yet scheduled; clipping the window keeps any event
                // the stolen range didn't see from slipping inside it.
                if !self.stash.heap.is_empty() {
                    end = end.min(stash_cap);
                }

                // Pop the window's initial events.
                inits.clear();
                while let Some(Reverse(q)) = self.queue.peek() {
                    if q.time >= end {
                        break;
                    }
                    let Reverse(q) = self.queue.pop().expect("peeked entry vanished");
                    let event = self.take_slot(q.slot);
                    inits.push(Init {
                        time: q.time,
                        seq: q.seq,
                        event: Some(event),
                    });
                }

                let parallel = self.window_eligible(&inits, t0, end)
                    && self.partition_window(&mut analysis, &inits, t0, &wired_radio, threads);

                if !parallel {
                    self.seq_windows += 1;
                    for init in inits.drain(..) {
                        self.requeue(init.time, init.seq, init.event.expect("init taken"));
                    }
                    self.run_window_sequential(end);
                    continue;
                }
                self.par_windows += 1;

                // Distribute inits to their component's bucket.
                for b in buckets.iter_mut() {
                    b.reset();
                    b.end = end;
                }
                let wired_root = analysis.find(inits.len() as u32);
                let wired_bucket = analysis.bucket_of_root.get(&wired_root).copied();
                for (i, init) in inits.drain(..).enumerate() {
                    let root = analysis.find(i as u32);
                    let b = analysis.bucket_of_root[&root];
                    buckets[b].inits.push(init);
                }

                // Steal provably independent components from the next
                // lookahead range, for whoever drains their bucket
                // first. Only with a clean stash: one outstanding stolen
                // range at a time keeps the window-clipping rule above a
                // single bound.
                let steal_end = SimTime::from_micros(
                    (end + h_min)
                        .as_micros()
                        .min(t.as_micros().saturating_add(1)),
                );
                let n_steal =
                    if self.cfg.work_stealing && self.stash.heap.is_empty() && steal_end > end {
                        self.select_steals(
                            &mut analysis,
                            &mut steal_analysis,
                            &mut steal_inits,
                            &mut steal_buckets,
                            t0,
                            steal_end,
                        )
                    } else {
                        0
                    };

                let steal_cursor = WorkCursor::new(n_steal);
                let steal_tasks: Vec<*mut Bucket> = steal_buckets[..n_steal]
                    .iter_mut()
                    .map(|b| b as *mut Bucket)
                    .collect();
                let shared = WindowShared {
                    cfg: &self.cfg,
                    nodes_ptr: self.nodes.as_mut_ptr(),
                    nodes_len: self.nodes.len(),
                    radio_ids_ptr: self.radio_ids.as_ptr(),
                    radio_ids_len: self.radio_ids.len(),
                    link_cuts: &self.link_cuts,
                    partition: &self.partition,
                    addr_map: &self.addr_map,
                    grid: &self.grid,
                    hot_ptr: self.hot.as_ptr(),
                    hot_len: self.hot.len(),
                    trace_enabled: self.trace.is_enabled(),
                    steal_cursor: &steal_cursor,
                    steal_tasks: steal_tasks.as_ptr(),
                    steal_tasks_len: steal_tasks.len(),
                };

                // Fan the non-empty buckets out; bucket 0 runs here. An
                // idle worker still gets a (null-bucket) task when there
                // is a steal pool to drain.
                let bucket_base = buckets.as_mut_ptr();
                let mut outstanding = 0usize;
                for w in 1..threads {
                    // SAFETY: disjoint elements of `buckets`; the borrow
                    // is released when the done channel confirms below.
                    let bp = unsafe { bucket_base.add(w) };
                    let has_work = unsafe { !(*bp).inits.is_empty() };
                    if !has_work && n_steal == 0 {
                        continue;
                    }
                    task_txs[w - 1]
                        .send(Task {
                            shared: &shared,
                            bucket: if has_work { bp } else { std::ptr::null_mut() },
                        })
                        .expect("worker thread died");
                    outstanding += 1;
                }
                if !buckets[0].inits.is_empty() {
                    // SAFETY: bucket 0 is never sent to a worker; the
                    // shared window state is valid for this call.
                    unsafe { run_bucket(&shared, &mut buckets[0], &mut coord_scratch) };
                }
                // SAFETY: as above; stolen buckets are claimed at most
                // once across all threads via the atomic cursor.
                unsafe { run_steals(&shared, &mut coord_scratch) };
                for _ in 0..outstanding {
                    done_rx.recv().expect("worker thread died");
                }

                // Park the stolen results. Node state has advanced, but
                // every observable effect waits in the stash until the
                // clock reaches each record's original `(time, seq)`.
                if n_steal > 0 {
                    self.steal_windows += 1;
                    stash_cap = steal_end;
                    for sb in steal_buckets[..n_steal].iter_mut() {
                        // Steal selection rejects every candidate that
                        // could reach the address map; a recorded
                        // mutation would corrupt it silently, so this
                        // stays a hard assert.
                        assert!(
                            sb.out.map_ops.is_empty(),
                            "stolen execution mutated the address map"
                        );
                        self.steals += sb.out.recs.len() as u64;
                        let group = self.stash.groups.len() as u32;
                        for &(seq, rec) in &sb.out.init_recs {
                            self.stash.heap.push(Reverse((
                                sb.out.recs[rec as usize].time,
                                seq,
                                group,
                                rec,
                            )));
                        }
                        self.stash.groups.push(StashGroup {
                            recs: std::mem::take(&mut sb.out.recs),
                            trace: std::mem::take(&mut sb.out.trace),
                            children: std::mem::take(&mut sb.children),
                        });
                    }
                }

                self.replay_window(&mut buckets, wired_bucket);
            }
            // Whatever the steal pool ran ahead of time is at or before
            // the run target; park nothing across the return.
            self.drain_stash_until(None);
            drop(task_txs);
        });
        self.now = t;
    }

    /// As [`run_for`](World::run_for) with [`run_until_threads`].
    pub fn run_for_threads(&mut self, d: crate::time::SimDuration, threads: usize) {
        self.run_until_threads(self.now + d, threads);
    }

    /// Cheap structural checks: can this window even be considered for
    /// parallel execution?
    fn window_eligible(&mut self, inits: &[Init], t0: SimTime, end: SimTime) -> bool {
        if inits.len() < PAR_MIN_WINDOW_EVENTS {
            return false;
        }
        // Packet faults draw from one global RNG stream in strict event
        // order; carrier sense reads neighbors' `tx_until` across
        // components. Both serialize the world.
        if !self.packet_faults.is_empty() || self.cfg.radio.carrier_sense {
            return false;
        }
        // Global-state events (fault application, mobility replans)
        // mutate what every worker reads; run such windows sequentially.
        if inits.iter().any(|i| {
            matches!(
                i.event.as_ref().expect("init taken"),
                Event::Fault(_) | Event::Replan { .. }
            )
        }) {
            return false;
        }
        if self.cfg.use_spatial_index {
            // Freeze the grid for the window: rebuild now if a query
            // inside it would have (rebuild timing is trace-invisible —
            // queries yield exact-filtered supersets — so rebuilding at
            // the window boundary is free). If even a fresh build can't
            // cover the window (degenerate drift), serialize.
            self.grid.ensure_fresh(&self.nodes, t0);
            let last = SimTime::from_micros(end.as_micros().saturating_sub(1));
            if self.grid.needs_rebuild(last) {
                return false;
            }
        }
        true
    }

    /// Builds conflict components over the window's initial events and
    /// assigns them to buckets. Returns false when the window collapses
    /// into too few components to be worth fanning out.
    fn partition_window(
        &mut self,
        a: &mut Analysis,
        inits: &[Init],
        t0: SimTime,
        wired_radio: &[NodeId],
        threads: usize,
    ) -> bool {
        let n = inits.len() as u32;
        let wired_root = n;
        a.parent.clear();
        a.parent.extend(0..=n);
        a.epoch = a.epoch.wrapping_add(1);
        if a.epoch == 0 {
            // Wrapped: stale stamps could collide; reset them all.
            a.node_stamp.clear();
            a.epoch = 1;
        }
        if a.node_stamp.len() < self.nodes.len() {
            a.node_stamp.resize(self.nodes.len(), 0);
            a.node_first.resize(self.nodes.len(), 0);
        }
        a.cells.clear();

        // Conflict radius: an event's writes stay within one radio disk
        // of its node, and drift-inflated disks reach at most 1.25 ×
        // range (the grid rebuild budget bounds drift at 0.25 × range).
        // Two disks can therefore only overlap when their centers are
        // within 2.5 × range — always same-or-adjacent cells at 3 ×.
        let cell = 3.0 * self.cfg.radio.range.max(1e-9);
        // Seed wired radio nodes as cell occupants of the wired
        // component, so any event whose disk could reach one (and with
        // it, the shared address map via an inline gateway delivery)
        // serializes with the backbone.
        for &id in wired_radio {
            let pos = self.nodes[id.0 as usize].mobility.position(t0);
            let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
            if let Some(&first) = a.cells.get(&c) {
                a.union(first, wired_root);
            } else {
                a.cells.insert(c, wired_root);
            }
        }

        for (i, init) in inits.iter().enumerate() {
            let i = i as u32;
            let event = init.event.as_ref().expect("init taken");
            for &node in event_nodes(event) {
                let ni = node.0 as usize;
                // Same node ⇒ same component.
                if a.node_stamp[ni] == a.epoch {
                    a.union(i, a.node_first[ni]);
                } else {
                    a.node_stamp[ni] = a.epoch;
                    a.node_first[ni] = i;
                }
                let nd = &self.nodes[ni];
                // Backbone participants serialize with the wired
                // component (shared address map).
                if nd.has_wired {
                    a.union(i, wired_root);
                }
                // Overlapping radio disks ⇒ same component.
                if nd.has_radio {
                    let pos = nd.mobility.position(t0);
                    let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
                    for dy in -1..=1 {
                        for dx in -1..=1 {
                            if let Some(&first) = a.cells.get(&(c.0 + dx, c.1 + dy)) {
                                a.union(i, first);
                            }
                        }
                    }
                    a.cells.entry(c).or_insert(i);
                }
            }
        }

        // Assign components to buckets round-robin in first-appearance
        // order. (Any assignment is correct — replay re-establishes the
        // global order — this one just spreads load deterministically.)
        a.bucket_of_root.clear();
        let mut next_bucket = 0usize;
        let mut components = 0usize;
        for i in 0..=n {
            let root = a.find(i);
            if let std::collections::hash_map::Entry::Vacant(e) = a.bucket_of_root.entry(root) {
                e.insert(next_bucket);
                next_bucket = (next_bucket + 1) % threads;
                components += 1;
            }
        }
        // The wired root always counts as a component even when no init
        // touches it; require at least two *real* ones.
        components >= 3
            || (components == 2 && {
                let wr = a.find(wired_root);
                (0..n).any(|i| a.find(i) == wr)
            })
    }

    /// Pops the events of `[queue head, steal_end)` and keeps those
    /// provably independent of the current window, of each other's
    /// components, and of anything that can still be scheduled before
    /// `steal_end`; the rest go straight back on the queue. Fills
    /// `steal_buckets` and returns how many were filled (0 = no steal).
    ///
    /// `w` is the analysis of the window being executed: its occupied
    /// cells (including wired-radio seeds) and node stamps are what the
    /// candidates must keep clear of.
    fn select_steals(
        &mut self,
        w: &mut Analysis,
        sa: &mut Analysis,
        steal_inits: &mut Vec<Init>,
        steal_buckets: &mut Vec<Bucket>,
        t0: SimTime,
        steal_end: SimTime,
    ) -> usize {
        if self.cfg.use_spatial_index {
            // The margins below need indexed positions valid through the
            // stolen range; a rebuild due inside it cancels the steal,
            // not the window.
            let last = SimTime::from_micros(steal_end.as_micros().saturating_sub(1));
            if self.grid.needs_rebuild(last) {
                return 0;
            }
        }
        steal_inits.clear();
        while let Some(Reverse(q)) = self.queue.peek() {
            if q.time >= steal_end {
                break;
            }
            let Reverse(q) = self.queue.pop().expect("peeked entry vanished");
            let event = self.take_slot(q.slot);
            steal_inits.push(Init {
                time: q.time,
                seq: q.seq,
                event: Some(event),
            });
        }
        if steal_inits.is_empty() {
            return 0;
        }
        // Fault applications and mobility replans mutate state every
        // margin below assumes frozen. They are born only in sequential
        // contexts, so none can *appear* in `[end, steal_end)` later —
        // but any queued there now turns stealing off for this window.
        if steal_inits.iter().any(|i| {
            matches!(
                i.event.as_ref().expect("init taken"),
                Event::Fault(_) | Event::Replan { .. }
            )
        }) {
            for init in steal_inits.drain(..) {
                self.requeue(init.time, init.seq, init.event.expect("init taken"));
            }
            return 0;
        }

        // Second conflict analysis, with widened unions: a stolen
        // component's effects and a neighbor's can each expand one disk,
        // and both endpoints drift, so components whose cells are within
        // a Chebyshev distance of 2 merge (distinct survivors end up
        // > two 3×range cells — more than 6 × range — apart).
        let n = steal_inits.len() as u32;
        sa.parent.clear();
        sa.parent.extend(0..n);
        sa.epoch = sa.epoch.wrapping_add(1);
        if sa.epoch == 0 {
            sa.node_stamp.clear();
            sa.epoch = 1;
        }
        if sa.node_stamp.len() < self.nodes.len() {
            sa.node_stamp.resize(self.nodes.len(), 0);
            sa.node_first.resize(self.nodes.len(), 0);
        }
        sa.cells.clear();
        let cell = 3.0 * self.cfg.radio.range.max(1e-9);
        for (i, init) in steal_inits.iter().enumerate() {
            let i = i as u32;
            let event = init.event.as_ref().expect("init taken");
            for &node in event_nodes(event) {
                let ni = node.0 as usize;
                if sa.node_stamp[ni] == sa.epoch {
                    sa.union(i, sa.node_first[ni]);
                } else {
                    sa.node_stamp[ni] = sa.epoch;
                    sa.node_first[ni] = i;
                }
                let nd = &self.nodes[ni];
                if nd.has_radio {
                    let pos = nd.mobility.position(t0);
                    let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
                    for dy in -2..=2i64 {
                        for dx in -2..=2i64 {
                            if let Some(&first) = sa.cells.get(&(c.0 + dx, c.1 + dy)) {
                                sa.union(i, first);
                            }
                        }
                    }
                    sa.cells.entry(c).or_insert(i);
                }
            }
        }

        // Rejection pass: fold each candidate's disqualifiers into its
        // component root (`usize::MAX` in the bucket map marks a
        // rejected root).
        sa.bucket_of_root.clear();
        for (i, init) in steal_inits.iter().enumerate() {
            let event = init.event.as_ref().expect("init taken");
            let mut bad = false;
            'nodes: for &node in event_nodes(event) {
                let ni = node.0 as usize;
                let nd = &self.nodes[ni];
                // Off-limits: the wired backbone (shared address map);
                // SIP-layer address state — extra local addresses or
                // address handlers, whose map entries the window's wired
                // component may rewrite mid-flight; and any node the
                // current window itself touches.
                if nd.has_wired
                    || nd.default_handler.is_some()
                    || !nd.addr_handlers.is_empty()
                    || nd.local_addrs.len() > 1
                    || w.node_stamp[ni] == w.epoch
                {
                    bad = true;
                    break 'nodes;
                }
                if nd.has_radio {
                    // Two cells clear of every occupied window cell
                    // (which include the wired-radio seeds): the window
                    // side expands one disk, its future children land
                    // within one more cell, and the stolen side expands
                    // one disk of its own.
                    let pos = nd.mobility.position(t0);
                    let c = ((pos.0 / cell).floor() as i64, (pos.1 / cell).floor() as i64);
                    for dy in -2..=2i64 {
                        for dx in -2..=2i64 {
                            if w.cells.contains_key(&(c.0 + dx, c.1 + dy)) {
                                bad = true;
                                break 'nodes;
                            }
                        }
                    }
                }
            }
            if bad {
                let root = sa.find(i as u32);
                sa.bucket_of_root.insert(root, usize::MAX);
            }
        }

        // Surviving components become steal buckets in first-appearance
        // order; rejected candidates go straight back to the queue under
        // their original keys.
        let mut n_steal = 0usize;
        for i in 0..n {
            let root = sa.find(i);
            sa.bucket_of_root.entry(root).or_insert_with(|| {
                let b = n_steal;
                n_steal += 1;
                b
            });
        }
        if steal_buckets.len() < n_steal {
            steal_buckets.resize_with(n_steal, Bucket::default);
        }
        for sb in steal_buckets[..n_steal].iter_mut() {
            sb.reset();
            sb.end = steal_end;
        }
        for (i, init) in steal_inits.drain(..).enumerate() {
            let root = sa.find(i as u32);
            let b = sa.bucket_of_root[&root];
            if b == usize::MAX {
                self.requeue(init.time, init.seq, init.event.expect("init taken"));
            } else {
                steal_buckets[b].inits.push(init);
            }
        }
        n_steal
    }

    /// Applies one parked stolen record at its exact global position:
    /// bookkeeping (clock, event count, trace entries), future children
    /// into the queue, inline children back onto the stash heap — each
    /// child's sequence number drawn from the world counter exactly
    /// where the sequential loop would have drawn it.
    fn apply_stash_rec(&mut self, group: u32, rec_idx: u32) {
        let g = group as usize;
        let rec = self.stash.groups[g].recs[rec_idx as usize];
        debug_assert!(rec.time >= self.now, "stash replay went backwards");
        self.now = rec.time;
        self.events += rec.events_delta;
        for i in rec.trace_range.0..rec.trace_range.1 {
            let entry = self.stash.groups[g].trace[i as usize].clone();
            self.trace.record(entry);
        }
        // Steal selection rejects every candidate that could reach the
        // address map; a recorded mutation means the margins failed.
        assert!(
            rec.map_range.0 == rec.map_range.1,
            "stolen execution mutated the address map"
        );
        for i in rec.child_range.0..rec.child_range.1 {
            match std::mem::replace(
                &mut self.stash.groups[g].children[i as usize],
                ChildSlot::Taken,
            ) {
                ChildSlot::Future(t, ev) => self.schedule_at(t, ev),
                ChildSlot::Inline(child_rec) => {
                    let seq = self.seq;
                    self.seq += 1;
                    let time = self.stash.groups[g].recs[child_rec as usize].time;
                    self.stash.heap.push(Reverse((time, seq, group, child_rec)));
                }
                ChildSlot::Pending(..) | ChildSlot::Taken => {
                    unreachable!("unexecuted or doubly-replayed stolen child")
                }
            }
        }
    }

    /// Applies every parked stolen record whose `(time, seq)` key
    /// precedes `bound` (all of them when `bound` is `None`), releasing
    /// the group buffers once the stash empties.
    fn drain_stash_until(&mut self, bound: Option<(SimTime, u64)>) {
        while let Some(&Reverse((time, seq, g, r))) = self.stash.heap.peek() {
            if let Some(b) = bound {
                if (time, seq) >= b {
                    break;
                }
            }
            self.stash.heap.pop();
            self.apply_stash_rec(g, r);
        }
        if self.stash.heap.is_empty() && !self.stash.groups.is_empty() {
            self.stash.groups.clear();
        }
    }

    /// Sequential fallback for one window: run every event strictly
    /// before `end` through the ordinary engine, interleaving parked
    /// stolen records at their original positions.
    fn run_window_sequential(&mut self, end: SimTime) {
        loop {
            let qkey = match self.queue.peek() {
                Some(Reverse(q)) if q.time < end => Some((q.time, q.seq)),
                _ => None,
            };
            let skey = match self.stash.heap.peek() {
                Some(&Reverse((time, seq, _, _))) if time < end => Some((time, seq)),
                _ => None,
            };
            let take_stash = match (qkey, skey) {
                (None, None) => break,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (Some(q), Some(s)) => s < q,
            };
            if take_stash {
                let Reverse((_, _, g, r)) =
                    self.stash.heap.pop().expect("peeked stash entry vanished");
                self.apply_stash_rec(g, r);
            } else {
                let Reverse(q) = self.queue.pop().expect("peeked entry vanished");
                debug_assert!(q.time >= self.now, "event queue went backwards");
                self.now = q.time;
                let event = self.take_slot(q.slot);
                self.dispatch_sequential(event);
            }
        }
    }

    /// Merges worker outputs back into the world in exact sequential
    /// order, reconstructing the `(time, seq)` schedule the
    /// single-threaded loop would have produced. Parked stolen records
    /// whose keys fall between window records are applied in their
    /// rightful slots.
    fn replay_window(&mut self, buckets: &mut [Bucket], wired_bucket: Option<usize>) {
        // Heap over (time, true_seq, bucket, rec): initial events carry
        // their original seq; children get theirs assigned from the world
        // counter when their parent's record is replayed — in birth
        // order, which is exactly when the sequential loop would have
        // assigned them.
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, usize, u32)>> = BinaryHeap::new();
        for (b, bucket) in buckets.iter().enumerate() {
            for &(seq, rec) in &bucket.out.init_recs {
                heap.push(Reverse((bucket.out.recs[rec as usize].time, seq, b, rec)));
            }
        }
        while let Some(&Reverse((rt, rs, _, _))) = heap.peek() {
            // Stolen-ahead records from a previous window that precede
            // the next replay record apply first (this window's own
            // steals all lie at or beyond its end, so they never fire
            // here).
            while let Some(&Reverse((st, ss, g, r))) = self.stash.heap.peek() {
                if (st, ss) >= (rt, rs) {
                    break;
                }
                self.stash.heap.pop();
                self.apply_stash_rec(g, r);
            }
            let Reverse((time, _seq, b, rec_idx)) = heap.pop().expect("peeked entry vanished");
            self.now = time;
            let rec = buckets[b].out.recs[rec_idx as usize];
            self.events += rec.events_delta;
            for i in rec.trace_range.0..rec.trace_range.1 {
                let entry = buckets[b].out.trace[i as usize].clone();
                self.trace.record(entry);
            }
            if rec.map_range.0 != rec.map_range.1 {
                debug_assert_eq!(
                    Some(b),
                    wired_bucket,
                    "address-map mutation outside the wired component"
                );
                for i in rec.map_range.0..rec.map_range.1 {
                    match buckets[b].out.map_ops[i as usize] {
                        MapOp::Insert(addr, node) => {
                            self.addr_map.insert(addr, node);
                        }
                        MapOp::Remove(addr) => {
                            self.addr_map.remove(&addr);
                        }
                    }
                }
            }
            for i in rec.child_range.0..rec.child_range.1 {
                match std::mem::replace(&mut buckets[b].children[i as usize], ChildSlot::Taken) {
                    ChildSlot::Future(t, ev) => self.schedule_at(t, ev),
                    ChildSlot::Inline(child_rec) => {
                        let seq = self.seq;
                        self.seq += 1;
                        heap.push(Reverse((
                            buckets[b].out.recs[child_rec as usize].time,
                            seq,
                            b,
                            child_rec,
                        )));
                    }
                    ChildSlot::Pending(..) | ChildSlot::Taken => {
                        unreachable!("unexecuted or doubly-replayed child")
                    }
                }
            }
        }
    }
}
