//! The wireless channel model.
//!
//! The testbed in the paper is a set of 802.11b laptops/handhelds in ad hoc
//! mode, with firewalls enforcing multihop topologies. The simulator
//! replaces it with a unit-disk radio with:
//!
//! * per-node FIFO transmit queues and per-frame serialization delay
//!   (`MAC overhead + bytes * 8 / bitrate + random backoff`),
//! * distance-dependent loss on top of a base loss probability,
//! * 802.11-style retransmission for unicast frames (none for broadcast),
//!   with layer-2 TX-failure feedback on retry exhaustion — the signal AODV
//!   uses for link-break detection.
//!
//! Channel-wide contention between *different* senders is not modeled; at
//! the traffic levels of the paper's experiments the per-node queueing delay
//! dominates. This simplification is recorded in `DESIGN.md`.

use crate::net::{Datagram, L2Dst};
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Distance-dependent loss on top of a base loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossModel {
    /// Loss probability applied at any distance.
    pub base: f64,
    /// Fraction of the radio range that is loss-free (beyond the base loss);
    /// between this radius and the full range, loss ramps quadratically up
    /// to `edge_loss`.
    pub clear_fraction: f64,
    /// Loss probability at the very edge of the range.
    pub edge_loss: f64,
}

impl LossModel {
    /// A lossless channel (useful for protocol-logic tests).
    pub const IDEAL: LossModel = LossModel {
        base: 0.0,
        clear_fraction: 1.0,
        edge_loss: 0.0,
    };

    /// A mildly lossy 802.11-like channel: 1% base loss, clean out to 70% of
    /// range, 60% loss at the edge.
    pub const TYPICAL: LossModel = LossModel {
        base: 0.01,
        clear_fraction: 0.7,
        edge_loss: 0.6,
    };

    /// Precomputes the per-range invariants (clear radius, ramp
    /// denominator) so per-receiver calls in the broadcast loop skip the
    /// redundant recomputation. The prepared model performs *the exact
    /// same float operations* on the hot path — in particular the ramp
    /// stays a division by the precomputed `range - clear`, never an
    /// inverse multiply — so loss probabilities are bit-identical to
    /// [`LossModel::loss_probability`] and seeded traces do not drift.
    pub fn prepare(&self, range: f64) -> PreparedLoss {
        let clear = range * self.clear_fraction;
        PreparedLoss {
            base: self.base,
            edge_loss: self.edge_loss,
            range,
            clear,
            denom: range - clear,
        }
    }

    /// Loss probability for a receiver at `dist` when the radio range is
    /// `range`. Distances beyond `range` always lose the frame.
    pub fn loss_probability(&self, dist: f64, range: f64) -> f64 {
        self.prepare(range).loss_probability(dist)
    }

    /// Samples whether a frame at `dist` is lost.
    pub fn sample_loss(&self, dist: f64, range: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.loss_probability(dist, range))
    }
}

/// A [`LossModel`] with its per-range invariants hoisted out of the
/// per-receiver sampling loop. Build one per transmission with
/// [`LossModel::prepare`].
#[derive(Debug, Clone, Copy)]
pub struct PreparedLoss {
    base: f64,
    edge_loss: f64,
    range: f64,
    /// `range * clear_fraction`, inside which only `base` loss applies.
    clear: f64,
    /// `range - clear`, the quadratic ramp's denominator.
    denom: f64,
}

impl PreparedLoss {
    /// Loss probability for a receiver at `dist`; bit-identical to the
    /// unprepared [`LossModel::loss_probability`].
    pub fn loss_probability(&self, dist: f64) -> f64 {
        if dist > self.range {
            return 1.0;
        }
        let ramp = if dist <= self.clear || self.range <= self.clear {
            0.0
        } else {
            let f = (dist - self.clear) / self.denom;
            f * f * self.edge_loss
        };
        (self.base + ramp).clamp(0.0, 1.0)
    }

    /// Samples whether a frame at `dist` is lost.
    pub fn sample_loss(&self, dist: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.loss_probability(dist))
    }
}

/// Static parameters of every radio in the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Maximum reception distance in meters.
    pub range: f64,
    /// Link bit rate in bits per second.
    pub bitrate_bps: f64,
    /// Fixed per-frame MAC/PHY overhead (preamble, IFS, ACK round).
    pub mac_overhead: SimDuration,
    /// Upper bound of the uniform random backoff added per transmission.
    pub backoff_max: SimDuration,
    /// One-hop propagation delay.
    pub prop_delay: SimDuration,
    /// Number of retransmissions for unicast frames (802.11 retry limit).
    pub unicast_retries: u8,
    /// Loss model.
    pub loss: LossModel,
    /// Carrier sensing: when enabled, a node defers its transmission while
    /// any node within range is on the air (shared-channel contention).
    /// Off by default — per-node queueing alone matches the paper-scale
    /// traffic; the `exp_contention` ablation measures the difference.
    pub carrier_sense: bool,
}

impl RadioConfig {
    /// 802.11b-flavored defaults: 100 m range, 11 Mb/s, 4 retries,
    /// [`LossModel::TYPICAL`].
    pub fn default_80211b() -> RadioConfig {
        RadioConfig {
            range: 100.0,
            bitrate_bps: 11.0e6,
            mac_overhead: SimDuration::from_micros(300),
            backoff_max: SimDuration::from_micros(400),
            prop_delay: SimDuration::from_micros(1),
            unicast_retries: 4,
            loss: LossModel::TYPICAL,
            carrier_sense: false,
        }
    }

    /// Same geometry but a perfect channel; protocol-logic tests use this to
    /// eliminate stochastic loss.
    pub fn ideal() -> RadioConfig {
        RadioConfig {
            loss: LossModel::IDEAL,
            ..RadioConfig::default_80211b()
        }
    }

    /// Time to serialize `wire_len` bytes onto the air, including MAC
    /// overhead and a sampled backoff.
    pub fn tx_time(&self, wire_len: usize, rng: &mut SimRng) -> SimDuration {
        let serialize = SimDuration::from_secs_f64(wire_len as f64 * 8.0 / self.bitrate_bps);
        let backoff = if self.backoff_max.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.range_u64(0, self.backoff_max.as_micros().max(1)))
        };
        self.mac_overhead + serialize + backoff
    }
}

impl Default for RadioConfig {
    fn default() -> RadioConfig {
        RadioConfig::default_80211b()
    }
}

/// A frame waiting in (or moving through) a node's transmit queue.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Layer-2 destination.
    pub dst: L2Dst,
    /// Encapsulated datagram.
    pub dgram: Datagram,
    /// Remaining retransmissions (unicast only).
    pub retries_left: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_loss_is_bit_identical() {
        for model in [LossModel::IDEAL, LossModel::TYPICAL] {
            for range in [50.0, 100.0, 250.0] {
                let prepared = model.prepare(range);
                let mut dist = 0.0;
                while dist <= range + 10.0 {
                    let a = model.loss_probability(dist, range);
                    let b = prepared.loss_probability(dist);
                    assert_eq!(a.to_bits(), b.to_bits(), "dist {dist} range {range}");
                    dist += 0.37;
                }
            }
        }
    }

    #[test]
    fn ideal_model_never_loses_in_range() {
        let m = LossModel::IDEAL;
        assert_eq!(m.loss_probability(99.9, 100.0), 0.0);
        assert_eq!(m.loss_probability(100.1, 100.0), 1.0);
    }

    #[test]
    fn typical_model_ramps_toward_edge() {
        let m = LossModel::TYPICAL;
        let near = m.loss_probability(10.0, 100.0);
        let mid = m.loss_probability(85.0, 100.0);
        let edge = m.loss_probability(100.0, 100.0);
        assert!(near < mid && mid < edge, "{near} {mid} {edge}");
        assert!((near - 0.01).abs() < 1e-9);
        assert!((edge - 0.61).abs() < 1e-9);
    }

    #[test]
    fn tx_time_scales_with_size() {
        let cfg = RadioConfig {
            backoff_max: SimDuration::ZERO,
            ..RadioConfig::ideal()
        };
        let mut rng = SimRng::from_seed_and_stream(0, 0);
        let small = cfg.tx_time(100, &mut rng);
        let large = cfg.tx_time(1000, &mut rng);
        assert!(large > small);
        // 1000 bytes at 11 Mb/s is ~727 us plus 300 us overhead.
        let expect = 300 + (1000.0 * 8.0 / 11.0e6 * 1e6) as u64;
        assert!((large.as_micros() as i64 - expect as i64).abs() <= 1);
    }

    #[test]
    fn sampled_loss_rate_matches_probability() {
        let m = LossModel {
            base: 0.25,
            clear_fraction: 1.0,
            edge_loss: 0.0,
        };
        let mut rng = SimRng::from_seed_and_stream(4, 4);
        let n = 20_000;
        let losses = (0..n)
            .filter(|_| m.sample_loss(10.0, 100.0, &mut rng))
            .count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
