//! # siphoc-simnet
//!
//! A deterministic discrete-event wireless network simulator — the testbed
//! substrate for the SIPHoc reproduction (see the workspace `DESIGN.md`).
//!
//! The paper deployed its middleware on ~10 Linux laptops and iPAQ handhelds
//! in 802.11 ad hoc mode. This crate replaces that hardware with a simulated
//! world that preserves everything the middleware can observe: multihop
//! topologies, per-hop serialization delay, distance-dependent loss,
//! link-layer unicast retries with TX-failure feedback, node mobility and a
//! wired Internet backbone reachable through gateway nodes.
//!
//! ## Model
//!
//! * A [`world::World`] owns nodes and a time-ordered event queue; all
//!   randomness derives from one seed, so runs are exactly reproducible.
//! * Each [`node::Node`] hosts [`process::Process`]es — the analogue of the
//!   paper's "five components running as independent operating system
//!   processes" — communicating only via datagrams and node-local events.
//! * Datagrams are UDP-like: unreliable, unordered, delivered whole.
//! * Forwarding uses a per-node [`route::RoutingTable`] managed by whatever
//!   routing-protocol process runs on the node (see `siphoc-routing`).
//!
//! ## Example
//!
//! ```
//! use siphoc_simnet::prelude::*;
//!
//! let mut world = World::new(WorldConfig::new(42));
//! let a = world.add_node(NodeConfig::manet(0.0, 0.0));
//! let b = world.add_node(NodeConfig::manet(80.0, 0.0));
//! world.run_for(SimDuration::from_secs(1));
//! assert_ne!(world.node(a).addr(), world.node(b).addr());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Re-export of the observability crate so downstream stack crates can
/// instrument without their own `siphoc-obs` dependency: `use
/// siphoc_simnet::obs::{SpanCat, SpanId};`. Every recording method is a
/// no-op shell unless this crate's `obs` feature is enabled.
pub use siphoc_obs as obs;

/// Whether this build records observability data (`obs` feature).
///
/// Bench binaries assert this is `false` so published numbers always
/// measure the bare hot path.
pub const fn obs_enabled() -> bool {
    cfg!(feature = "obs")
}

pub(crate) mod exec;
pub mod fasthash;
pub mod fault;
pub mod grid;
pub mod ident;
pub mod mobility;
pub mod net;
pub mod node;
pub mod parallel;
pub mod process;
pub mod radio;
pub mod rng;
pub mod route;
mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod world;

/// Convenient glob import of the types nearly every user needs.
pub mod prelude {
    pub use crate::fault::{
        FaultAction, FaultPlan, LinkSelector, MaliciousKind, PacketFault, PacketFaultKind,
    };
    pub use crate::mobility::{Area, Mobility, WaypointParams};
    pub use crate::net::{ports, Addr, Datagram, L2Dst, Payload, SocketAddr};
    pub use crate::node::{NodeConfig, NodeId};
    pub use crate::process::{Ctx, LocalEvent, Process};
    pub use crate::radio::{LossModel, RadioConfig};
    pub use crate::rng::SimRng;
    pub use crate::route::{Route, RoutingTable};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::world::{World, WorldConfig};
}
