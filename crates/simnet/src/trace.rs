//! Packet capture.
//!
//! The paper demonstrates its piggybacking mechanism with a Wireshark
//! capture of an AODV route reply carrying encapsulated SIP contact
//! information (paper Fig. 5). [`PacketTrace`] is the simulator's capture
//! facility: when enabled, every frame transmission, delivery and drop is
//! recorded and can be rendered as a Wireshark-style text listing through a
//! pluggable [`Dissector`].

use std::fmt::Write as _;

use crate::net::Datagram;
use crate::node::NodeId;
use crate::time::SimTime;

/// What happened to a captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Frame put on the air by `node`.
    RadioTx,
    /// Frame received by `node`.
    RadioRx,
    /// Datagram delivered over the wired backbone.
    WiredRx,
    /// Datagram delivered over loopback.
    Loopback,
    /// Packet dropped; the reason is recorded in the entry.
    Drop,
}

/// One captured packet event.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Capture time.
    pub time: SimTime,
    /// Node observing the event.
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
    /// Drop reason, when `kind == Drop`.
    pub reason: Option<&'static str>,
    /// The captured datagram (payload included).
    pub dgram: Datagram,
}

/// Protocol dissector used when rendering a trace as text.
///
/// Given a destination port and payload, returns `Some((proto, info))` when
/// the dissector understands the packet, mirroring Wireshark's protocol and
/// info columns.
pub type Dissector = fn(port: u16, payload: &[u8]) -> Option<(String, String)>;

/// A bounded in-memory packet capture.
#[derive(Debug, Default)]
pub struct PacketTrace {
    enabled: bool,
    entries: Vec<TraceEntry>,
    capacity: usize,
}

impl PacketTrace {
    /// Creates a disabled trace.
    pub fn new() -> PacketTrace {
        PacketTrace {
            enabled: false,
            entries: Vec::new(),
            capacity: 100_000,
        }
    }

    /// Enables or disables capturing. Disabling does not clear prior entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns whether capturing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps the number of retained entries (oldest entries are NOT evicted;
    /// capture simply stops at the cap to keep indices stable).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Records an event if capturing is enabled and capacity remains.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.enabled && self.entries.len() < self.capacity {
            self.entries.push(entry);
        }
    }

    /// All captured entries in capture order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Discards all captured entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the capture as a Wireshark-style text listing using the given
    /// dissectors (tried in order; first match wins).
    pub fn render(&self, dissectors: &[Dissector]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>6} {:<9} {:<21} {:<21} {:>5}  {:<8} info",
            "no.", "time", "node", "event", "source", "destination", "len", "proto"
        );
        for (i, e) in self.entries.iter().enumerate() {
            let (proto, info) = dissect(dissectors, &e.dgram);
            let event = match e.kind {
                TraceKind::RadioTx => "radio-tx",
                TraceKind::RadioRx => "radio-rx",
                TraceKind::WiredRx => "wired-rx",
                TraceKind::Loopback => "loopback",
                TraceKind::Drop => "drop",
            };
            let info = match e.reason {
                Some(r) => format!("[{r}] {info}"),
                None => info,
            };
            let _ = writeln!(
                out,
                "{:>5} {:>12.6} {:>6} {:<9} {:<21} {:<21} {:>5}  {:<8} {}",
                i,
                e.time.as_secs_f64(),
                e.node.0,
                event,
                e.dgram.src.to_string(),
                e.dgram.dst.to_string(),
                e.dgram.payload.len(),
                proto,
                info
            );
        }
        out
    }

    /// Returns captured entries matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceEntry) -> bool) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| pred(e)).collect()
    }
}

fn dissect(dissectors: &[Dissector], dgram: &Datagram) -> (String, String) {
    for d in dissectors {
        if let Some((proto, info)) = d(dgram.dst.port, &dgram.payload) {
            return (proto, info);
        }
    }
    ("udp".to_owned(), format!("{} bytes", dgram.payload.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Addr, SocketAddr};

    fn entry(kind: TraceKind, port: u16) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_millis(12),
            node: NodeId(1),
            kind,
            reason: None,
            dgram: Datagram::new(
                SocketAddr::new(Addr::manet(0), 1000),
                SocketAddr::new(Addr::manet(1), port),
                b"xyz".to_vec(),
            ),
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PacketTrace::new();
        t.record(entry(TraceKind::RadioTx, 5060));
        assert!(t.entries().is_empty());
        t.set_enabled(true);
        t.record(entry(TraceKind::RadioTx, 5060));
        assert_eq!(t.entries().len(), 1);
    }

    #[test]
    fn capacity_stops_capture() {
        let mut t = PacketTrace::new();
        t.set_enabled(true);
        t.set_capacity(2);
        for _ in 0..5 {
            t.record(entry(TraceKind::RadioRx, 5060));
        }
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn render_uses_dissectors_in_order() {
        let mut t = PacketTrace::new();
        t.set_enabled(true);
        t.record(entry(TraceKind::RadioTx, 654));
        fn sip(_port: u16, _p: &[u8]) -> Option<(String, String)> {
            None
        }
        fn aodv(port: u16, _p: &[u8]) -> Option<(String, String)> {
            (port == 654).then(|| ("aodv".to_owned(), "RREQ".to_owned()))
        }
        let out = t.render(&[sip as Dissector, aodv as Dissector]);
        assert!(out.contains("aodv"), "{out}");
        assert!(out.contains("RREQ"), "{out}");
        // Unknown traffic falls back to a generic udp row.
        let mut t2 = PacketTrace::new();
        t2.set_enabled(true);
        t2.record(entry(TraceKind::Drop, 9));
        let out2 = t2.render(&[]);
        assert!(out2.contains("udp"), "{out2}");
    }
}
