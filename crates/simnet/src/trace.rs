//! Packet capture.
//!
//! The paper demonstrates its piggybacking mechanism with a Wireshark
//! capture of an AODV route reply carrying encapsulated SIP contact
//! information (paper Fig. 5). [`PacketTrace`] is the simulator's capture
//! facility: when enabled, every frame transmission, delivery and drop is
//! recorded and can be rendered as a Wireshark-style text listing through a
//! pluggable [`Dissector`].

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::net::Datagram;
use crate::node::NodeId;
use crate::time::SimTime;

/// What happened to a captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Frame put on the air by `node`.
    RadioTx,
    /// Frame received by `node`.
    RadioRx,
    /// Datagram delivered over the wired backbone.
    WiredRx,
    /// Datagram delivered over loopback.
    Loopback,
    /// Packet dropped; the reason is recorded in the entry.
    Drop,
}

/// One captured packet event.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Capture time.
    pub time: SimTime,
    /// Node observing the event.
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
    /// Drop reason, when `kind == Drop`.
    pub reason: Option<&'static str>,
    /// The captured datagram (payload included).
    pub dgram: Datagram,
}

/// Protocol dissector used when rendering a trace as text.
///
/// Given a destination port and payload, returns `Some((proto, info))` when
/// the dissector understands the packet, mirroring Wireshark's protocol and
/// info columns.
pub type Dissector = fn(port: u16, payload: &[u8]) -> Option<(String, String)>;

/// A bounded in-memory packet capture.
///
/// The capture is a ring buffer: once `capacity` entries are retained,
/// each new record evicts the oldest one, so long-running captures keep
/// the *most recent* window of traffic at a fixed memory ceiling instead
/// of freezing at the start of the run. Entry numbers in [`render`]
/// \(`PacketTrace::render`) are absolute capture indices — they keep
/// counting across evictions, so the same packet renders under the same
/// number no matter how much was evicted after it.
#[derive(Debug, Default)]
pub struct PacketTrace {
    enabled: bool,
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    /// Entries evicted from the front so far; also the absolute index of
    /// the oldest retained entry.
    evicted: u64,
}

impl PacketTrace {
    /// Creates a disabled trace with a 100 000-entry ring.
    pub fn new() -> PacketTrace {
        PacketTrace {
            enabled: false,
            entries: VecDeque::new(),
            capacity: 100_000,
            evicted: 0,
        }
    }

    /// Enables or disables capturing. Disabling does not clear prior entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns whether capturing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Caps the number of retained entries. When the ring is full, each
    /// new record evicts the oldest retained entry; shrinking below the
    /// current length evicts immediately.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
    }

    /// Records an event if capturing is enabled, evicting the oldest
    /// retained entry once the ring is full.
    pub fn record(&mut self, entry: TraceEntry) {
        if !self.enabled {
            return;
        }
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry);
    }

    /// All retained entries in capture order (oldest first).
    pub fn entries(&self) -> impl ExactSizeIterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by the ring so far. `evicted() + len()` is the
    /// total ever recorded; `evicted()` is also the absolute index of the
    /// oldest retained entry.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Discards all captured entries and resets the absolute numbering.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.evicted = 0;
    }

    /// Renders the capture as a Wireshark-style text listing using the given
    /// dissectors (tried in order; first match wins).
    pub fn render(&self, dissectors: &[Dissector]) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>6} {:<9} {:<21} {:<21} {:>5}  {:<8} info",
            "no.", "time", "node", "event", "source", "destination", "len", "proto"
        );
        if self.evicted > 0 {
            let _ = writeln!(
                out,
                "  ... {} older entries evicted by the capture ring ...",
                self.evicted
            );
        }
        for (i, e) in self.entries.iter().enumerate() {
            let i = self.evicted + i as u64;
            let (proto, info) = dissect(dissectors, &e.dgram);
            let event = match e.kind {
                TraceKind::RadioTx => "radio-tx",
                TraceKind::RadioRx => "radio-rx",
                TraceKind::WiredRx => "wired-rx",
                TraceKind::Loopback => "loopback",
                TraceKind::Drop => "drop",
            };
            let info = match e.reason {
                Some(r) => format!("[{r}] {info}"),
                None => info,
            };
            let _ = writeln!(
                out,
                "{:>5} {:>12.6} {:>6} {:<9} {:<21} {:<21} {:>5}  {:<8} {}",
                i,
                e.time.as_secs_f64(),
                e.node.0,
                event,
                e.dgram.src.to_string(),
                e.dgram.dst.to_string(),
                e.dgram.payload.len(),
                proto,
                info
            );
        }
        out
    }

    /// Returns captured entries matching a predicate.
    pub fn find(&self, mut pred: impl FnMut(&TraceEntry) -> bool) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| pred(e)).collect()
    }
}

fn dissect(dissectors: &[Dissector], dgram: &Datagram) -> (String, String) {
    for d in dissectors {
        if let Some((proto, info)) = d(dgram.dst.port, &dgram.payload) {
            return (proto, info);
        }
    }
    ("udp".to_owned(), format!("{} bytes", dgram.payload.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Addr, SocketAddr};

    fn entry(kind: TraceKind, port: u16) -> TraceEntry {
        TraceEntry {
            time: SimTime::from_millis(12),
            node: NodeId(1),
            kind,
            reason: None,
            dgram: Datagram::new(
                SocketAddr::new(Addr::manet(0), 1000),
                SocketAddr::new(Addr::manet(1), port),
                b"xyz".to_vec(),
            ),
        }
    }

    fn entry_at(port: u16) -> TraceEntry {
        entry(TraceKind::RadioRx, port)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PacketTrace::new();
        t.record(entry(TraceKind::RadioTx, 5060));
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(entry(TraceKind::RadioTx, 5060));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_absolute_numbering() {
        let mut t = PacketTrace::new();
        t.set_enabled(true);
        t.set_capacity(2);
        for port in 0..5u16 {
            t.record(entry_at(port));
        }
        // The two newest entries survive; three were evicted.
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 3);
        let ports: Vec<u16> = t.entries().map(|e| e.dgram.dst.port).collect();
        assert_eq!(ports, vec![3, 4]);
        // Rendered numbers are absolute capture indices.
        let out = t.render(&[]);
        assert!(out.contains("3 older entries evicted"), "{out}");
        assert!(out.contains("\n    3 "), "{out}");
        assert!(out.contains("\n    4 "), "{out}");

        // Shrinking the cap evicts immediately.
        t.set_capacity(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.evicted(), 4);

        // A zero-capacity ring retains nothing but keeps counting.
        t.set_capacity(0);
        t.record(entry_at(9));
        assert!(t.is_empty());
        assert_eq!(t.evicted(), 6);

        // Clearing resets the numbering.
        t.clear();
        assert_eq!(t.evicted(), 0);
    }

    #[test]
    fn render_uses_dissectors_in_order() {
        let mut t = PacketTrace::new();
        t.set_enabled(true);
        t.record(entry(TraceKind::RadioTx, 654));
        fn sip(_port: u16, _p: &[u8]) -> Option<(String, String)> {
            None
        }
        fn aodv(port: u16, _p: &[u8]) -> Option<(String, String)> {
            (port == 654).then(|| ("aodv".to_owned(), "RREQ".to_owned()))
        }
        let out = t.render(&[sip as Dissector, aodv as Dissector]);
        assert!(out.contains("aodv"), "{out}");
        assert!(out.contains("RREQ"), "{out}");
        // Unknown traffic falls back to a generic udp row.
        let mut t2 = PacketTrace::new();
        t2.set_enabled(true);
        t2.record(entry(TraceKind::Drop, 9));
        let out2 = t2.render(&[]);
        assert!(out2.contains("udp"), "{out2}");
    }
}
